#ifndef ATUNE_CORE_OUTCOME_CHECKSUM_H_
#define ATUNE_CORE_OUTCOME_CHECKSUM_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/session.h"
#include "core/tuner.h"

namespace atune {

/// Bitwise-equivalence checksums over trial histories and whole session
/// outcomes. Grown in bench/bench_common.h for the durability harnesses;
/// promoted into core when atuned started reporting OutcomeChecksum over the
/// wire, so the daemon, the client, and every bench agree on one definition
/// of "bit-identical resume" (bench_common.h re-exports these names into
/// atune::bench).

/// FNV-1a over a byte range, seeded with `h` (offset-basis
/// kFnvOffsetBasis for a fresh hash).
inline constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;

inline uint64_t Fnv1a(uint64_t h, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Checksum of a trial history: config string, objective bits, cost bits.
/// Trial::round is deliberately excluded — it is the one field batching is
/// *supposed* to change.
inline uint64_t HistoryChecksum(const std::vector<Trial>& history) {
  uint64_t h = kFnvOffsetBasis;
  for (const Trial& t : history) {
    std::string cfg = t.config.ToString();
    h = Fnv1a(h, cfg.data(), cfg.size());
    uint64_t bits;
    std::memcpy(&bits, &t.objective, sizeof(bits));
    h = Fnv1a(h, &bits, sizeof(bits));
    std::memcpy(&bits, &t.cost, sizeof(bits));
    h = Fnv1a(h, &bits, sizeof(bits));
  }
  return h;
}

/// Checksum of a whole session outcome: the trial history (as above) plus
/// best config/objective, budget used, and every robustness/failure
/// counter. Two sessions with equal OutcomeChecksums made the same
/// measurements, spent the same budget, and repaired the same faults —
/// the durability harness's definition of "bit-identical resume".
/// TuningOutcome::replayed_records is deliberately excluded: it is the one
/// field resumption is *supposed* to change.
inline uint64_t OutcomeChecksum(const TuningOutcome& outcome) {
  uint64_t h = HistoryChecksum(outcome.history);
  std::string best_cfg = outcome.best_config.ToString();
  h = Fnv1a(h, best_cfg.data(), best_cfg.size());
  auto mix_double = [&h](double value) {
    uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    h = Fnv1a(h, &bits, sizeof(bits));
  };
  mix_double(outcome.best_objective);
  mix_double(outcome.evaluations_used);
  uint64_t counters[] = {outcome.failed_runs,   outcome.censored_runs,
                         outcome.retried_runs,  outcome.timed_out_runs,
                         outcome.remeasured_runs};
  h = Fnv1a(h, counters, sizeof(counters));
  return h;
}

}  // namespace atune

#endif  // ATUNE_CORE_OUTCOME_CHECKSUM_H_
