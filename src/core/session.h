#ifndef ATUNE_CORE_SESSION_H_
#define ATUNE_CORE_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/tuner.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace atune {

/// Result of a completed tuning session.
struct TuningOutcome {
  std::string tuner_name;
  TunerCategory category = TunerCategory::kRuleBased;
  Configuration best_config;
  double best_objective = 0.0;
  double default_objective = 0.0;  ///< objective of the system defaults
  /// best_objective improvement over default: default/best (>1 = speedup).
  double speedup_over_default = 1.0;
  double evaluations_used = 0.0;
  /// Trials whose run genuinely failed (OOM, abort storm, unretried
  /// transient fault). Censored runs are counted separately below.
  size_t failed_runs = 0;
  /// Trials cut off before completion (early-abort threshold or timeout
  /// watchdog) — the measurement stopped, the configuration did not fail.
  size_t censored_runs = 0;
  /// Robustness-policy activity (see RobustnessPolicy): transient-failure
  /// re-executions, watchdog kills, and outlier re-measurements.
  size_t retried_runs = 0;
  size_t timed_out_runs = 0;
  size_t remeasured_runs = 0;
  std::vector<Trial> history;
  /// Best objective seen after the i-th unit of budget was spent
  /// (cumulative-cost-aligned convergence curve, one entry per trial).
  std::vector<double> convergence;
  /// Cumulative budget spent at each convergence point.
  std::vector<double> convergence_cost;
  /// Wall-clock rounds elapsed at each convergence point. A batch of k
  /// parallel experiments (Evaluator::EvaluateBatch) costs k budget units
  /// but one round, so plotting `convergence` against this curve instead of
  /// `convergence_cost` shows the wall-clock saving of parallel experiments
  /// (iTuned §2.4) while the budget curve stays comparable across tuners.
  std::vector<double> convergence_round;
  std::string tuner_report;
  /// Journal records served by deterministic replay (ResumeTuningSession);
  /// 0 for a fresh session. Excluded from outcome checksums — a resumed
  /// session is otherwise bit-identical to an uninterrupted one.
  size_t replayed_records = 0;
  /// True when a journal I/O failure degraded the session (JournalPolicy::
  /// kDegrade): tuning completed, but part of the history is un-journaled
  /// and the session cannot be resumed.
  bool journal_degraded = false;
  /// What journal recovery had to discard (torn/corrupt tail, incomplete
  /// batch), for operator visibility. Empty for fresh sessions.
  std::vector<std::string> recovery_warnings;
  /// Snapshot of SessionOptions::metrics taken when the session ended.
  /// Empty when no registry was attached. Metrics whose name contains
  /// "host" are host wall-clock and vary run to run; everything else is
  /// deterministic and survives a resume bit-identically (DESIGN.md §9).
  MetricsSnapshot metrics;
};

/// Options controlling a session.
struct SessionOptions {
  TuningBudget budget;
  uint64_t seed = 1;
  double failure_penalty = 10.0;
  /// Custom objective (see core/objective.h); empty = penalized runtime.
  ObjectiveFunction objective;
  /// Measurement-robustness policy applied by the session's Evaluator
  /// (transient-failure retries, timeout watchdog, outlier re-measurement).
  RobustnessPolicy robustness;
  /// If true (default), one extra out-of-budget run measures the system
  /// defaults so speedups can be reported. Not counted against the budget.
  bool measure_default = true;
  /// Path of the write-ahead trial journal. Empty = no journal (sessions
  /// are then not resumable). When set, every committed trial is fsynced to
  /// this file before its measurement reaches the tuner, and
  /// ResumeTuningSession can reconstruct a crashed/interrupted session.
  std::string journal_path;
  /// How the session reacts to a journal I/O failure (kStrict: abort with a
  /// clean kIoError; kDegrade: continue un-journaled with a warning and a
  /// `.degraded` sidecar that blocks later resumes). See core/journal.h.
  JournalPolicy journal_policy = JournalPolicy::kStrict;
  /// Polled before every evaluation; returning true aborts the session with
  /// kAborted after checkpointing (the CLI wires SIGINT/SIGTERM here).
  std::function<bool()> interrupt_check;
  /// Deterministic kill switch for durability testing: abort the session as
  /// soon as the journal holds this many records (0 = off).
  uint64_t interrupt_after_records = 0;
  /// Span tracer for this session (not owned; null = tracing off). The
  /// session emits the span taxonomy of DESIGN.md §9 (session → round →
  /// batch → trial → {measure, retry, remeasure, commit}, plus gp_fit /
  /// acquisition / unit) and installs the tracer as the process-wide
  /// CurrentTracer() for its duration, so at most one traced session should
  /// run at a time (concurrent untraced sessions are unaffected).
  Tracer* tracer = nullptr;
  /// Metrics registry for this session (not owned; null = metrics off);
  /// snapshot returned in TuningOutcome::metrics. Installed as
  /// CurrentMetrics() for the session's duration, like `tracer`.
  MetricsRegistry* metrics = nullptr;
};

/// Runs one tuner against one system+workload with a budget and packages the
/// outcome. This is the main entry point of the library:
///
///   SimulatedDbms dbms(DbmsClusterConfig{}, /*seed=*/7);
///   ITunedTuner tuner;
///   auto outcome = RunTuningSession(&tuner, &dbms, workload, options);
Result<TuningOutcome> RunTuningSession(Tuner* tuner, TunableSystem* system,
                                       const Workload& workload,
                                       const SessionOptions& options);

/// Resumes a session from the write-ahead journal at options.journal_path
/// (which must be set). Recovery keeps the journal's longest valid record
/// prefix, then the tuner is re-run from scratch with the Evaluator serving
/// the journaled observations (deterministic replay) — the system is only
/// executed for trials past the journal's end, after fast-forwarding its
/// noise cursor — so the outcome is bit-identical to a never-interrupted
/// session. The caller must pass the same tuner/system/workload/options as
/// the original session (the journal header is checked; custom objectives
/// cannot be fingerprinted and are the caller's responsibility). A missing
/// or header-corrupt journal starts a fresh session (with a warning), so
/// "always resume" is a safe operating mode.
Result<TuningOutcome> ResumeTuningSession(Tuner* tuner, TunableSystem* system,
                                          const Workload& workload,
                                          const SessionOptions& options);

}  // namespace atune

#endif  // ATUNE_CORE_SESSION_H_
