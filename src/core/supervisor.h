#ifndef ATUNE_CORE_SUPERVISOR_H_
#define ATUNE_CORE_SUPERVISOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/tuner.h"

namespace atune {

/// Knobs for the tuner supervision layer (DESIGN.md §10). Defaults are
/// deliberately conservative: on a well-behaved tuner/system pair the
/// supervised session is bit-identical to the unsupervised one — every
/// mechanism only engages on a pathology (non-finite proposal, repeated
/// config, persistent crash region, numerical model failure).
struct SupervisionPolicy {
  /// Consecutive identical full-cost proposals tolerated before the guard
  /// starts substituting deterministic LHS draws (duplicate livelock:
  /// a stuck acquisition loop re-proposing one config forever).
  size_t duplicate_limit = 3;
  /// K: budget units leased to the fallback tuner per failover episode
  /// before the primary is probed again.
  size_t failover_cooldown_trials = 5;
  /// Failover episodes before the supervisor stops probing the primary and
  /// lets the fallback run to budget exhaustion.
  size_t max_failover_episodes = 8;
  /// M: committed failed trials within one region that open its breaker.
  size_t breaker_failure_threshold = 3;
  /// Exclusion radius in normalized unit-cube distance
  /// (||a-b||_2 / sqrt(dims), so the knob is dimension-independent).
  double breaker_radius = 0.12;
  /// Committed trials after opening before a breaker half-opens and lets
  /// one probe back into the region.
  size_t breaker_cooldown_trials = 10;
  /// LHS redraw attempts when substituting a vetoed proposal with a point
  /// outside every open region (best draw so far is used if none qualifies).
  size_t veto_max_draws = 64;
  /// Seed for the guard's private substitution stream. Fixed by default so
  /// supervision decisions are a pure function of the observation sequence
  /// (the replay-determinism contract; DESIGN.md §10).
  uint64_t guard_seed = 0xA7C35AFEULL;
};

/// Counters describing what the supervision layer did in one session.
/// Mirrored into the `supervisor.*` metrics when a registry is installed.
struct SupervisionStats {
  size_t sanitized_values = 0;   ///< individual knob values repaired
  size_t sanitized_configs = 0;  ///< proposals with >= 1 repaired value
  size_t duplicates_broken = 0;  ///< proposals replaced by LHS substitution
  size_t vetoes = 0;             ///< proposals vetoed by an open breaker
  size_t breaker_opened = 0;     ///< regions whose breaker opened
  size_t breaker_reopened = 0;   ///< half-open probes that failed
  size_t breaker_closed = 0;     ///< half-open probes that succeeded
  size_t failovers = 0;          ///< fallback episodes entered
};

/// ProposalGuard implementation behind SupervisedTuner: sanitization,
/// duplicate-livelock substitution, and the crash-region circuit breaker.
/// Exposed for direct unit testing; sessions normally get one implicitly
/// by wrapping their tuner in a SupervisedTuner.
///
/// Determinism contract: Admit/Sanitize/Observe are pure functions of the
/// call sequence and the policy (the substitution stream is seeded by
/// policy.guard_seed, never by session randomness), so a journal-replayed
/// session reconstructs byte-identical admission decisions.
class SupervisorGuard : public ProposalGuard {
 public:
  SupervisorGuard(const SupervisionPolicy& policy, const ParameterSpace* space);

  Configuration Admit(const Configuration& proposed) override;
  Configuration Sanitize(const Configuration& proposed) override;
  void Observe(const Trial& trial) override;

  const SupervisionStats& stats() const { return stats_; }
  /// Regions whose breaker is currently open (vetoing proposals).
  size_t open_regions() const;
  /// Committed trials observed so far (the breaker's cooldown clock).
  size_t trials_seen() const { return trials_seen_; }

 private:
  /// One crash region: failures accumulate while tracking; at
  /// breaker_failure_threshold the breaker opens and vetoes proposals in
  /// the region; after breaker_cooldown_trials it half-opens and admits
  /// probes; a successful probe closes it, a failed one reopens it.
  struct Region {
    enum class State { kTracking, kOpen, kHalfOpen };
    Vec center;
    size_t failures = 0;
    State state = State::kTracking;
    size_t opened_at = 0;  ///< trials_seen_ when the breaker last opened
  };

  /// Next point from the deterministic substitution stream (a private LHS
  /// sequence refilled in waves of 16).
  Vec NextSubstitute();
  /// Normalized unit-cube distance (see SupervisionPolicy::breaker_radius).
  double NormalizedDistance(const Vec& a, const Vec& b) const;
  /// Lazily half-opens any open region whose cooldown has elapsed.
  void AdvanceBreakerClock();
  /// True if `u` falls inside a currently-open region.
  bool Vetoed(const Vec& u) const;

  const SupervisionPolicy policy_;
  const ParameterSpace* space_;  // not owned
  Rng substitute_rng_;
  std::vector<Vec> substitute_pool_;
  size_t substitute_pos_ = 0;

  Configuration last_sanitized_;   ///< duplicate detection (pre-substitution)
  bool has_last_ = false;
  size_t consecutive_duplicates_ = 0;

  std::vector<Region> regions_;
  size_t trials_seen_ = 0;

  SupervisionStats stats_;
  /// Cached `supervisor.*` metric pointers (null when metrics are off).
  Counter* m_sanitized_ = nullptr;
  Counter* m_duplicates_ = nullptr;
  Counter* m_vetoes_ = nullptr;
  Counter* m_breaker_opened_ = nullptr;
  Counter* m_breaker_reopened_ = nullptr;
  Counter* m_breaker_closed_ = nullptr;
  Gauge* m_open_regions_ = nullptr;
};

/// Decorator giving any Tuner algorithm-layer graceful degradation
/// (complementing the Evaluator's measurement-layer RobustnessPolicy):
/// installs a SupervisorGuard on the evaluator for proposal sanitization
/// and the circuit breaker, and catches numerical failures (kInternal) from
/// the primary by leasing `failover_cooldown_trials` budget units to a
/// fallback tuner, then probing the primary again. Works unchanged for
/// serial and batch tuners; failover decisions are a pure function of the
/// journaled observations, so PR3 journal replay reconstructs them and a
/// resumed supervised session stays bit-identical.
class SupervisedTuner : public Tuner {
 public:
  /// `fallback` may be null: the default Latin-hypercube random fallback
  /// (MakeLhsFallbackTuner) is used.
  SupervisedTuner(std::unique_ptr<Tuner> primary,
                  std::unique_ptr<Tuner> fallback = nullptr,
                  SupervisionPolicy policy = SupervisionPolicy());

  std::string name() const override { return name_; }
  TunerCategory category() const override { return primary_->category(); }
  Status Tune(Evaluator* evaluator, Rng* rng) override;
  void set_parallelism(size_t parallelism) override;
  std::string Report() const override;

  /// Guard + failover counters from the last Tune() call.
  const SupervisionStats& stats() const { return stats_; }

 private:
  std::unique_ptr<Tuner> primary_;
  std::unique_ptr<Tuner> fallback_;
  SupervisionPolicy policy_;
  std::string name_;
  SupervisionStats stats_;
  std::string last_failover_cause_;
};

/// The default failover tuner: maximin-free LHS waves until the budget (or
/// an active lease) is exhausted. Model-free, so it cannot suffer the
/// numerical failures it is covering for. Batch-aware.
std::unique_ptr<Tuner> MakeLhsFallbackTuner();

/// Convenience wrapper constructor (null fallback = LHS default).
std::unique_ptr<Tuner> MakeSupervisedTuner(
    std::unique_ptr<Tuner> primary, std::unique_ptr<Tuner> fallback = nullptr,
    SupervisionPolicy policy = SupervisionPolicy());

}  // namespace atune

#endif  // ATUNE_CORE_SUPERVISOR_H_
