#ifndef ATUNE_CORE_TUNER_H_
#define ATUNE_CORE_TUNER_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/configuration.h"
#include "core/journal.h"
#include "core/objective.h"
#include "core/system.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace atune {

/// The paper's six-way taxonomy of parameter tuning approaches (Section 2.1).
enum class TunerCategory {
  kRuleBased,
  kCostModeling,
  kSimulationBased,
  kExperimentDriven,
  kMachineLearning,
  kAdaptive,
};

const char* TunerCategoryToString(TunerCategory category);

/// Resource limits for one tuning session. The dominant cost in practice is
/// real system runs ("experiments"); the budget is expressed in those.
struct TuningBudget {
  /// Maximum number of full workload executions the tuner may spend.
  /// Unit-level executions by adaptive tuners cost 1/NumUnits each.
  size_t max_evaluations = 30;
};

/// Tolerance for all budget comparisons (accumulated fractional costs carry
/// floating-point dust; a run that fits "up to epsilon" is admitted, a
/// budget spent "up to epsilon" is exhausted). One constant everywhere so
/// Exhausted() and the per-call admission gates can never disagree.
inline constexpr double kBudgetEpsilon = 1e-9;

/// How the Evaluator defends tuners against the measurement pathologies of
/// real clusters: transient run failures, hung runs, and straggler noise
/// (the practical barrier the cloud-tuning literature highlights). All
/// mechanisms are deterministic — they depend only on the measurements and
/// the policy, never on wall-clock — and every repair charges real budget.
/// The default policy retries transient failures but leaves the timeout
/// watchdog and outlier re-measurement off, so it is behavior-preserving on
/// systems that never report transient faults.
struct RobustnessPolicy {
  /// Max re-executions of a run whose failure is marked transient
  /// (ExecutionResult::transient). Tuners then see the final attempt —
  /// usually a clean measurement — instead of a spurious failure.
  size_t max_retries = 2;
  /// Budget charged per superseded transient attempt, in full-run units
  /// (transient faults typically kill a run partway through, so a retry
  /// costs less than a full experiment but is never free).
  double retry_cost_fraction = 0.3;
  /// Wall-clock watchdog: a run measuring longer than this is killed and
  /// recorded as censored at the threshold, with early-abort cost
  /// accounting (the budget fraction actually observed). This is the only
  /// defense against hung runs, which would otherwise eat the whole
  /// session. 0 disables the watchdog.
  double timeout_seconds = 0.0;
  /// Outlier re-measurement: a successful run whose runtime's modified
  /// z-score against the history of completed runs — 0.6745 * |x - median|
  /// / MAD — exceeds this threshold is suspicious (straggler or corrupted
  /// measurement) and is re-measured; the median measurement is committed.
  /// 0 disables; 3.5 is the classical cutoff.
  double outlier_mad_threshold = 0.0;
  /// Completed-run history required before MAD is trustworthy.
  size_t outlier_min_history = 6;
  /// Extra measurements (full budget units each) for a suspicious trial.
  size_t remeasure_runs = 2;
};

/// One recorded system run.
struct Trial {
  Configuration config;
  ExecutionResult result;
  double objective = 0.0;  ///< penalized runtime (lower is better)
  double cost = 1.0;       ///< evaluation budget consumed (1 = full run)
  /// True for runs on a scaled-down workload sample (Ernest-style training
  /// runs); their objectives are not comparable to full runs, so they are
  /// excluded from best() tracking.
  bool scaled = false;
  /// Wall-clock round the trial ran in. Every Evaluate* call is one round;
  /// an EvaluateBatch of k configs is also ONE round (its experiments run
  /// concurrently), so a batch of k costs k budget units but one round —
  /// iTuned §2.4's parallel-experiment saving. Convergence-vs-rounds curves
  /// are derived from this (TuningOutcome::convergence_round).
  size_t round = 0;
};

/// Admission hook between a tuner's proposals and the Evaluator (the
/// supervision layer's seam; see core/supervisor.h). The guard may rewrite
/// a proposal before it is validated, executed, and journaled — the
/// *admitted* config is what enters the history and the journal, so replay
/// compares against it. Both hooks must be deterministic functions of the
/// call sequence so a resumed session reconstructs identical decisions.
class ProposalGuard {
 public:
  virtual ~ProposalGuard() = default;

  /// Full admission pipeline for a full-cost proposal (sanitization,
  /// duplicate-livelock substitution, crash-region veto). Returns the
  /// config to actually evaluate.
  virtual Configuration Admit(const Configuration& proposed) = 0;

  /// Sanitization only (finiteness + projection into the space). Used for
  /// unit-level and scaled-sample executions, where re-proposing the same
  /// config consecutively is legitimate (iterating units, Ernest-style
  /// scale sweeps) and substitution would corrupt the composite run.
  virtual Configuration Sanitize(const Configuration& proposed) = 0;

  /// Observes every committed trial — live and replayed — so guard state
  /// (crash regions, trial clock) is a pure function of the journaled
  /// observation sequence.
  virtual void Observe(const Trial& trial) = 0;
};

/// Budget-enforcing gateway between a tuner and the system under tuning.
///
/// All tuners must obtain measurements through an Evaluator: it counts
/// evaluations against the budget, applies the failure penalty to produce a
/// scalar objective, and records the trial history (from which convergence
/// curves and the best configuration are derived).
class Evaluator {
 public:
  /// Does not take ownership of `system`. `failure_penalty` multiplies the
  /// runtime of failed runs when forming the objective.
  Evaluator(TunableSystem* system, Workload workload, TuningBudget budget,
            double failure_penalty = 10.0);

  /// Replaces the default penalized-runtime objective (e.g. with a cloud
  /// dollar-cost or latency-SLA objective from core/objective.h). Set
  /// before the first Evaluate call.
  void set_objective(ObjectiveFunction objective) {
    objective_ = std::move(objective);
  }

  /// Installs a measurement-robustness policy (see RobustnessPolicy). Set
  /// before the first Evaluate call.
  void set_robustness_policy(const RobustnessPolicy& policy) {
    policy_ = policy;
  }
  const RobustnessPolicy& robustness_policy() const { return policy_; }

  /// Attaches a write-ahead trial journal (not owned): every committed
  /// observation — trial or unit run — is appended, checksummed, and fsynced
  /// before its measurement is returned to the tuner, so a crashed session
  /// can be reconstructed by ResumeTuningSession. A journal append failure
  /// is sticky and fails the session (measurements must never outrun the
  /// journal). Set before the first Evaluate call.
  void set_journal(TrialJournal* journal) { journal_ = journal; }
  const Status& journal_error() const { return journal_error_; }

  /// Journal-failure policy (DESIGN.md §12). kStrict (the default) keeps
  /// the sticky-failure behavior above: the session aborts with a clean
  /// kIoError. kDegrade trades resumability for availability: on an append
  /// failure the Evaluator detaches the journal, leaves a durable
  /// `<path>.degraded` sidecar so a later resume refuses the incomplete
  /// record, and tuning continues un-journaled. Set before the first
  /// Evaluate call.
  void set_journal_policy(JournalPolicy policy) { journal_policy_ = policy; }
  JournalPolicy journal_policy() const { return journal_policy_; }
  /// True once a journal I/O failure degraded this session (kDegrade only).
  bool journal_degraded() const { return journal_degraded_; }

  /// Installs the recovered journal records for deterministic replay.
  /// While records remain, every Evaluate* call is served from the journal
  /// — configs are checked against the journaled ones, the recorded
  /// measurements/costs/rounds/robustness counters are re-applied, and the
  /// system is never executed. When the queue drains, evaluation continues
  /// live; the caller must have fast-forwarded the system with
  /// SkipRuns(last record's system_runs) so live runs draw exactly the
  /// noise an uninterrupted session would have drawn. Set before Tune().
  void SetReplay(std::vector<JournalRecord> records) {
    replay_ = std::move(records);
    replay_pos_ = 0;
  }
  /// True while Evaluate* calls are still being served from the journal.
  bool replay_active() const { return replay_pos_ < replay_.size(); }
  /// Journal records consumed by replay so far.
  size_t replayed_records() const { return replay_pos_; }
  /// Journal records still waiting to be served.
  size_t replay_pending() const { return replay_.size() - replay_pos_; }

  /// Cooperative interruption (SIGINT/SIGTERM in the CLI): `check` is
  /// polled at the top of every Evaluate* call; once it returns true the
  /// evaluator refuses all further measurements with kAborted, marks the
  /// budget refused so `while (!Exhausted())` tuners wind down, and the
  /// session reports kAborted. The journal is per-record durable, so an
  /// interrupted session is already checkpointed.
  void set_interrupt_check(std::function<bool()> check) {
    interrupt_check_ = std::move(check);
  }
  /// Deterministic kill switch: interrupt as soon as the attached journal
  /// holds `limit` records (0 = off). The durability harness uses this to
  /// simulate operator kills at exact trial boundaries.
  void set_interrupt_after_records(uint64_t limit) { record_limit_ = limit; }
  bool interrupted() const { return interrupted_; }

  /// Parent-system executions so far (the measurement-noise cursor synced
  /// to TunableSystem::SkipRuns accounting; see JournalRecord::system_runs).
  uint64_t system_runs() const { return system_runs_; }

  /// Installs a proposal guard (not owned; null = off, the default). Every
  /// Evaluate* proposal passes through the guard before validation, and
  /// every committed trial (live or replayed) is fed back via Observe().
  /// Null keeps the evaluator bit-identical to the pre-supervision
  /// behavior. Set before the first Evaluate call.
  void set_proposal_guard(ProposalGuard* guard) { guard_ = guard; }
  ProposalGuard* proposal_guard() { return guard_; }

  /// Caps further spending at `units` budget units from the current used()
  /// mark (the supervision layer's failover cooldown). While a lease is
  /// active, Remaining()/Exhausted() and the admission gates see the lease
  /// bound; a lease-bounded refusal returns kResourceExhausted WITHOUT
  /// latching the sticky budget refusal, so clearing the lease restores
  /// normal accounting and the session continues. A lease never extends
  /// the real budget.
  void SetLease(double units) {
    lease_active_ = true;
    lease_limit_ = used_ + units;
  }
  void ClearLease() {
    lease_active_ = false;
    lease_refused_ = false;
  }
  bool lease_active() const { return lease_active_; }

  Evaluator(const Evaluator&) = delete;
  Evaluator& operator=(const Evaluator&) = delete;

  const ParameterSpace& space() const { return system_->space(); }
  const Workload& workload() const { return workload_; }
  TunableSystem* system() { return system_; }
  const TuningBudget& budget() const { return budget_; }

  /// Budget remaining, in full-run units (lease-bounded while a lease is
  /// active, so leased tuners plan against what they may actually spend).
  double Remaining() const { return EffectiveMax() - used_; }
  /// True once the budget is spent — or once any evaluation has been
  /// refused for budget reasons. The refusal clause is what makes
  /// fractional leftovers safe: censored/scaled trials can leave
  /// 0 < Remaining() < 1, where a full run no longer fits; without it a
  /// tuner looping `while (!Exhausted())` around an Evaluate() that keeps
  /// refusing would spin forever. A refusal proves the caller's next
  /// request cannot be funded, so it is terminal. With whole-unit costs a
  /// refusal only ever happens at Remaining() == 0, where Exhausted() was
  /// already true — the clause changes nothing there. An active lease
  /// additionally reports exhaustion once the leased units are spent,
  /// through a lease-scoped (non-terminal) refusal latch that ClearLease()
  /// resets — fractional leftovers under a lease would otherwise leave
  /// Exhausted() false while every request is refused (see SetLease).
  bool Exhausted() const {
    return budget_refused_ || lease_refused_ ||
           used_ >= EffectiveMax() - kBudgetEpsilon;
  }

  /// Runs the workload under `config`; returns the scalar objective
  /// (penalized runtime, lower is better). Fails with kResourceExhausted
  /// when the budget is spent and with the system's error for invalid
  /// configs. Each call costs 1 budget unit.
  Result<double> Evaluate(const Configuration& config);

  /// Evaluates a batch of configurations as ONE wall-clock round of
  /// parallel experiments (iTuned §2.4): configs fan out across
  /// TunableSystem::Clone()s on an internal thread pool of `parallelism`
  /// workers, and the trials are committed to the history in submission
  /// order, so the history/best/budget are bit-identical to calling
  /// Evaluate() serially on each config (only Trial::round differs).
  ///
  /// Budget: a batch of k configs costs k units. If fewer than k units
  /// remain, the batch is deterministically truncated to the first
  /// floor(remaining) configs; with no full unit left, returns
  /// kResourceExhausted. All configs are validated before anything runs.
  /// Returns the objectives of the evaluated (possibly truncated) prefix.
  ///
  /// Falls back to serial in-order execution — same results — when
  /// `parallelism` <= 1 or the system does not support Clone().
  Result<std::vector<double>> EvaluateBatch(
      const std::vector<Configuration>& configs, size_t parallelism);

  /// Shared worker pool for batch evaluation and tuner-internal parallel
  /// work (e.g. GP hyperparameter search). Created lazily; grows if a
  /// larger `min_threads` is requested later.
  ThreadPool* thread_pool(size_t min_threads);

  /// Like Evaluate, but kills the run once it exceeds `abort_at_seconds`
  /// (iTuned's early abort of low-utility experiments: an experiment already
  /// slower than the incumbent teaches little, so stop paying for it). An
  /// aborted run costs only the fraction of a budget unit it actually
  /// consumed (abort_at / measured runtime) and records a censored trial
  /// whose objective is the penalized abort time — a lower bound, never a
  /// new best. Returns the objective and sets *aborted accordingly.
  Result<double> EvaluateWithEarlyAbort(const Configuration& config,
                                        double abort_at_seconds,
                                        bool* aborted);

  /// Runs a scaled-down sample of the workload (workload.scale multiplied
  /// by `fraction` in (0, 1]); costs `fraction` budget units. Used by
  /// Ernest-style tuners that train on cheap small-sample experiments. The
  /// trial is recorded but excluded from best() (its objective is not
  /// comparable to full runs). Returns the measured objective of the sample.
  Result<double> EvaluateScaled(const Configuration& config, double fraction);

  /// Unit-level execution for adaptive tuners on IterativeSystems; costs
  /// 1/NumUnits budget units. Fails with kFailedPrecondition if the system
  /// is not iterative.
  Result<ExecutionResult> EvaluateUnit(const Configuration& config,
                                       size_t unit_index);

  /// Records an externally-executed unit sequence as one logical trial so
  /// that adaptive tuners' composite runs appear in the history.
  void RecordCompositeTrial(const Configuration& config,
                            const ExecutionResult& aggregate, double cost);

  const std::vector<Trial>& history() const { return history_; }
  /// Trial with the lowest objective so far, or nullptr if none.
  const Trial* best() const;
  double used() const { return used_; }

  /// Robustness-policy activity this session (see RobustnessPolicy).
  size_t retried_runs() const { return retried_runs_; }
  size_t timed_out_runs() const { return timed_out_runs_; }
  size_t remeasured_runs() const { return remeasured_runs_; }

  /// Zeroes the per-session robustness counters (retried/timed-out/
  /// re-measured). RunTuningSession calls this at session start so an
  /// Evaluator reused across Tune() invocations never carries one
  /// session's repair activity into the next session's outcome.
  void ResetSessionCounters() {
    retried_runs_ = 0;
    timed_out_runs_ = 0;
    remeasured_runs_ = 0;
  }

  /// Attaches a span tracer (not owned; null = tracing off, the default).
  /// The Evaluator emits the measurement half of the span taxonomy
  /// (DESIGN.md §9): round → [batch] → trial → {measure, retry, remeasure,
  /// commit}, with the same commit-boundary identifiers as the journal, so
  /// a replayed session reconstructs a structurally identical tree. Set
  /// before the first Evaluate call.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() { return tracer_; }

  /// Attaches a metrics registry (not owned; null = metrics off). Hot-path
  /// recording is atomic through cached pointers; see DESIGN.md §9 for the
  /// metric inventory. Set before the first Evaluate call.
  void set_metrics(MetricsRegistry* metrics);

  /// Objective value for a run under this evaluator's objective (custom if
  /// set, penalized runtime otherwise).
  double ObjectiveOf(const Configuration& config,
                     const ExecutionResult& result) const;

  /// Heap allocations performed by the most recent commit (CommitTrial
  /// through its journal append), as counted by the alloc hook
  /// (common/alloc_hook.h). Always 0 unless the counting override TU is
  /// linked in (tests and bench_hotpath only). The zero-alloc contract of
  /// DESIGN.md §11 is: steady state (past history reserve and buffer
  /// high-water marks), journal on, tracing/metrics off, default policy.
  uint64_t last_commit_allocs() const { return last_commit_allocs_; }

 private:
  /// Appends a trial and updates best-tracking. `exclude_from_best` marks
  /// the trial scaled (censored/partial measurements whose objectives are
  /// not comparable to completed full runs). Takes config/result by value:
  /// call sites move their last use in, so the commit path transfers
  /// ownership instead of deep-copying (the zero-alloc contract above).
  void CommitTrial(Configuration config, ExecutionResult result, double cost,
                   bool exclude_from_best = false);

  /// Re-executes `config` on the parent system while `result` is a
  /// transient failure, up to policy_.max_retries times, charging
  /// retry_cost_fraction * base_cost per superseded attempt into *cost.
  /// `reserved` is budget already spoken for by not-yet-committed runs
  /// (including this one's base cost); a retry only happens if it still
  /// fits. Returns the final attempt's measurement.
  /// `parent_span` parents the per-retry "retry" spans (0 = root; pass the
  /// enclosing trial span's id so repairs nest under their trial).
  ExecutionResult RetryTransient(const Configuration& config,
                                 const Workload& workload,
                                 ExecutionResult result, double base_cost,
                                 double reserved, double* cost,
                                 uint64_t parent_span);

  /// Full robustness pipeline for one full-cost measurement: transient
  /// retries, timeout censoring, MAD outlier re-measurement. Repairs
  /// execute serially on the parent system (in a batch, after SkipRuns has
  /// realigned it). Sets *cost to the total budget to charge and
  /// *exclude_from_best for censored results.
  ExecutionResult ApplyRobustnessPolicy(const Configuration& config,
                                        ExecutionResult result,
                                        double reserved, double* cost,
                                        bool* exclude_from_best,
                                        uint64_t parent_span);

  /// Modified z-score of `runtime` against completed unscaled trials, or
  /// 0 when the history is too short or degenerate.
  double OutlierScore(double runtime) const;

  /// Marks the budget terminally refused (see Exhausted()) and returns the
  /// kResourceExhausted status every admission gate hands back.
  Status RefuseBudget();

  /// Spending cap currently in force: the real budget, tightened by an
  /// active lease (a lease never extends the budget).
  double EffectiveMax() const {
    return lease_active_ ? std::min(budget_max_, lease_limit_) : budget_max_;
  }

  /// Admission-gate refusal that distinguishes lease exhaustion (the next
  /// `needed` units would still fit the real budget — non-sticky, the
  /// session continues once the lease clears) from true budget exhaustion
  /// (terminal; latches via RefuseBudget).
  Status Refuse(double needed);

  /// Runs the proposal guard's full admission pipeline (no-op when no
  /// guard is installed).
  Configuration AdmitProposal(const Configuration& config) {
    return guard_ != nullptr ? guard_->Admit(config) : config;
  }
  /// Sanitization-only guard pass for unit/scaled/composite paths.
  Configuration SanitizeProposal(const Configuration& config) {
    return guard_ != nullptr ? guard_->Sanitize(config) : config;
  }

  /// Polls the interrupt sources (callback + record limit); once any fires,
  /// latches interrupted_ and budget_refused_ so Exhausted()-looping tuners
  /// wind down. Sticky.
  bool InterruptRequested();

  /// Common prologue of every Evaluate* call: fails with the sticky journal
  /// error if one occurred, and with kAborted once an interrupt fired.
  Status EntryGate();

  /// system_->Execute with the measurement-noise cursor advanced; replaces
  /// every direct parent execution so system_runs_ stays in lockstep with
  /// the system's internal run index.
  Result<ExecutionResult> CountedExecute(const Configuration& config,
                                         const Workload& workload);

  /// Appends a journal record for history_.back() (call after the trial is
  /// fully finalized, including RecordCompositeTrial's cost stamp). A
  /// failure is sticky in journal_error_ and returned.
  Status JournalTrial(uint64_t batch_size, uint64_t lane,
                      uint64_t parent_span);
  /// Appends a kUnit record for an EvaluateUnit measurement.
  Status JournalUnit(const Configuration& config, size_t unit_index,
                     const ExecutionResult& result, double cost,
                     uint64_t parent_span);

  /// Converts a journal append failure into the policy's outcome: strict
  /// latches it into journal_error_ and returns it; degrade detaches the
  /// journal, writes the `.degraded` sidecar (best effort), emits the
  /// "journal_degrade" span and io.journal.degraded metric, and returns OK
  /// so the measurement still reaches the tuner.
  Status HandleJournalFailure(Status status, uint64_t parent_span);

  /// Feeds the journal's cumulative WriteFully telemetry (transient-error
  /// retries, short-write continuations) into the io.* counters as deltas.
  /// No-op when metrics are off or no journal is attached.
  void RecordIoTelemetry();

  /// Serves the next replay record as this trial: verifies kind/config/
  /// batch coordinates against the journal (divergence is kInternal),
  /// re-applies the recorded measurement to history/best/budget/counters.
  /// Emits a "trial" span under `parent_span` with measure/retry/remeasure
  /// children synthesized from the record's counter deltas and a "replay"
  /// span sharing the live journal_append's structural name, so a resumed
  /// session's span tree is structurally identical to the uninterrupted
  /// one. `synth_measure` is false for composite trials, whose live path
  /// performs no base measurement.
  Status ReplayTrial(const Configuration& config, uint64_t batch_size,
                     uint64_t lane, uint64_t parent_span, bool synth_measure);
  /// Serves the next replay record as a unit execution (emits the "unit"
  /// span and its synthesized children, mirroring the live EvaluateUnit).
  Result<ExecutionResult> ReplayUnit(const Configuration& config,
                                     size_t unit_index);
  /// Advances the system's run cursor to the record's cumulative count so
  /// post-replay (and off-journal) runs draw the same measurement noise as
  /// the uninterrupted session would have.
  Status FastForwardSystem(const JournalRecord& rec);

  /// Latches a replay-consistency error into journal_error_ (first one
  /// wins) and returns it, so divergence is terminal for the whole session
  /// even if a tuner — or the supervision layer — would otherwise swallow
  /// the kInternal it surfaces as.
  Status StickyReplayError(Status status) {
    if (!status.ok() && journal_error_.ok()) journal_error_ = status;
    return status;
  }

  /// Records the committed trial into the metrics registry (no-op when
  /// metrics are off). Call after the trial is fully finalized; replay
  /// calls it too, so deterministic trial metrics survive a resume.
  void RecordTrialMetrics(const Trial& trial);

  /// Emits the zero-duration measure/retry/remeasure children of a replayed
  /// trial span from the journal record's counter deltas.
  void SynthesizeRepairSpans(uint64_t trial_span, bool synth_measure,
                             uint64_t retries, uint64_t remeasures);

  TunableSystem* system_;
  Workload workload_;
  TuningBudget budget_;
  double budget_max_;
  double failure_penalty_;
  ObjectiveFunction objective_;  // empty = penalized runtime
  RobustnessPolicy policy_;
  double used_ = 0.0;
  bool budget_refused_ = false;
  bool lease_active_ = false;
  double lease_limit_ = 0.0;
  bool lease_refused_ = false;
  ProposalGuard* guard_ = nullptr;  // not owned; null = supervision off
  size_t retried_runs_ = 0;
  size_t timed_out_runs_ = 0;
  size_t remeasured_runs_ = 0;
  std::vector<Trial> history_;
  size_t best_index_ = 0;
  bool has_best_ = false;
  /// Wall-clock round counter: +1 per Evaluate* call, +1 per whole batch.
  size_t round_ = 0;
  std::unique_ptr<ThreadPool> pool_;

  TrialJournal* journal_ = nullptr;  // not owned
  JournalPolicy journal_policy_ = JournalPolicy::kStrict;
  bool journal_degraded_ = false;
  /// High-water marks of the journal's cumulative WriteFully telemetry, so
  /// RecordIoTelemetry feeds the io.* counters exact per-append deltas.
  uint64_t io_retries_seen_ = 0;
  uint64_t io_shorts_seen_ = 0;
  Status journal_error_;
  std::vector<JournalRecord> replay_;
  size_t replay_pos_ = 0;
  /// Parent-system executions so far (== the system's run index, which
  /// SkipRuns fast-forwards on resume). Every Execute, ExecuteUnit, retry,
  /// re-measurement, and batch clone run advances it.
  uint64_t system_runs_ = 0;
  std::function<bool()> interrupt_check_;
  uint64_t record_limit_ = 0;
  bool interrupted_ = false;

  /// Alloc-hook sample taken at CommitTrial entry and closed out when the
  /// trial's journal record lands (see last_commit_allocs()).
  uint64_t commit_allocs_sample_ = 0;
  uint64_t last_commit_allocs_ = 0;

  Tracer* tracer_ = nullptr;            // not owned; null = tracing off
  MetricsRegistry* metrics_ = nullptr;  // not owned; null = metrics off
  /// Metric pointers cached once in set_metrics so hot paths never take the
  /// registry lock. All null when metrics are off.
  struct MetricSet {
    Histogram* trial_latency = nullptr;  // trial.latency_seconds
    Histogram* trial_cost = nullptr;     // trial.cost_units
    Histogram* queue_wait = nullptr;     // pool.queue_wait_host_seconds
    Counter* trials = nullptr;           // trial.total
    Counter* failed = nullptr;           // trial.failed
    Counter* censored = nullptr;         // trial.censored
    Counter* retried = nullptr;          // trial.retried
    Counter* timed_out = nullptr;        // trial.timed_out
    Counter* remeasured = nullptr;       // trial.remeasured
    Counter* replayed = nullptr;         // trial.replayed
    Gauge* budget_used = nullptr;        // budget.used_units
    Gauge* budget_retry = nullptr;       // budget.retry_units
    Gauge* budget_remeasure = nullptr;   // budget.remeasure_units
    Counter* io_appends = nullptr;       // io.append.total
    Counter* io_retries = nullptr;       // io.append.retries
    Counter* io_shorts = nullptr;        // io.append.short_writes
    Counter* io_errors = nullptr;        // io.error.total
    Gauge* io_degraded = nullptr;        // io.journal.degraded
  } m_;
};

/// Interface implemented by every tuning approach. Tune() explores via the
/// evaluator and returns; the evaluator's history/best() carry the outcome.
class Tuner {
 public:
  virtual ~Tuner() = default;

  virtual std::string name() const = 0;
  virtual TunerCategory category() const = 0;

  /// Runs the tuning procedure. `rng` seeds all of the tuner's randomness.
  /// Returning OK with an empty history is valid for tuners that can
  /// recommend without experiments (e.g. rule-based) — they should still
  /// evaluate their recommendation once if budget allows so the outcome is
  /// recorded.
  virtual Status Tune(Evaluator* evaluator, Rng* rng) = 0;

  /// Requests that the tuner evaluate up to `parallelism` experiments per
  /// round via Evaluator::EvaluateBatch. Tuners without a batch strategy
  /// ignore this (the default); batch-aware tuners must behave identically
  /// to their serial path when parallelism <= 1.
  virtual void set_parallelism(size_t parallelism) { (void)parallelism; }

  /// Human-readable summary of what the tuner did/learned (rankings,
  /// model quality, rules fired). Valid after Tune().
  virtual std::string Report() const { return ""; }
};

}  // namespace atune

#endif  // ATUNE_CORE_TUNER_H_
