#ifndef ATUNE_CORE_TUNER_H_
#define ATUNE_CORE_TUNER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/configuration.h"
#include "core/objective.h"
#include "core/system.h"

namespace atune {

/// The paper's six-way taxonomy of parameter tuning approaches (Section 2.1).
enum class TunerCategory {
  kRuleBased,
  kCostModeling,
  kSimulationBased,
  kExperimentDriven,
  kMachineLearning,
  kAdaptive,
};

const char* TunerCategoryToString(TunerCategory category);

/// Resource limits for one tuning session. The dominant cost in practice is
/// real system runs ("experiments"); the budget is expressed in those.
struct TuningBudget {
  /// Maximum number of full workload executions the tuner may spend.
  /// Unit-level executions by adaptive tuners cost 1/NumUnits each.
  size_t max_evaluations = 30;
};

/// One recorded system run.
struct Trial {
  Configuration config;
  ExecutionResult result;
  double objective = 0.0;  ///< penalized runtime (lower is better)
  double cost = 1.0;       ///< evaluation budget consumed (1 = full run)
  /// True for runs on a scaled-down workload sample (Ernest-style training
  /// runs); their objectives are not comparable to full runs, so they are
  /// excluded from best() tracking.
  bool scaled = false;
  /// Wall-clock round the trial ran in. Every Evaluate* call is one round;
  /// an EvaluateBatch of k configs is also ONE round (its experiments run
  /// concurrently), so a batch of k costs k budget units but one round —
  /// iTuned §2.4's parallel-experiment saving. Convergence-vs-rounds curves
  /// are derived from this (TuningOutcome::convergence_round).
  size_t round = 0;
};

/// Budget-enforcing gateway between a tuner and the system under tuning.
///
/// All tuners must obtain measurements through an Evaluator: it counts
/// evaluations against the budget, applies the failure penalty to produce a
/// scalar objective, and records the trial history (from which convergence
/// curves and the best configuration are derived).
class Evaluator {
 public:
  /// Does not take ownership of `system`. `failure_penalty` multiplies the
  /// runtime of failed runs when forming the objective.
  Evaluator(TunableSystem* system, Workload workload, TuningBudget budget,
            double failure_penalty = 10.0);

  /// Replaces the default penalized-runtime objective (e.g. with a cloud
  /// dollar-cost or latency-SLA objective from core/objective.h). Set
  /// before the first Evaluate call.
  void set_objective(ObjectiveFunction objective) {
    objective_ = std::move(objective);
  }

  Evaluator(const Evaluator&) = delete;
  Evaluator& operator=(const Evaluator&) = delete;

  const ParameterSpace& space() const { return system_->space(); }
  const Workload& workload() const { return workload_; }
  TunableSystem* system() { return system_; }
  const TuningBudget& budget() const { return budget_; }

  /// Budget remaining, in full-run units.
  double Remaining() const { return budget_max_ - used_; }
  bool Exhausted() const { return used_ >= budget_max_ - 1e-9; }

  /// Runs the workload under `config`; returns the scalar objective
  /// (penalized runtime, lower is better). Fails with kResourceExhausted
  /// when the budget is spent and with the system's error for invalid
  /// configs. Each call costs 1 budget unit.
  Result<double> Evaluate(const Configuration& config);

  /// Evaluates a batch of configurations as ONE wall-clock round of
  /// parallel experiments (iTuned §2.4): configs fan out across
  /// TunableSystem::Clone()s on an internal thread pool of `parallelism`
  /// workers, and the trials are committed to the history in submission
  /// order, so the history/best/budget are bit-identical to calling
  /// Evaluate() serially on each config (only Trial::round differs).
  ///
  /// Budget: a batch of k configs costs k units. If fewer than k units
  /// remain, the batch is deterministically truncated to the first
  /// floor(remaining) configs; with no full unit left, returns
  /// kResourceExhausted. All configs are validated before anything runs.
  /// Returns the objectives of the evaluated (possibly truncated) prefix.
  ///
  /// Falls back to serial in-order execution — same results — when
  /// `parallelism` <= 1 or the system does not support Clone().
  Result<std::vector<double>> EvaluateBatch(
      const std::vector<Configuration>& configs, size_t parallelism);

  /// Shared worker pool for batch evaluation and tuner-internal parallel
  /// work (e.g. GP hyperparameter search). Created lazily; grows if a
  /// larger `min_threads` is requested later.
  ThreadPool* thread_pool(size_t min_threads);

  /// Like Evaluate, but kills the run once it exceeds `abort_at_seconds`
  /// (iTuned's early abort of low-utility experiments: an experiment already
  /// slower than the incumbent teaches little, so stop paying for it). An
  /// aborted run costs only the fraction of a budget unit it actually
  /// consumed (abort_at / measured runtime) and records a censored trial
  /// whose objective is the penalized abort time — a lower bound, never a
  /// new best. Returns the objective and sets *aborted accordingly.
  Result<double> EvaluateWithEarlyAbort(const Configuration& config,
                                        double abort_at_seconds,
                                        bool* aborted);

  /// Runs a scaled-down sample of the workload (workload.scale multiplied
  /// by `fraction` in (0, 1]); costs `fraction` budget units. Used by
  /// Ernest-style tuners that train on cheap small-sample experiments. The
  /// trial is recorded but excluded from best() (its objective is not
  /// comparable to full runs). Returns the measured objective of the sample.
  Result<double> EvaluateScaled(const Configuration& config, double fraction);

  /// Unit-level execution for adaptive tuners on IterativeSystems; costs
  /// 1/NumUnits budget units. Fails with kFailedPrecondition if the system
  /// is not iterative.
  Result<ExecutionResult> EvaluateUnit(const Configuration& config,
                                       size_t unit_index);

  /// Records an externally-executed unit sequence as one logical trial so
  /// that adaptive tuners' composite runs appear in the history.
  void RecordCompositeTrial(const Configuration& config,
                            const ExecutionResult& aggregate, double cost);

  const std::vector<Trial>& history() const { return history_; }
  /// Trial with the lowest objective so far, or nullptr if none.
  const Trial* best() const;
  double used() const { return used_; }

  /// Objective value for a run under this evaluator's objective (custom if
  /// set, penalized runtime otherwise).
  double ObjectiveOf(const Configuration& config,
                     const ExecutionResult& result) const;

 private:
  /// Appends a fully-executed trial and updates best-tracking.
  void CommitTrial(const Configuration& config, const ExecutionResult& result,
                   double cost);

  TunableSystem* system_;
  Workload workload_;
  TuningBudget budget_;
  double budget_max_;
  double failure_penalty_;
  ObjectiveFunction objective_;  // empty = penalized runtime
  double used_ = 0.0;
  std::vector<Trial> history_;
  size_t best_index_ = 0;
  bool has_best_ = false;
  /// Wall-clock round counter: +1 per Evaluate* call, +1 per whole batch.
  size_t round_ = 0;
  std::unique_ptr<ThreadPool> pool_;
};

/// Interface implemented by every tuning approach. Tune() explores via the
/// evaluator and returns; the evaluator's history/best() carry the outcome.
class Tuner {
 public:
  virtual ~Tuner() = default;

  virtual std::string name() const = 0;
  virtual TunerCategory category() const = 0;

  /// Runs the tuning procedure. `rng` seeds all of the tuner's randomness.
  /// Returning OK with an empty history is valid for tuners that can
  /// recommend without experiments (e.g. rule-based) — they should still
  /// evaluate their recommendation once if budget allows so the outcome is
  /// recorded.
  virtual Status Tune(Evaluator* evaluator, Rng* rng) = 0;

  /// Requests that the tuner evaluate up to `parallelism` experiments per
  /// round via Evaluator::EvaluateBatch. Tuners without a batch strategy
  /// ignore this (the default); batch-aware tuners must behave identically
  /// to their serial path when parallelism <= 1.
  virtual void set_parallelism(size_t parallelism) { (void)parallelism; }

  /// Human-readable summary of what the tuner did/learned (rankings,
  /// model quality, rules fired). Valid after Tune().
  virtual std::string Report() const { return ""; }
};

}  // namespace atune

#endif  // ATUNE_CORE_TUNER_H_
