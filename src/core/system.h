#ifndef ATUNE_CORE_SYSTEM_H_
#define ATUNE_CORE_SYSTEM_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/configuration.h"
#include "core/parameter_space.h"

namespace atune {

class IterativeSystem;

/// Description of a job/query mix submitted to a tunable system. The system
/// interprets `kind` and `properties`; tuners treat workloads opaquely
/// (except rule-based tuners, which may read descriptive properties, and ML
/// tuners, which characterize workloads by observed runtime metrics).
struct Workload {
  std::string name;
  /// System-specific workload family, e.g. "oltp", "olap", "mixed" for the
  /// DBMS; "wordcount", "terasort", "join" for MapReduce; "sql_aggregate",
  /// "iterative_ml", "streaming" for Spark.
  std::string kind;
  /// Input scale factor (1.0 = the system's nominal dataset).
  double scale = 1.0;
  /// Additional named characteristics (skew, selectivity, read_ratio, ...).
  std::map<std::string, double> properties;

  double PropertyOr(const std::string& key, double fallback) const {
    auto it = properties.find(key);
    return it == properties.end() ? fallback : it->second;
  }
};

/// Wall-clock seconds a failed run wastes before a watchdog/operator kills
/// it. Simulators charge failures this much (scaled to the fraction of the
/// workload attempted) so that crashing is never cheaper than finishing —
/// misconfiguration costs real time, as the paper's motivation stresses.
inline constexpr double kFailedRunWallClockSec = 1800.0;

/// Outcome of executing a workload under one configuration.
struct ExecutionResult {
  /// End-to-end latency of the run in (simulated) seconds. For failed runs
  /// this is the time until failure; for censored runs, the time observed
  /// before the measurement was cut off (a lower bound on the true runtime).
  double runtime_seconds = 0.0;
  /// True if the run failed (OOM, deadlock storm, spill death, ...).
  bool failed = false;
  /// True if the failure is config-independent (a lost node, a preempted
  /// container, a disk hiccup) rather than caused by the configuration
  /// under test. Transient failures are safe — and worthwhile — to retry;
  /// the Evaluator's RobustnessPolicy does so. Config-caused failures
  /// (OOM, abort storms) keep this false and are never retried.
  bool transient = false;
  /// True if the measurement was stopped before the run finished — by the
  /// early-abort threshold or the timeout watchdog. Censored runs are
  /// charged only the budget fraction actually observed and are excluded
  /// from best-tracking; they are *not* failures of the configuration.
  bool censored = false;
  std::string failure_reason;
  /// Internal counters exposed by the system (buffer miss ratio, spill
  /// bytes, shuffle time, GC time, ...). Keys are system-specific; see each
  /// system's MetricNames(). ML and diagnostic tuners consume these.
  std::map<std::string, double> metrics;

  double MetricOr(const std::string& key, double fallback) const {
    auto it = metrics.find(key);
    return it == metrics.end() ? fallback : it->second;
  }
};

/// A system whose performance is controlled by configuration parameters —
/// the object under tuning. Implementations in src/systems are simulators of
/// a DBMS, Hadoop MapReduce, and Spark (see DESIGN.md §4 for why simulators
/// substitute faithfully for the real engines here).
///
/// Execute() must be deterministic given (configuration, workload, the
/// system's construction seed and its internal run counter); systems add
/// seeded run-to-run noise to mimic real measurement variance.
class TunableSystem {
 public:
  virtual ~TunableSystem() = default;

  virtual std::string name() const = 0;

  /// The tunable knobs this system exposes.
  virtual const ParameterSpace& space() const = 0;

  /// Runs `workload` under `config` and returns the measured result.
  /// Invalid configurations return an error (tuners should validate first);
  /// *legal but bad* configurations return ok with failed=true or a huge
  /// runtime — exactly how a real system punishes misconfiguration.
  virtual Result<ExecutionResult> Execute(const Configuration& config,
                                          const Workload& workload) = 0;

  /// Deep-copies the system for parallel batch evaluation. Each simulator
  /// derives its per-run measurement noise from (construction seed, run
  /// index), so a clone created with `runs_ahead = i` draws on its next
  /// execution exactly the noise the parent would draw on its (i+1)-th
  /// execution from now — its own derived noise stream, disjoint from its
  /// sibling clones'. Together with SkipRuns() this makes a batch of k runs
  /// fanned out over k clones bit-identical to k serial Execute() calls on
  /// the parent (see Evaluator::EvaluateBatch and DESIGN.md §6).
  ///
  /// Returns nullptr when cloning is unsupported (the default); callers
  /// must then fall back to serial execution.
  virtual std::unique_ptr<TunableSystem> Clone(uint64_t runs_ahead) const {
    (void)runs_ahead;
    return nullptr;
  }

  /// Advances the measurement-noise stream as if `n` executions had
  /// happened, keeping a parent system aligned after its clones ran a batch
  /// on its behalf. No-op for systems without per-run noise accounting.
  virtual void SkipRuns(uint64_t n) { (void)n; }

  /// Hardware/system facts rule-based tuners may consult (total_ram_mb,
  /// cores_per_node, num_nodes, disk_mbps, network_mbps, ...).
  virtual std::map<std::string, double> Descriptors() const { return {}; }

  /// Names of the metrics Execute() reports, for ML feature pipelines.
  virtual std::vector<std::string> MetricNames() const { return {}; }

  /// The iterative (unit-level) view of this system, or nullptr if it has
  /// none. Callers must use this instead of dynamic_cast: decorators such
  /// as FaultInjectingSystem are IterativeSystems themselves (so unit runs
  /// stay instrumented) but only *behave* iteratively when the system they
  /// wrap does. Defined out of line below, after IterativeSystem.
  virtual IterativeSystem* AsIterative();
};

/// A long-running system whose execution decomposes into sequential units
/// (epochs, batches, job stages). Adaptive tuners reconfigure between units.
class IterativeSystem : public TunableSystem {
 public:
  /// Number of units one workload run consists of.
  virtual size_t NumUnits(const Workload& workload) const = 0;

  /// Executes unit `unit_index` (0-based) of the workload under `config`.
  /// The result's runtime covers just this unit.
  virtual Result<ExecutionResult> ExecuteUnit(const Configuration& config,
                                              const Workload& workload,
                                              size_t unit_index) = 0;

  /// Cost (relative to a full run, in [0,1]) of switching configurations
  /// between units — e.g. flushing caches or restarting executors.
  virtual double ReconfigurationCost() const { return 0.0; }

  IterativeSystem* AsIterative() override { return this; }
};

inline IterativeSystem* TunableSystem::AsIterative() { return nullptr; }

}  // namespace atune

#endif  // ATUNE_CORE_SYSTEM_H_
