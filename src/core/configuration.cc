#include "core/configuration.h"

#include "common/string_util.h"

namespace atune {

Result<ParamValue> Configuration::Get(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) {
    return Status::NotFound(StrFormat("parameter '%s' not set", name.c_str()));
  }
  return it->second;
}

Result<int64_t> Configuration::GetInt(const std::string& name) const {
  ATUNE_ASSIGN_OR_RETURN(ParamValue v, Get(name));
  if (const int64_t* i = std::get_if<int64_t>(&v)) return *i;
  if (const double* d = std::get_if<double>(&v)) {
    return static_cast<int64_t>(*d);
  }
  return Status::InvalidArgument(
      StrFormat("parameter '%s' is not numeric", name.c_str()));
}

Result<double> Configuration::GetDouble(const std::string& name) const {
  ATUNE_ASSIGN_OR_RETURN(ParamValue v, Get(name));
  if (const double* d = std::get_if<double>(&v)) return *d;
  if (const int64_t* i = std::get_if<int64_t>(&v)) {
    return static_cast<double>(*i);
  }
  return Status::InvalidArgument(
      StrFormat("parameter '%s' is not numeric", name.c_str()));
}

Result<bool> Configuration::GetBool(const std::string& name) const {
  ATUNE_ASSIGN_OR_RETURN(ParamValue v, Get(name));
  if (const bool* b = std::get_if<bool>(&v)) return *b;
  return Status::InvalidArgument(
      StrFormat("parameter '%s' is not bool", name.c_str()));
}

Result<std::string> Configuration::GetString(const std::string& name) const {
  ATUNE_ASSIGN_OR_RETURN(ParamValue v, Get(name));
  if (const std::string* s = std::get_if<std::string>(&v)) return *s;
  return Status::InvalidArgument(
      StrFormat("parameter '%s' is not a string", name.c_str()));
}

int64_t Configuration::IntOr(const std::string& name, int64_t fallback) const {
  auto r = GetInt(name);
  return r.ok() ? *r : fallback;
}

double Configuration::DoubleOr(const std::string& name,
                               double fallback) const {
  auto r = GetDouble(name);
  return r.ok() ? *r : fallback;
}

bool Configuration::BoolOr(const std::string& name, bool fallback) const {
  auto r = GetBool(name);
  return r.ok() ? *r : fallback;
}

std::string Configuration::StringOr(const std::string& name,
                                    std::string fallback) const {
  auto r = GetString(name);
  return r.ok() ? *r : fallback;
}

std::vector<std::string> Configuration::Diff(const Configuration& a,
                                             const Configuration& b) {
  std::vector<std::string> out;
  for (const auto& [name, value] : a.values_) {
    auto it = b.values_.find(name);
    if (it == b.values_.end() || !(it->second == value)) out.push_back(name);
  }
  for (const auto& [name, value] : b.values_) {
    (void)value;
    if (a.values_.find(name) == a.values_.end()) out.push_back(name);
  }
  return out;
}

std::string Configuration::ToString() const {
  std::string out;
  for (const auto& [name, value] : values_) {
    if (!out.empty()) out += " ";
    out += name;
    out += "=";
    out += ParamValueToString(value);
  }
  return out;
}

}  // namespace atune
