#include "core/session.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace atune {

Result<TuningOutcome> RunTuningSession(Tuner* tuner, TunableSystem* system,
                                       const Workload& workload,
                                       const SessionOptions& options) {
  if (tuner == nullptr || system == nullptr) {
    return Status::InvalidArgument("RunTuningSession: null tuner or system");
  }
  Evaluator evaluator(system, workload, options.budget,
                      options.failure_penalty);
  if (options.objective) evaluator.set_objective(options.objective);
  evaluator.set_robustness_policy(options.robustness);
  Rng rng(options.seed);
  Status tune_status = tuner->Tune(&evaluator, &rng);
  // Budget exhaustion mid-algorithm is an expected way for tuning to end.
  if (!tune_status.ok() &&
      tune_status.code() != StatusCode::kResourceExhausted) {
    return tune_status;
  }

  TuningOutcome outcome;
  outcome.tuner_name = tuner->name();
  outcome.category = tuner->category();
  outcome.history = evaluator.history();
  outcome.evaluations_used = evaluator.used();
  outcome.retried_runs = evaluator.retried_runs();
  outcome.timed_out_runs = evaluator.timed_out_runs();
  outcome.remeasured_runs = evaluator.remeasured_runs();
  outcome.tuner_report = tuner->Report();

  const Trial* best = evaluator.best();
  if (best != nullptr) {
    outcome.best_config = best->config;
    outcome.best_objective = best->objective;
  } else {
    // Tuner made no measured recommendation; fall back to defaults.
    outcome.best_config = system->space().DefaultConfiguration();
    outcome.best_objective = std::numeric_limits<double>::quiet_NaN();
  }

  double running_best = std::numeric_limits<double>::infinity();
  double cumulative_cost = 0.0;
  for (const Trial& trial : outcome.history) {
    if (!trial.scaled) running_best = std::min(running_best, trial.objective);
    cumulative_cost += trial.cost;
    outcome.convergence.push_back(running_best);
    outcome.convergence_cost.push_back(cumulative_cost);
    outcome.convergence_round.push_back(static_cast<double>(trial.round));
    if (trial.result.censored) {
      ++outcome.censored_runs;
    } else if (trial.result.failed) {
      ++outcome.failed_runs;
    }
  }

  if (options.measure_default) {
    Configuration defaults = system->space().DefaultConfiguration();
    auto default_run = system->Execute(defaults, workload);
    if (default_run.ok()) {
      outcome.default_objective = evaluator.ObjectiveOf(defaults, *default_run);
      if (outcome.best_objective > 0.0 &&
          !std::isnan(outcome.best_objective)) {
        outcome.speedup_over_default =
            outcome.default_objective / outcome.best_objective;
      }
    }
  }
  return outcome;
}

}  // namespace atune
