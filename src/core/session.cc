#include "core/session.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/journal.h"

namespace atune {

namespace {

JournalHeader MakeHeader(const Tuner& tuner, const TunableSystem& system,
                         const Workload& workload,
                         const SessionOptions& options) {
  JournalHeader header;
  header.tuner_name = tuner.name();
  header.system_name = system.name();
  header.workload_name = workload.name;
  header.workload_kind = workload.kind;
  header.workload_scale = workload.scale;
  header.workload_properties = workload.properties;
  header.seed = options.seed;
  header.max_evaluations = options.budget.max_evaluations;
  header.failure_penalty = options.failure_penalty;
  header.max_retries = options.robustness.max_retries;
  header.retry_cost_fraction = options.robustness.retry_cost_fraction;
  header.timeout_seconds = options.robustness.timeout_seconds;
  header.outlier_mad_threshold = options.robustness.outlier_mad_threshold;
  header.outlier_min_history = options.robustness.outlier_min_history;
  header.remeasure_runs = options.robustness.remeasure_runs;
  return header;
}

/// Shared core of RunTuningSession / ResumeTuningSession. `journal` may be
/// null (un-journaled session); `replay` holds the recovered records to
/// serve before going live (empty for fresh sessions).
Result<TuningOutcome> RunSessionImpl(Tuner* tuner, TunableSystem* system,
                                     const Workload& workload,
                                     const SessionOptions& options,
                                     TrialJournal* journal,
                                     std::vector<JournalRecord> replay,
                                     std::vector<std::string> warnings) {
  Evaluator evaluator(system, workload, options.budget,
                      options.failure_penalty);
  if (options.objective) evaluator.set_objective(options.objective);
  evaluator.set_robustness_policy(options.robustness);
  if (journal != nullptr) evaluator.set_journal(journal);
  evaluator.set_journal_policy(options.journal_policy);
  if (options.interrupt_check) {
    evaluator.set_interrupt_check(options.interrupt_check);
  }
  evaluator.set_interrupt_after_records(options.interrupt_after_records);
  if (!replay.empty()) evaluator.SetReplay(std::move(replay));
  evaluator.set_tracer(options.tracer);
  evaluator.set_metrics(options.metrics);
  // A reused Evaluator would otherwise leak one session's repair counters
  // into the next outcome; replay re-establishes them from the journal.
  evaluator.ResetSessionCounters();

  // Install tracer/metrics process-wide so instrumentation the session
  // object can't reach (GP fits, acquisition loops) finds them; installing
  // null keeps whatever is current, so untraced sessions can run
  // concurrently with a traced one without clobbering it.
  ScopedTracerInstall tracer_install(options.tracer);
  ScopedMetricsInstall metrics_install(options.metrics);
  ScopedSpan session_span(options.tracer, "session");
  if (session_span.active()) {
    session_span.AddArg("tuner", tuner->name());
    session_span.AddArg("system", system->name());
    session_span.AddArg("workload", workload.name);
    session_span.AddArg("seed", std::to_string(options.seed));
  }

  Rng rng(options.seed);
  Status tune_status = tuner->Tune(&evaluator, &rng);

  // A journal append failure means measurements outran the checkpoint;
  // nothing after that point is trustworthy, so it overrides everything.
  if (!evaluator.journal_error().ok()) return evaluator.journal_error();
  // An interrupt aborts the session whatever the tuner returned (some
  // tuners translate the refusal into a clean exit); the journal already
  // holds every committed trial.
  if (evaluator.interrupted()) {
    return Status::Aborted(StrFormat(
        "tuning session interrupted after %zu journaled records; resume "
        "with the same parameters to continue",
        journal != nullptr ? static_cast<size_t>(journal->next_seq())
                           : evaluator.history().size()));
  }
  // Budget exhaustion mid-algorithm is an expected way for tuning to end.
  if (!tune_status.ok() &&
      tune_status.code() != StatusCode::kResourceExhausted) {
    return tune_status;
  }
  // Leftover replay records mean the tuner asked for fewer evaluations than
  // the journal holds — the sessions diverged.
  if (evaluator.replay_active()) {
    return Status::Internal(StrFormat(
        "journal replay finished with %zu unconsumed records; the resumed "
        "session does not match the journaled one",
        evaluator.replay_pending()));
  }

  TuningOutcome outcome;
  outcome.tuner_name = tuner->name();
  outcome.category = tuner->category();
  outcome.history = evaluator.history();
  outcome.evaluations_used = evaluator.used();
  outcome.retried_runs = evaluator.retried_runs();
  outcome.timed_out_runs = evaluator.timed_out_runs();
  outcome.remeasured_runs = evaluator.remeasured_runs();
  outcome.tuner_report = tuner->Report();
  outcome.replayed_records = evaluator.replayed_records();
  outcome.recovery_warnings = std::move(warnings);
  outcome.journal_degraded = evaluator.journal_degraded();

  // If every full measurement failed or was censored, the session has no
  // recommendation to stand behind (even a penalized-objective "best" is a
  // config whose run failed) — surface that as a distinct status instead of
  // the old silent best_objective = NaN with kOk. Successful scaled
  // training runs (Ernest-style) count toward neither side.
  size_t attempts = 0;
  size_t usable = 0;
  for (const Trial& trial : outcome.history) {
    if (trial.scaled && !trial.result.failed && !trial.result.censored) {
      continue;
    }
    ++attempts;
    if (!trial.result.failed && !trial.result.censored) ++usable;
  }
  if (attempts > 0 && usable == 0) {
    return Status::AllTrialsFailed(StrFormat(
        "all %zu measured trials failed or were censored; no usable "
        "recommendation",
        attempts));
  }

  const Trial* best = evaluator.best();
  if (best != nullptr) {
    outcome.best_config = best->config;
    outcome.best_objective = best->objective;
  } else {
    // Tuner made no measured recommendation (e.g. rule-based, or only
    // scaled training runs); fall back to defaults.
    outcome.best_config = system->space().DefaultConfiguration();
    outcome.best_objective = std::numeric_limits<double>::quiet_NaN();
  }

  double running_best = std::numeric_limits<double>::infinity();
  double cumulative_cost = 0.0;
  for (const Trial& trial : outcome.history) {
    if (!trial.scaled) running_best = std::min(running_best, trial.objective);
    cumulative_cost += trial.cost;
    outcome.convergence.push_back(running_best);
    outcome.convergence_cost.push_back(cumulative_cost);
    outcome.convergence_round.push_back(static_cast<double>(trial.round));
    if (trial.result.censored) {
      ++outcome.censored_runs;
    } else if (trial.result.failed) {
      ++outcome.failed_runs;
    }
  }

  if (options.measure_default) {
    ScopedSpan default_span(options.tracer, "default_measure",
                            session_span.id());
    Configuration defaults = system->space().DefaultConfiguration();
    auto default_run = system->Execute(defaults, workload);
    if (default_run.ok()) {
      outcome.default_objective = evaluator.ObjectiveOf(defaults, *default_run);
      if (outcome.best_objective > 0.0 &&
          !std::isnan(outcome.best_objective)) {
        outcome.speedup_over_default =
            outcome.default_objective / outcome.best_objective;
      }
    }
  }
  if (options.metrics != nullptr) {
    options.metrics->GetGauge("session.replayed_records")
        ->Set(static_cast<double>(outcome.replayed_records));
    outcome.metrics = options.metrics->Snapshot();
  }
  return outcome;
}

}  // namespace

Result<TuningOutcome> RunTuningSession(Tuner* tuner, TunableSystem* system,
                                       const Workload& workload,
                                       const SessionOptions& options) {
  if (tuner == nullptr || system == nullptr) {
    return Status::InvalidArgument("RunTuningSession: null tuner or system");
  }
  if (options.journal_path.empty()) {
    return RunSessionImpl(tuner, system, workload, options,
                          /*journal=*/nullptr, {}, {});
  }
  ATUNE_ASSIGN_OR_RETURN(
      std::unique_ptr<TrialJournal> journal,
      TrialJournal::Create(options.journal_path,
                           MakeHeader(*tuner, *system, workload, options)));
  return RunSessionImpl(tuner, system, workload, options, journal.get(), {},
                        {});
}

Result<TuningOutcome> ResumeTuningSession(Tuner* tuner, TunableSystem* system,
                                          const Workload& workload,
                                          const SessionOptions& options) {
  if (tuner == nullptr || system == nullptr) {
    return Status::InvalidArgument("ResumeTuningSession: null tuner or system");
  }
  if (options.journal_path.empty()) {
    return Status::InvalidArgument(
        "ResumeTuningSession: options.journal_path must be set");
  }
  // A degraded session continued un-journaled after an I/O failure, so its
  // journal is an incomplete record: replaying it would silently resurrect
  // a truncated history as if it were the whole session.
  if (IoEnv::Current()
          ->FileSize(options.journal_path + kDegradedSidecarSuffix)
          .ok()) {
    return Status::FailedPrecondition(StrFormat(
        "journal at %s is marked degraded (%s%s exists): the original "
        "session continued un-journaled after an I/O failure, so the journal "
        "is incomplete; start a fresh session instead of resuming",
        options.journal_path.c_str(), options.journal_path.c_str(),
        kDegradedSidecarSuffix));
  }
  auto recovered_or = TrialJournal::OpenForResume(options.journal_path);
  if (!recovered_or.ok()) {
    if (recovered_or.status().code() == StatusCode::kNotFound) {
      // Nothing to resume; "always resume" should be a safe operating mode.
      ATUNE_LOG(Warning) << "no journal at " << options.journal_path
                         << "; starting a fresh session";
      return RunTuningSession(tuner, system, workload, options);
    }
    return recovered_or.status();
  }
  TrialJournal::Recovered recovered = std::move(*recovered_or);
  for (const std::string& warning : recovered.warnings) {
    ATUNE_LOG(Warning) << "journal recovery: " << warning;
  }
  if (!recovered.header_valid) {
    // The preamble itself was unreadable — treat like a missing journal.
    ATUNE_LOG(Warning) << "journal at " << options.journal_path
                       << " has an unreadable header; starting fresh";
    return RunTuningSession(tuner, system, workload, options);
  }
  JournalHeader expected = MakeHeader(*tuner, *system, workload, options);
  if (recovered.header != expected) {
    return Status::InvalidArgument(StrFormat(
        "journal at %s belongs to a different session (%s); refusing to "
        "resume",
        options.journal_path.c_str(),
        expected.DiffString(recovered.header).c_str()));
  }
  // Note: the system is NOT fast-forwarded here. The Evaluator advances the
  // measurement-noise cursor incrementally as records replay, so any runs a
  // tuner performs directly on the system between trials (e.g. OtterTune's
  // offline repository) land on the same run indices as the original session.
  return RunSessionImpl(tuner, system, workload, options,
                        recovered.journal.get(), std::move(recovered.records),
                        std::move(recovered.warnings));
}

}  // namespace atune
