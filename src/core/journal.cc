#include "core/journal.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/file_util.h"
#include "common/io_env.h"
#include "common/string_util.h"

namespace atune {
namespace {

constexpr char kMagic[8] = {'A', 'T', 'U', 'N', 'E', 'W', 'A', 'L'};
constexpr uint32_t kVersion = 1;
/// Sanity cap on one frame; a corrupt length field must not trigger a
/// gigantic allocation during recovery.
constexpr uint32_t kMaxFrameBytes = 64u << 20;

// ---- byte-buffer primitives (little-endian) -------------------------------

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}
void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}
void PutDouble(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}
void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked reader over a payload; any overrun marks it bad and all
/// later Gets fail, so parse code can check ok() once at the end.
class Reader {
 public:
  Reader(const char* data, size_t n) : p_(data), end_(data + n) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return p_ == end_; }

  uint8_t GetU8() {
    if (!Require(1)) return 0;
    return static_cast<uint8_t>(*p_++);
  }
  uint32_t GetU32() {
    if (!Require(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(*p_++)) << (8 * i);
    }
    return v;
  }
  uint64_t GetU64() {
    if (!Require(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(*p_++)) << (8 * i);
    }
    return v;
  }
  double GetDouble() {
    uint64_t bits = GetU64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string GetString() {
    uint32_t n = GetU32();
    if (!Require(n)) return std::string();
    std::string s(p_, n);
    p_ += n;
    return s;
  }

 private:
  bool Require(size_t n) {
    if (!ok_ || static_cast<size_t>(end_ - p_) < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const char* p_;
  const char* end_;
  bool ok_ = true;
};

// ---- domain-type serialization --------------------------------------------

void PutConfiguration(std::string* out, const Configuration& config) {
  PutU32(out, static_cast<uint32_t>(config.values().size()));
  for (const auto& [name, value] : config.values()) {  // sorted: std::map
    PutString(out, name);
    PutU8(out, static_cast<uint8_t>(value.index()));
    if (const auto* i = std::get_if<int64_t>(&value)) {
      PutU64(out, static_cast<uint64_t>(*i));
    } else if (const auto* d = std::get_if<double>(&value)) {
      PutDouble(out, *d);
    } else if (const auto* b = std::get_if<bool>(&value)) {
      PutU8(out, *b ? 1 : 0);
    } else {
      PutString(out, std::get<std::string>(value));
    }
  }
}

bool GetConfiguration(Reader* in, Configuration* config) {
  uint32_t n = in->GetU32();
  for (uint32_t i = 0; i < n && in->ok(); ++i) {
    std::string name = in->GetString();
    uint8_t tag = in->GetU8();
    switch (tag) {
      case 0:
        config->SetInt(name, static_cast<int64_t>(in->GetU64()));
        break;
      case 1:
        config->SetDouble(name, in->GetDouble());
        break;
      case 2:
        config->SetBool(name, in->GetU8() != 0);
        break;
      case 3:
        config->SetString(name, in->GetString());
        break;
      default:
        return false;
    }
  }
  return in->ok();
}

void PutExecutionResult(std::string* out, const ExecutionResult& result) {
  PutDouble(out, result.runtime_seconds);
  PutU8(out, result.failed ? 1 : 0);
  PutU8(out, result.transient ? 1 : 0);
  PutU8(out, result.censored ? 1 : 0);
  PutString(out, result.failure_reason);
  PutU32(out, static_cast<uint32_t>(result.metrics.size()));
  for (const auto& [key, value] : result.metrics) {
    PutString(out, key);
    PutDouble(out, value);
  }
}

bool GetExecutionResult(Reader* in, ExecutionResult* result) {
  result->runtime_seconds = in->GetDouble();
  result->failed = in->GetU8() != 0;
  result->transient = in->GetU8() != 0;
  result->censored = in->GetU8() != 0;
  result->failure_reason = in->GetString();
  uint32_t n = in->GetU32();
  for (uint32_t i = 0; i < n && in->ok(); ++i) {
    std::string key = in->GetString();
    result->metrics[key] = in->GetDouble();
  }
  return in->ok();
}

std::string SerializeHeader(const JournalHeader& header) {
  std::string out;
  PutString(&out, header.tuner_name);
  PutString(&out, header.system_name);
  PutString(&out, header.workload_name);
  PutString(&out, header.workload_kind);
  PutDouble(&out, header.workload_scale);
  PutU32(&out, static_cast<uint32_t>(header.workload_properties.size()));
  for (const auto& [key, value] : header.workload_properties) {
    PutString(&out, key);
    PutDouble(&out, value);
  }
  PutU64(&out, header.seed);
  PutU64(&out, header.max_evaluations);
  PutDouble(&out, header.failure_penalty);
  PutU64(&out, header.max_retries);
  PutDouble(&out, header.retry_cost_fraction);
  PutDouble(&out, header.timeout_seconds);
  PutDouble(&out, header.outlier_mad_threshold);
  PutU64(&out, header.outlier_min_history);
  PutU64(&out, header.remeasure_runs);
  return out;
}

bool ParseHeader(const char* payload, size_t len, JournalHeader* header) {
  Reader in(payload, len);
  header->tuner_name = in.GetString();
  header->system_name = in.GetString();
  header->workload_name = in.GetString();
  header->workload_kind = in.GetString();
  header->workload_scale = in.GetDouble();
  uint32_t n = in.GetU32();
  for (uint32_t i = 0; i < n && in.ok(); ++i) {
    std::string key = in.GetString();
    header->workload_properties[key] = in.GetDouble();
  }
  header->seed = in.GetU64();
  header->max_evaluations = in.GetU64();
  header->failure_penalty = in.GetDouble();
  header->max_retries = in.GetU64();
  header->retry_cost_fraction = in.GetDouble();
  header->timeout_seconds = in.GetDouble();
  header->outlier_mad_threshold = in.GetDouble();
  header->outlier_min_history = in.GetU64();
  header->remeasure_runs = in.GetU64();
  return in.ok() && in.AtEnd();
}

void SerializeRecordInto(std::string* out, const JournalRecordRef& record) {
  PutU8(out, static_cast<uint8_t>(record.kind));
  PutU64(out, record.seq);
  PutConfiguration(out, *record.config);
  PutExecutionResult(out, *record.result);
  PutDouble(out, record.objective);
  PutDouble(out, record.cost);
  PutU8(out, record.scaled ? 1 : 0);
  PutU64(out, record.round);
  PutU64(out, record.batch_size);
  PutU64(out, record.lane);
  PutU64(out, record.unit_index);
  PutU64(out, record.system_runs);
  PutDouble(out, record.used);
  PutU64(out, record.retried_runs);
  PutU64(out, record.timed_out_runs);
  PutU64(out, record.remeasured_runs);
}

/// Borrowing view of an owning record, for the Append -> AppendRef funnel.
JournalRecordRef RefOf(const JournalRecord& record) {
  JournalRecordRef ref;
  ref.kind = record.kind;
  ref.seq = record.seq;
  ref.config = &record.config;
  ref.result = &record.result;
  ref.objective = record.objective;
  ref.cost = record.cost;
  ref.scaled = record.scaled;
  ref.round = record.round;
  ref.batch_size = record.batch_size;
  ref.lane = record.lane;
  ref.unit_index = record.unit_index;
  ref.system_runs = record.system_runs;
  ref.used = record.used;
  ref.retried_runs = record.retried_runs;
  ref.timed_out_runs = record.timed_out_runs;
  ref.remeasured_runs = record.remeasured_runs;
  return ref;
}

bool ParseRecord(const char* payload, size_t len, JournalRecord* record) {
  Reader in(payload, len);
  uint8_t kind = in.GetU8();
  if (kind != static_cast<uint8_t>(JournalRecordKind::kTrial) &&
      kind != static_cast<uint8_t>(JournalRecordKind::kUnit)) {
    return false;
  }
  record->kind = static_cast<JournalRecordKind>(kind);
  record->seq = in.GetU64();
  if (!GetConfiguration(&in, &record->config)) return false;
  if (!GetExecutionResult(&in, &record->result)) return false;
  record->objective = in.GetDouble();
  record->cost = in.GetDouble();
  record->scaled = in.GetU8() != 0;
  record->round = in.GetU64();
  record->batch_size = in.GetU64();
  record->lane = in.GetU64();
  record->unit_index = in.GetU64();
  record->system_runs = in.GetU64();
  record->used = in.GetDouble();
  record->retried_runs = in.GetU64();
  record->timed_out_runs = in.GetU64();
  record->remeasured_runs = in.GetU64();
  return in.ok() && in.AtEnd();
}

std::string Frame(const std::string& payload) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU32(&out, Crc32(0, payload.data(), payload.size()));
  out.append(payload);
  return out;
}

/// Reads one frame at `*offset` of the (data, size) span, advancing past it
/// on success. The payload is returned as a view into the span — no copy —
/// so recovery parses a memory-mapped journal in place. Returns false on a
/// truncated, torn, oversized, or CRC-mismatched frame (*offset is left at
/// the frame start: the recovery truncation point).
bool ReadFrame(const char* data, size_t size, size_t* offset,
               const char** payload, size_t* payload_len) {
  size_t pos = *offset;
  if (size - pos < 8) return false;
  Reader head(data + pos, 8);
  uint32_t len = head.GetU32();
  uint32_t crc = head.GetU32();
  if (len > kMaxFrameBytes || size - pos - 8 < len) return false;
  if (Crc32(0, data + pos + 8, len) != crc) return false;
  *payload = data + pos + 8;
  *payload_len = len;
  *offset = pos + 8 + len;
  return true;
}

std::atomic<JournalReplayMode> g_replay_mode{JournalReplayMode::kAuto};

}  // namespace

void SetJournalReplayModeForTesting(JournalReplayMode mode) {
  g_replay_mode.store(mode, std::memory_order_relaxed);
}

JournalReplayMode JournalReplayModeForTesting() {
  return g_replay_mode.load(std::memory_order_relaxed);
}

bool JournalHeader::operator==(const JournalHeader& other) const {
  return SerializeHeader(*this) == SerializeHeader(other);
}

std::string JournalHeader::DiffString(const JournalHeader& other) const {
  std::vector<std::string> diffs;
  auto check = [&diffs](const char* field, const std::string& a,
                        const std::string& b) {
    if (a != b) {
      diffs.push_back(StrFormat("%s ('%s' vs '%s')", field, a.c_str(),
                                b.c_str()));
    }
  };
  check("tuner", tuner_name, other.tuner_name);
  check("system", system_name, other.system_name);
  check("workload", workload_name, other.workload_name);
  check("workload kind", workload_kind, other.workload_kind);
  if (workload_scale != other.workload_scale) diffs.push_back("scale");
  if (workload_properties != other.workload_properties) {
    diffs.push_back("workload properties");
  }
  if (seed != other.seed) {
    diffs.push_back(StrFormat("seed (%llu vs %llu)",
                              static_cast<unsigned long long>(seed),
                              static_cast<unsigned long long>(other.seed)));
  }
  if (max_evaluations != other.max_evaluations) diffs.push_back("budget");
  if (failure_penalty != other.failure_penalty) {
    diffs.push_back("failure penalty");
  }
  if (max_retries != other.max_retries ||
      retry_cost_fraction != other.retry_cost_fraction ||
      timeout_seconds != other.timeout_seconds ||
      outlier_mad_threshold != other.outlier_mad_threshold ||
      outlier_min_history != other.outlier_min_history ||
      remeasure_runs != other.remeasure_runs) {
    diffs.push_back("robustness policy");
  }
  return diffs.empty() ? "identical" : Join(diffs, ", ");
}

TrialJournal::~TrialJournal() = default;

Result<std::unique_ptr<TrialJournal>> TrialJournal::Create(
    const std::string& path, const JournalHeader& header) {
  IoEnv* env = IoEnv::Current();
  auto file = env->OpenWritable(path, IoEnv::OpenMode::kTruncate);
  if (!file.ok()) return file.status();
  std::string preamble(kMagic, sizeof(kMagic));
  PutU32(&preamble, kVersion);
  preamble += Frame(SerializeHeader(header));
  Status status = WriteFully(env, file->get(), preamble.data(),
                             preamble.size());
  if (status.ok()) status = (*file)->Sync();
  // A stale degraded-marker from an earlier session must not outlive the
  // fresh journal it no longer describes.
  if (status.ok()) (void)env->Unlink(path + kDegradedSidecarSuffix);
  // A freshly created journal also needs its directory entry durable, or a
  // crash right after Create can leave no journal at all.
  if (status.ok()) status = env->SyncDir(path);
  if (!status.ok()) {
    (void)(*file)->Close();
    return status;
  }
  size_t header_frame_start = sizeof(kMagic) + 4;
  return std::unique_ptr<TrialJournal>(
      new TrialJournal(path, env, std::move(*file), 0, preamble.size(),
                       header_frame_start));
}

Result<TrialJournal::Recovered> TrialJournal::OpenForResume(
    const std::string& path) {
  // Zero-copy fast path: mmap the file and parse frames in place. Streaming
  // (read-into-memory) remains the fallback for platforms without mmap, any
  // mapping failure under kAuto, or an explicit override. A missing file is
  // NotFound in every mode, matching the pre-mmap behavior.
  IoEnv* env = IoEnv::Current();
  JournalReplayMode mode = JournalReplayModeForTesting();
  const char* no_mmap_env = std::getenv("ATUNE_JOURNAL_NO_MMAP");
  bool env_disables =
      no_mmap_env != nullptr && *no_mmap_env != '\0' &&
      std::strcmp(no_mmap_env, "0") != 0;
  MappedFile mapped;
  std::string streamed;
  const char* data = nullptr;
  size_t size = 0;
  bool use_mmap = false;
  if (mode == JournalReplayMode::kMmap ||
      (mode == JournalReplayMode::kAuto && MappedFile::Supported() &&
       !env_disables)) {
    Result<MappedFile> map = env->Map(path);
    if (map.ok()) {
      // Truncation-race guard: the size was captured once at map time, and
      // every frame below is bounds-checked against it. If the file shrank
      // between open and map (a concurrent truncation), pages past the new
      // EOF would SIGBUS on touch — so re-stat and, on any mismatch, fall
      // back to the streaming reader, which snapshots the bytes.
      Result<uint64_t> current_size = env->FileSize(path);
      if (current_size.ok() && *current_size == map->size()) {
        mapped = std::move(*map);
        data = mapped.data();
        size = mapped.size();
        use_mmap = true;
      } else if (mode == JournalReplayMode::kMmap) {
        return Status::IoError(StrFormat(
            "journal '%s': size changed under the mapping (%zu mapped)",
            path.c_str(), map->size()));
      }
    } else if (mode == JournalReplayMode::kMmap ||
               map.status().code() == StatusCode::kNotFound) {
      return map.status();
    }
    // kAuto with a non-NotFound mapping failure (or a size mismatch): fall
    // back to streaming.
  }
  if (!use_mmap) {
    ATUNE_RETURN_IF_ERROR(env->ReadFileToString(path, &streamed));
    data = streamed.data();
    size = streamed.size();
  }

  Recovered recovered;
  recovered.used_mmap = use_mmap;
  size_t offset = 0;
  // Magic + version + header frame. Damage here leaves nothing to trust
  // (we cannot even verify the session fingerprint), so the whole file is
  // discarded and the caller starts a fresh journal.
  bool preamble_ok = size >= sizeof(kMagic) + 4 &&
                     std::memcmp(data, kMagic, sizeof(kMagic)) == 0;
  if (preamble_ok) {
    Reader version_reader(data + sizeof(kMagic), 4);
    preamble_ok = version_reader.GetU32() == kVersion;
  }
  const char* payload = nullptr;
  size_t payload_len = 0;
  if (preamble_ok) {
    offset = sizeof(kMagic) + 4;
    preamble_ok = ReadFrame(data, size, &offset, &payload, &payload_len) &&
                  ParseHeader(payload, payload_len, &recovered.header);
  }
  if (!preamble_ok) {
    recovered.header_valid = false;
    recovered.warnings.push_back(StrFormat(
        "journal '%s': unreadable magic/header (%zu bytes); discarding file "
        "and starting fresh",
        path.c_str(), size));
    return recovered;
  }
  recovered.header_valid = true;

  // Longest valid prefix: stop at the first bad frame or sequence break.
  std::vector<size_t> record_ends;  // byte offset after record i
  while (offset < size) {
    size_t frame_start = offset;
    JournalRecord record;
    if (!ReadFrame(data, size, &offset, &payload, &payload_len) ||
        !ParseRecord(payload, payload_len, &record)) {
      recovered.warnings.push_back(StrFormat(
          "journal '%s': corrupt or torn frame at byte %zu; keeping the %zu "
          "valid records before it",
          path.c_str(), frame_start, recovered.records.size()));
      offset = frame_start;
      break;
    }
    if (record.seq != recovered.records.size()) {
      recovered.warnings.push_back(StrFormat(
          "journal '%s': record at byte %zu has sequence %llu, expected %zu "
          "(duplicate or out-of-order); truncating there",
          path.c_str(), frame_start,
          static_cast<unsigned long long>(record.seq),
          recovered.records.size()));
      offset = frame_start;
      break;
    }
    recovered.records.push_back(std::move(record));
    record_ends.push_back(offset);
  }

  // Drop a trailing incomplete batch: its lanes were committed one by one,
  // so a crash mid-batch leaves a prefix of the wave. Replay hands a
  // batch-aware tuner whole waves only; the dropped lanes re-execute.
  size_t dropped_lanes = 0;
  while (!recovered.records.empty()) {
    const JournalRecord& last = recovered.records.back();
    if (last.kind != JournalRecordKind::kTrial || last.batch_size <= 1 ||
        last.lane + 1 == last.batch_size) {
      break;
    }
    recovered.records.pop_back();
    record_ends.pop_back();
    ++dropped_lanes;
  }
  if (dropped_lanes > 0) {
    recovered.warnings.push_back(StrFormat(
        "journal '%s': dropped %zu trailing lane(s) of an incomplete batch",
        path.c_str(), dropped_lanes));
  }

  size_t valid_end;
  size_t last_frame_start;
  size_t header_end = sizeof(kMagic) + 4;
  ReadFrame(data, size, &header_end, &payload, &payload_len);
  if (!record_ends.empty()) {
    valid_end = record_ends.back();
    last_frame_start = record_ends.size() >= 2
                           ? record_ends[record_ends.size() - 2]
                           : header_end;
  } else {
    // No surviving records: keep just the preamble + header frame.
    valid_end = header_end;
    last_frame_start = sizeof(kMagic) + 4;
  }
  size_t file_size = size;
  // Release the mapping before truncating: shrinking a file under a live
  // mapping leaves pages whose reads are undefined.
  mapped = MappedFile();
  data = nullptr;
  if (valid_end < file_size) {
    ATUNE_RETURN_IF_ERROR(TruncateFile(path, valid_end));
  }

  auto file = env->OpenWritable(path, IoEnv::OpenMode::kAppend);
  if (!file.ok()) return file.status();
  recovered.journal = std::unique_ptr<TrialJournal>(
      new TrialJournal(path, env, std::move(*file), recovered.records.size(),
                       valid_end, last_frame_start));
  return recovered;
}

Status TrialJournal::Append(const JournalRecord& record) {
  return AppendRef(RefOf(record));
}

Status TrialJournal::AppendRef(const JournalRecordRef& record) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("journal is not open for appending");
  }
  // Serialize after an 8-byte placeholder, then patch the frame header in
  // place — the same bytes Frame(SerializeRecord(...)) produced, without the
  // two temporary strings.
  frame_buf_.clear();
  frame_buf_.append(8, '\0');
  SerializeRecordInto(&frame_buf_, record);
  uint32_t len = static_cast<uint32_t>(frame_buf_.size() - 8);
  uint32_t crc = Crc32(0, frame_buf_.data() + 8, len);
  for (int i = 0; i < 4; ++i) {
    frame_buf_[i] = static_cast<char>((len >> (8 * i)) & 0xFF);
    frame_buf_[4 + i] = static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
  uint64_t retries = 0;
  uint64_t shorts = 0;
  Status status = WriteFully(env_, file_.get(), frame_buf_.data(),
                             frame_buf_.size(), &retries, &shorts);
  write_retries_ += retries;
  short_writes_ += shorts;
  if (status.ok() && sync_) status = file_->Sync();
  if (!status.ok()) {
    // The write failed partway, or the fsync failed — either way the bytes
    // past append_offset_ are in an unknown state (fsyncgate: a failed
    // fsync may have dropped the dirty pages, and retrying it would just
    // report success on whatever survived). Restore the invariant that the
    // on-disk journal is exactly the longest valid prefix.
    Status reverify = ReverifyTail();
    if (!reverify.ok()) {
      return Status::IoError(StrFormat(
          "%s; tail re-verify also failed: %s", status.message().c_str(),
          reverify.message().c_str()));
    }
    return status;
  }
  last_frame_start_ = append_offset_;
  append_offset_ += frame_buf_.size();
  next_seq_ = record.seq + 1;
  return Status::OK();
}

Status TrialJournal::ReverifyTail() {
  if (file_ != nullptr) {
    (void)file_->Close();
    file_.reset();
  }
  // Physically discard the unverified bytes, then prove the kept tail is
  // intact by reading its final frame back and re-checking the CRC. Only
  // after both succeed is the journal re-opened for appending.
  ATUNE_RETURN_IF_ERROR(env_->Truncate(path_, append_offset_));
  {
    auto sync_handle = env_->OpenWritable(path_, IoEnv::OpenMode::kAppend);
    if (!sync_handle.ok()) return sync_handle.status();
    Status status = (*sync_handle)->Sync();
    Status close_status = (*sync_handle)->Close();
    ATUNE_RETURN_IF_ERROR(status.ok() ? close_status : status);
  }
  std::string contents;
  ATUNE_RETURN_IF_ERROR(env_->ReadFileToString(path_, &contents));
  if (contents.size() != append_offset_) {
    return Status::IoError(StrFormat(
        "journal '%s': %zu bytes on disk after truncation to %llu",
        path_.c_str(), contents.size(),
        static_cast<unsigned long long>(append_offset_)));
  }
  size_t offset = last_frame_start_;
  const char* payload = nullptr;
  size_t payload_len = 0;
  if (!ReadFrame(contents.data(), contents.size(), &offset, &payload,
                 &payload_len) ||
      offset != append_offset_) {
    return Status::IoError(StrFormat(
        "journal '%s': tail frame failed CRC re-verification after an I/O "
        "failure — durable prefix is damaged",
        path_.c_str()));
  }
  auto reopened = env_->OpenWritable(path_, IoEnv::OpenMode::kAppend);
  if (!reopened.ok()) return reopened.status();
  file_ = std::move(*reopened);
  return Status::OK();
}

}  // namespace atune
