#include "core/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/file_util.h"
#include "common/string_util.h"

namespace atune {
namespace {

constexpr char kMagic[8] = {'A', 'T', 'U', 'N', 'E', 'W', 'A', 'L'};
constexpr uint32_t kVersion = 1;
/// Sanity cap on one frame; a corrupt length field must not trigger a
/// gigantic allocation during recovery.
constexpr uint32_t kMaxFrameBytes = 64u << 20;

// ---- byte-buffer primitives (little-endian) -------------------------------

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}
void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}
void PutDouble(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}
void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked reader over a payload; any overrun marks it bad and all
/// later Gets fail, so parse code can check ok() once at the end.
class Reader {
 public:
  Reader(const char* data, size_t n) : p_(data), end_(data + n) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return p_ == end_; }

  uint8_t GetU8() {
    if (!Require(1)) return 0;
    return static_cast<uint8_t>(*p_++);
  }
  uint32_t GetU32() {
    if (!Require(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(*p_++)) << (8 * i);
    }
    return v;
  }
  uint64_t GetU64() {
    if (!Require(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(*p_++)) << (8 * i);
    }
    return v;
  }
  double GetDouble() {
    uint64_t bits = GetU64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string GetString() {
    uint32_t n = GetU32();
    if (!Require(n)) return std::string();
    std::string s(p_, n);
    p_ += n;
    return s;
  }

 private:
  bool Require(size_t n) {
    if (!ok_ || static_cast<size_t>(end_ - p_) < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const char* p_;
  const char* end_;
  bool ok_ = true;
};

// ---- domain-type serialization --------------------------------------------

void PutConfiguration(std::string* out, const Configuration& config) {
  PutU32(out, static_cast<uint32_t>(config.values().size()));
  for (const auto& [name, value] : config.values()) {  // sorted: std::map
    PutString(out, name);
    PutU8(out, static_cast<uint8_t>(value.index()));
    if (const auto* i = std::get_if<int64_t>(&value)) {
      PutU64(out, static_cast<uint64_t>(*i));
    } else if (const auto* d = std::get_if<double>(&value)) {
      PutDouble(out, *d);
    } else if (const auto* b = std::get_if<bool>(&value)) {
      PutU8(out, *b ? 1 : 0);
    } else {
      PutString(out, std::get<std::string>(value));
    }
  }
}

bool GetConfiguration(Reader* in, Configuration* config) {
  uint32_t n = in->GetU32();
  for (uint32_t i = 0; i < n && in->ok(); ++i) {
    std::string name = in->GetString();
    uint8_t tag = in->GetU8();
    switch (tag) {
      case 0:
        config->SetInt(name, static_cast<int64_t>(in->GetU64()));
        break;
      case 1:
        config->SetDouble(name, in->GetDouble());
        break;
      case 2:
        config->SetBool(name, in->GetU8() != 0);
        break;
      case 3:
        config->SetString(name, in->GetString());
        break;
      default:
        return false;
    }
  }
  return in->ok();
}

void PutExecutionResult(std::string* out, const ExecutionResult& result) {
  PutDouble(out, result.runtime_seconds);
  PutU8(out, result.failed ? 1 : 0);
  PutU8(out, result.transient ? 1 : 0);
  PutU8(out, result.censored ? 1 : 0);
  PutString(out, result.failure_reason);
  PutU32(out, static_cast<uint32_t>(result.metrics.size()));
  for (const auto& [key, value] : result.metrics) {
    PutString(out, key);
    PutDouble(out, value);
  }
}

bool GetExecutionResult(Reader* in, ExecutionResult* result) {
  result->runtime_seconds = in->GetDouble();
  result->failed = in->GetU8() != 0;
  result->transient = in->GetU8() != 0;
  result->censored = in->GetU8() != 0;
  result->failure_reason = in->GetString();
  uint32_t n = in->GetU32();
  for (uint32_t i = 0; i < n && in->ok(); ++i) {
    std::string key = in->GetString();
    result->metrics[key] = in->GetDouble();
  }
  return in->ok();
}

std::string SerializeHeader(const JournalHeader& header) {
  std::string out;
  PutString(&out, header.tuner_name);
  PutString(&out, header.system_name);
  PutString(&out, header.workload_name);
  PutString(&out, header.workload_kind);
  PutDouble(&out, header.workload_scale);
  PutU32(&out, static_cast<uint32_t>(header.workload_properties.size()));
  for (const auto& [key, value] : header.workload_properties) {
    PutString(&out, key);
    PutDouble(&out, value);
  }
  PutU64(&out, header.seed);
  PutU64(&out, header.max_evaluations);
  PutDouble(&out, header.failure_penalty);
  PutU64(&out, header.max_retries);
  PutDouble(&out, header.retry_cost_fraction);
  PutDouble(&out, header.timeout_seconds);
  PutDouble(&out, header.outlier_mad_threshold);
  PutU64(&out, header.outlier_min_history);
  PutU64(&out, header.remeasure_runs);
  return out;
}

bool ParseHeader(const std::string& payload, JournalHeader* header) {
  Reader in(payload.data(), payload.size());
  header->tuner_name = in.GetString();
  header->system_name = in.GetString();
  header->workload_name = in.GetString();
  header->workload_kind = in.GetString();
  header->workload_scale = in.GetDouble();
  uint32_t n = in.GetU32();
  for (uint32_t i = 0; i < n && in.ok(); ++i) {
    std::string key = in.GetString();
    header->workload_properties[key] = in.GetDouble();
  }
  header->seed = in.GetU64();
  header->max_evaluations = in.GetU64();
  header->failure_penalty = in.GetDouble();
  header->max_retries = in.GetU64();
  header->retry_cost_fraction = in.GetDouble();
  header->timeout_seconds = in.GetDouble();
  header->outlier_mad_threshold = in.GetDouble();
  header->outlier_min_history = in.GetU64();
  header->remeasure_runs = in.GetU64();
  return in.ok() && in.AtEnd();
}

std::string SerializeRecord(const JournalRecord& record) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(record.kind));
  PutU64(&out, record.seq);
  PutConfiguration(&out, record.config);
  PutExecutionResult(&out, record.result);
  PutDouble(&out, record.objective);
  PutDouble(&out, record.cost);
  PutU8(&out, record.scaled ? 1 : 0);
  PutU64(&out, record.round);
  PutU64(&out, record.batch_size);
  PutU64(&out, record.lane);
  PutU64(&out, record.unit_index);
  PutU64(&out, record.system_runs);
  PutDouble(&out, record.used);
  PutU64(&out, record.retried_runs);
  PutU64(&out, record.timed_out_runs);
  PutU64(&out, record.remeasured_runs);
  return out;
}

bool ParseRecord(const std::string& payload, JournalRecord* record) {
  Reader in(payload.data(), payload.size());
  uint8_t kind = in.GetU8();
  if (kind != static_cast<uint8_t>(JournalRecordKind::kTrial) &&
      kind != static_cast<uint8_t>(JournalRecordKind::kUnit)) {
    return false;
  }
  record->kind = static_cast<JournalRecordKind>(kind);
  record->seq = in.GetU64();
  if (!GetConfiguration(&in, &record->config)) return false;
  if (!GetExecutionResult(&in, &record->result)) return false;
  record->objective = in.GetDouble();
  record->cost = in.GetDouble();
  record->scaled = in.GetU8() != 0;
  record->round = in.GetU64();
  record->batch_size = in.GetU64();
  record->lane = in.GetU64();
  record->unit_index = in.GetU64();
  record->system_runs = in.GetU64();
  record->used = in.GetDouble();
  record->retried_runs = in.GetU64();
  record->timed_out_runs = in.GetU64();
  record->remeasured_runs = in.GetU64();
  return in.ok() && in.AtEnd();
}

std::string Frame(const std::string& payload) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU32(&out, Crc32(0, payload.data(), payload.size()));
  out.append(payload);
  return out;
}

/// Reads one frame at `*offset`, advancing it past the frame on success.
/// Returns false on a truncated, torn, oversized, or CRC-mismatched frame
/// (*offset is left at the frame start: the recovery truncation point).
bool ReadFrame(const std::string& file, size_t* offset, std::string* payload) {
  size_t pos = *offset;
  if (file.size() - pos < 8) return false;
  Reader head(file.data() + pos, 8);
  uint32_t len = head.GetU32();
  uint32_t crc = head.GetU32();
  if (len > kMaxFrameBytes || file.size() - pos - 8 < len) return false;
  if (Crc32(0, file.data() + pos + 8, len) != crc) return false;
  payload->assign(file.data() + pos + 8, len);
  *offset = pos + 8 + len;
  return true;
}

Status WriteAll(int fd, const std::string& bytes, const std::string& path) {
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(StrFormat("journal write '%s': %s", path.c_str(),
                                        std::strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

bool JournalHeader::operator==(const JournalHeader& other) const {
  return SerializeHeader(*this) == SerializeHeader(other);
}

std::string JournalHeader::DiffString(const JournalHeader& other) const {
  std::vector<std::string> diffs;
  auto check = [&diffs](const char* field, const std::string& a,
                        const std::string& b) {
    if (a != b) {
      diffs.push_back(StrFormat("%s ('%s' vs '%s')", field, a.c_str(),
                                b.c_str()));
    }
  };
  check("tuner", tuner_name, other.tuner_name);
  check("system", system_name, other.system_name);
  check("workload", workload_name, other.workload_name);
  check("workload kind", workload_kind, other.workload_kind);
  if (workload_scale != other.workload_scale) diffs.push_back("scale");
  if (workload_properties != other.workload_properties) {
    diffs.push_back("workload properties");
  }
  if (seed != other.seed) {
    diffs.push_back(StrFormat("seed (%llu vs %llu)",
                              static_cast<unsigned long long>(seed),
                              static_cast<unsigned long long>(other.seed)));
  }
  if (max_evaluations != other.max_evaluations) diffs.push_back("budget");
  if (failure_penalty != other.failure_penalty) {
    diffs.push_back("failure penalty");
  }
  if (max_retries != other.max_retries ||
      retry_cost_fraction != other.retry_cost_fraction ||
      timeout_seconds != other.timeout_seconds ||
      outlier_mad_threshold != other.outlier_mad_threshold ||
      outlier_min_history != other.outlier_min_history ||
      remeasure_runs != other.remeasure_runs) {
    diffs.push_back("robustness policy");
  }
  return diffs.empty() ? "identical" : Join(diffs, ", ");
}

TrialJournal::~TrialJournal() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<TrialJournal>> TrialJournal::Create(
    const std::string& path, const JournalHeader& header) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal(StrFormat("create journal '%s': %s", path.c_str(),
                                      std::strerror(errno)));
  }
  std::string preamble(kMagic, sizeof(kMagic));
  PutU32(&preamble, kVersion);
  preamble += Frame(SerializeHeader(header));
  Status write_status = WriteAll(fd, preamble, path);
  if (!write_status.ok()) {
    ::close(fd);
    return write_status;
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Status::Internal(StrFormat("fsync journal '%s': %s", path.c_str(),
                                      std::strerror(errno)));
  }
  return std::unique_ptr<TrialJournal>(new TrialJournal(path, fd, 0));
}

Result<TrialJournal::Recovered> TrialJournal::OpenForResume(
    const std::string& path) {
  std::string file;
  ATUNE_RETURN_IF_ERROR(ReadFileToString(path, &file));

  Recovered recovered;
  size_t offset = 0;
  // Magic + version + header frame. Damage here leaves nothing to trust
  // (we cannot even verify the session fingerprint), so the whole file is
  // discarded and the caller starts a fresh journal.
  bool preamble_ok =
      file.size() >= sizeof(kMagic) + 4 &&
      std::memcmp(file.data(), kMagic, sizeof(kMagic)) == 0;
  if (preamble_ok) {
    Reader version_reader(file.data() + sizeof(kMagic), 4);
    preamble_ok = version_reader.GetU32() == kVersion;
  }
  std::string payload;
  if (preamble_ok) {
    offset = sizeof(kMagic) + 4;
    preamble_ok = ReadFrame(file, &offset, &payload) &&
                  ParseHeader(payload, &recovered.header);
  }
  if (!preamble_ok) {
    recovered.header_valid = false;
    recovered.warnings.push_back(StrFormat(
        "journal '%s': unreadable magic/header (%zu bytes); discarding file "
        "and starting fresh",
        path.c_str(), file.size()));
    return recovered;
  }
  recovered.header_valid = true;

  // Longest valid prefix: stop at the first bad frame or sequence break.
  std::vector<size_t> record_ends;  // byte offset after record i
  while (offset < file.size()) {
    size_t frame_start = offset;
    JournalRecord record;
    if (!ReadFrame(file, &offset, &payload) ||
        !ParseRecord(payload, &record)) {
      recovered.warnings.push_back(StrFormat(
          "journal '%s': corrupt or torn frame at byte %zu; keeping the %zu "
          "valid records before it",
          path.c_str(), frame_start, recovered.records.size()));
      offset = frame_start;
      break;
    }
    if (record.seq != recovered.records.size()) {
      recovered.warnings.push_back(StrFormat(
          "journal '%s': record at byte %zu has sequence %llu, expected %zu "
          "(duplicate or out-of-order); truncating there",
          path.c_str(), frame_start,
          static_cast<unsigned long long>(record.seq),
          recovered.records.size()));
      offset = frame_start;
      break;
    }
    recovered.records.push_back(std::move(record));
    record_ends.push_back(offset);
  }

  // Drop a trailing incomplete batch: its lanes were committed one by one,
  // so a crash mid-batch leaves a prefix of the wave. Replay hands a
  // batch-aware tuner whole waves only; the dropped lanes re-execute.
  size_t dropped_lanes = 0;
  while (!recovered.records.empty()) {
    const JournalRecord& last = recovered.records.back();
    if (last.kind != JournalRecordKind::kTrial || last.batch_size <= 1 ||
        last.lane + 1 == last.batch_size) {
      break;
    }
    recovered.records.pop_back();
    record_ends.pop_back();
    ++dropped_lanes;
  }
  if (dropped_lanes > 0) {
    recovered.warnings.push_back(StrFormat(
        "journal '%s': dropped %zu trailing lane(s) of an incomplete batch",
        path.c_str(), dropped_lanes));
  }

  size_t valid_end;
  if (!record_ends.empty()) {
    valid_end = record_ends.back();
  } else {
    // No surviving records: keep just the preamble + header frame.
    size_t header_end = sizeof(kMagic) + 4;
    std::string ignored;
    ReadFrame(file, &header_end, &ignored);
    valid_end = header_end;
  }
  if (valid_end < file.size()) {
    ATUNE_RETURN_IF_ERROR(TruncateFile(path, valid_end));
  }

  int fd = ::open(path.c_str(), O_WRONLY | O_APPEND, 0644);
  if (fd < 0) {
    return Status::Internal(StrFormat("reopen journal '%s': %s", path.c_str(),
                                      std::strerror(errno)));
  }
  recovered.journal = std::unique_ptr<TrialJournal>(
      new TrialJournal(path, fd, recovered.records.size()));
  return recovered;
}

Status TrialJournal::Append(const JournalRecord& record) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("journal is not open for appending");
  }
  ATUNE_RETURN_IF_ERROR(WriteAll(fd_, Frame(SerializeRecord(record)), path_));
  if (sync_ && ::fsync(fd_) != 0) {
    return Status::Internal(StrFormat("fsync journal '%s': %s", path_.c_str(),
                                      std::strerror(errno)));
  }
  next_seq_ = record.seq + 1;
  return Status::OK();
}

}  // namespace atune
