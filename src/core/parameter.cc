#include "core/parameter.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/string_util.h"

namespace atune {

const char* ParamTypeToString(ParamType type) {
  switch (type) {
    case ParamType::kInt:
      return "int";
    case ParamType::kDouble:
      return "double";
    case ParamType::kBool:
      return "bool";
    case ParamType::kCategorical:
      return "categorical";
  }
  return "?";
}

std::string ParamValueToString(const ParamValue& value) {
  struct Visitor {
    std::string operator()(int64_t v) const {
      return StrFormat("%lld", static_cast<long long>(v));
    }
    std::string operator()(double v) const { return DoubleToString(v); }
    std::string operator()(bool v) const { return v ? "true" : "false"; }
    std::string operator()(const std::string& v) const { return v; }
  };
  return std::visit(Visitor{}, value);
}

ParameterDef ParameterDef::Int(std::string name, int64_t min, int64_t max,
                               int64_t default_value, std::string description,
                               bool log_scale, std::string unit) {
  assert(min <= max && default_value >= min && default_value <= max);
  ParameterDef def;
  def.name_ = std::move(name);
  def.description_ = std::move(description);
  def.unit_ = std::move(unit);
  def.type_ = ParamType::kInt;
  def.log_scale_ = log_scale && min > 0;
  def.min_int_ = min;
  def.max_int_ = max;
  def.default_value_ = default_value;
  return def;
}

ParameterDef ParameterDef::Double(std::string name, double min, double max,
                                  double default_value,
                                  std::string description, bool log_scale,
                                  std::string unit) {
  assert(min <= max && default_value >= min && default_value <= max);
  ParameterDef def;
  def.name_ = std::move(name);
  def.description_ = std::move(description);
  def.unit_ = std::move(unit);
  def.type_ = ParamType::kDouble;
  def.log_scale_ = log_scale && min > 0.0;
  def.min_double_ = min;
  def.max_double_ = max;
  def.default_value_ = default_value;
  return def;
}

ParameterDef ParameterDef::Bool(std::string name, bool default_value,
                                std::string description) {
  ParameterDef def;
  def.name_ = std::move(name);
  def.description_ = std::move(description);
  def.type_ = ParamType::kBool;
  def.default_value_ = default_value;
  return def;
}

ParameterDef ParameterDef::Categorical(std::string name,
                                       std::vector<std::string> categories,
                                       size_t default_index,
                                       std::string description) {
  assert(!categories.empty() && default_index < categories.size());
  ParameterDef def;
  def.name_ = std::move(name);
  def.description_ = std::move(description);
  def.type_ = ParamType::kCategorical;
  def.default_value_ = categories[default_index];
  def.categories_ = std::move(categories);
  return def;
}

Status ParameterDef::Validate(const ParamValue& value) const {
  switch (type_) {
    case ParamType::kInt: {
      const int64_t* v = std::get_if<int64_t>(&value);
      if (v == nullptr) {
        return Status::InvalidArgument(
            StrFormat("parameter '%s' expects int", name_.c_str()));
      }
      if (*v < min_int_ || *v > max_int_) {
        return Status::OutOfRange(StrFormat(
            "parameter '%s' = %lld outside [%lld, %lld]", name_.c_str(),
            static_cast<long long>(*v), static_cast<long long>(min_int_),
            static_cast<long long>(max_int_)));
      }
      return Status::OK();
    }
    case ParamType::kDouble: {
      const double* v = std::get_if<double>(&value);
      if (v == nullptr) {
        return Status::InvalidArgument(
            StrFormat("parameter '%s' expects double", name_.c_str()));
      }
      if (*v < min_double_ || *v > max_double_ || std::isnan(*v)) {
        return Status::OutOfRange(
            StrFormat("parameter '%s' = %g outside [%g, %g]", name_.c_str(),
                      *v, min_double_, max_double_));
      }
      return Status::OK();
    }
    case ParamType::kBool: {
      if (std::get_if<bool>(&value) == nullptr) {
        return Status::InvalidArgument(
            StrFormat("parameter '%s' expects bool", name_.c_str()));
      }
      return Status::OK();
    }
    case ParamType::kCategorical: {
      const std::string* v = std::get_if<std::string>(&value);
      if (v == nullptr) {
        return Status::InvalidArgument(
            StrFormat("parameter '%s' expects category string", name_.c_str()));
      }
      if (std::find(categories_.begin(), categories_.end(), *v) ==
          categories_.end()) {
        return Status::OutOfRange(StrFormat(
            "parameter '%s': unknown category '%s'", name_.c_str(), v->c_str()));
      }
      return Status::OK();
    }
  }
  return Status::Internal("unknown parameter type");
}

double ParameterDef::Normalize(const ParamValue& value) const {
  switch (type_) {
    case ParamType::kInt: {
      double v = static_cast<double>(std::get<int64_t>(value));
      double lo = static_cast<double>(min_int_);
      double hi = static_cast<double>(max_int_);
      if (hi <= lo) return 0.5;
      if (log_scale_) {
        return (std::log(v) - std::log(lo)) / (std::log(hi) - std::log(lo));
      }
      return (v - lo) / (hi - lo);
    }
    case ParamType::kDouble: {
      double v = std::get<double>(value);
      if (max_double_ <= min_double_) return 0.5;
      if (log_scale_) {
        return (std::log(v) - std::log(min_double_)) /
               (std::log(max_double_) - std::log(min_double_));
      }
      return (v - min_double_) / (max_double_ - min_double_);
    }
    case ParamType::kBool:
      return std::get<bool>(value) ? 1.0 : 0.0;
    case ParamType::kCategorical: {
      const std::string& v = std::get<std::string>(value);
      auto it = std::find(categories_.begin(), categories_.end(), v);
      size_t idx = it == categories_.end()
                       ? 0
                       : static_cast<size_t>(it - categories_.begin());
      if (categories_.size() <= 1) return 0.5;
      return static_cast<double>(idx) /
             static_cast<double>(categories_.size() - 1);
    }
  }
  return 0.0;
}

ParamValue ParameterDef::Denormalize(double u) const {
  u = std::clamp(u, 0.0, 1.0);
  switch (type_) {
    case ParamType::kInt: {
      double lo = static_cast<double>(min_int_);
      double hi = static_cast<double>(max_int_);
      double v;
      if (log_scale_) {
        v = std::exp(std::log(lo) + u * (std::log(hi) - std::log(lo)));
      } else {
        v = lo + u * (hi - lo);
      }
      int64_t iv = static_cast<int64_t>(std::llround(v));
      return std::clamp(iv, min_int_, max_int_);
    }
    case ParamType::kDouble: {
      double v;
      if (log_scale_) {
        v = std::exp(std::log(min_double_) +
                     u * (std::log(max_double_) - std::log(min_double_)));
      } else {
        v = min_double_ + u * (max_double_ - min_double_);
      }
      return std::clamp(v, min_double_, max_double_);
    }
    case ParamType::kBool:
      return u >= 0.5;
    case ParamType::kCategorical: {
      size_t n = categories_.size();
      size_t idx = static_cast<size_t>(
          std::llround(u * static_cast<double>(n - 1)));
      if (idx >= n) idx = n - 1;
      return categories_[idx];
    }
  }
  return 0.0;
}

size_t ParameterDef::Cardinality() const {
  switch (type_) {
    case ParamType::kInt:
      return static_cast<size_t>(max_int_ - min_int_ + 1);
    case ParamType::kDouble:
      return 0;
    case ParamType::kBool:
      return 2;
    case ParamType::kCategorical:
      return categories_.size();
  }
  return 0;
}

}  // namespace atune
