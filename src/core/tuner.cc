#include "core/tuner.h"

#include <algorithm>

#include "common/string_util.h"

namespace atune {

const char* TunerCategoryToString(TunerCategory category) {
  switch (category) {
    case TunerCategory::kRuleBased:
      return "rule-based";
    case TunerCategory::kCostModeling:
      return "cost-modeling";
    case TunerCategory::kSimulationBased:
      return "simulation-based";
    case TunerCategory::kExperimentDriven:
      return "experiment-driven";
    case TunerCategory::kMachineLearning:
      return "machine-learning";
    case TunerCategory::kAdaptive:
      return "adaptive";
  }
  return "?";
}

Evaluator::Evaluator(TunableSystem* system, Workload workload,
                     TuningBudget budget, double failure_penalty)
    : system_(system),
      workload_(std::move(workload)),
      budget_(budget),
      budget_max_(static_cast<double>(budget.max_evaluations)),
      failure_penalty_(failure_penalty) {}

double Evaluator::ObjectiveOf(const Configuration& config,
                              const ExecutionResult& result) const {
  if (objective_) return objective_(config, result);
  double obj = result.runtime_seconds;
  if (result.failed) obj *= failure_penalty_;
  return obj;
}

Result<double> Evaluator::Evaluate(const Configuration& config) {
  if (used_ + 1.0 > budget_max_ + 1e-9) {
    return Status::ResourceExhausted(
        StrFormat("tuning budget exhausted (%.1f/%.1f runs)", used_,
                  budget_max_));
  }
  ATUNE_RETURN_IF_ERROR(space().ValidateConfiguration(config));
  ATUNE_ASSIGN_OR_RETURN(ExecutionResult result,
                         system_->Execute(config, workload_));
  used_ += 1.0;
  Trial trial;
  trial.config = config;
  trial.result = result;
  trial.objective = ObjectiveOf(config, result);
  trial.cost = 1.0;
  history_.push_back(std::move(trial));
  if (!has_best_ || history_.back().objective < history_[best_index_].objective) {
    best_index_ = history_.size() - 1;
    has_best_ = true;
  }
  return history_.back().objective;
}

Result<double> Evaluator::EvaluateWithEarlyAbort(const Configuration& config,
                                                 double abort_at_seconds,
                                                 bool* aborted) {
  if (aborted != nullptr) *aborted = false;
  if (abort_at_seconds <= 0.0) {
    return Status::InvalidArgument(
        "EvaluateWithEarlyAbort: abort threshold must be positive");
  }
  // Conservative gate: a run that completes under the threshold costs a
  // full unit, so require one up front (never overspends).
  if (used_ + 1.0 > budget_max_ + 1e-9) {
    return Status::ResourceExhausted("tuning budget exhausted");
  }
  ATUNE_RETURN_IF_ERROR(space().ValidateConfiguration(config));
  ATUNE_ASSIGN_OR_RETURN(ExecutionResult result,
                         system_->Execute(config, workload_));
  Trial trial;
  trial.config = config;
  if (result.runtime_seconds > abort_at_seconds && !result.failed) {
    // Censor: we only watched the run for abort_at_seconds of wall clock.
    double fraction =
        std::min(1.0, abort_at_seconds / result.runtime_seconds);
    double cost = std::max(0.05, fraction);  // setup isn't free either
    used_ += cost;
    if (aborted != nullptr) *aborted = true;
    result.failure_reason = "aborted by early-abort threshold";
    result.runtime_seconds = abort_at_seconds;
    trial.result = result;
    // The objective is a *lower bound*; keep it clearly worse than any
    // incumbent below the threshold and exclude it from best-tracking via
    // the scaled flag (its objective is not a completed measurement).
    trial.objective = ObjectiveOf(config, result);
    trial.cost = cost;
    trial.scaled = true;
    history_.push_back(std::move(trial));
    return history_.back().objective;
  }
  used_ += 1.0;
  trial.result = result;
  trial.objective = ObjectiveOf(config, result);
  trial.cost = 1.0;
  history_.push_back(std::move(trial));
  if (!has_best_ ||
      history_.back().objective < history_[best_index_].objective) {
    best_index_ = history_.size() - 1;
    has_best_ = true;
  }
  return history_.back().objective;
}

Result<double> Evaluator::EvaluateScaled(const Configuration& config,
                                         double fraction) {
  if (fraction <= 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("EvaluateScaled: fraction must be in (0,1]");
  }
  if (used_ + fraction > budget_max_ + 1e-9) {
    return Status::ResourceExhausted("tuning budget exhausted");
  }
  ATUNE_RETURN_IF_ERROR(space().ValidateConfiguration(config));
  Workload sample = workload_;
  sample.scale *= fraction;
  ATUNE_ASSIGN_OR_RETURN(ExecutionResult result,
                         system_->Execute(config, sample));
  used_ += fraction;
  Trial trial;
  trial.config = config;
  trial.result = result;
  trial.objective = ObjectiveOf(config, result);
  trial.cost = fraction;
  trial.scaled = true;
  history_.push_back(std::move(trial));
  return history_.back().objective;
}

Result<ExecutionResult> Evaluator::EvaluateUnit(const Configuration& config,
                                                size_t unit_index) {
  auto* iterative = dynamic_cast<IterativeSystem*>(system_);
  if (iterative == nullptr) {
    return Status::FailedPrecondition(
        StrFormat("system '%s' does not support unit-level execution",
                  system_->name().c_str()));
  }
  size_t units = std::max<size_t>(iterative->NumUnits(workload_), 1);
  double cost = 1.0 / static_cast<double>(units);
  if (used_ + cost > budget_max_ + 1e-9) {
    return Status::ResourceExhausted("tuning budget exhausted");
  }
  ATUNE_RETURN_IF_ERROR(space().ValidateConfiguration(config));
  ATUNE_ASSIGN_OR_RETURN(
      ExecutionResult result,
      iterative->ExecuteUnit(config, workload_, unit_index));
  used_ += cost;
  return result;
}

void Evaluator::RecordCompositeTrial(const Configuration& config,
                                     const ExecutionResult& aggregate,
                                     double cost) {
  Trial trial;
  trial.config = config;
  trial.result = aggregate;
  trial.objective = ObjectiveOf(config, aggregate);
  trial.cost = cost;
  history_.push_back(std::move(trial));
  if (!has_best_ ||
      history_.back().objective < history_[best_index_].objective) {
    best_index_ = history_.size() - 1;
    has_best_ = true;
  }
}

const Trial* Evaluator::best() const {
  if (!has_best_) return nullptr;
  return &history_[best_index_];
}

}  // namespace atune
