#include "core/tuner.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/alloc_hook.h"
#include "common/io_env.h"
#include "common/logging.h"
#include "common/stats.h"
#include "common/string_util.h"

namespace atune {

namespace {

/// Deterministic annotations shared by live and replayed trial spans: every
/// value either comes from (live) the committed trial / upcoming journal seq
/// or (replay) the journal record — bit-identical by construction, so the
/// structural tree comparison can include them.
void AnnotateTrialSpan(ScopedSpan* span, bool has_seq, uint64_t seq,
                       const Trial& trial, uint64_t batch_size,
                       uint64_t lane) {
  if (!span->active()) return;
  if (has_seq) span->AddArg("seq", std::to_string(seq));
  span->AddArg("round", std::to_string(trial.round));
  if (batch_size > 1) {
    span->AddArg("batch_size", std::to_string(batch_size));
    span->AddArg("lane", std::to_string(lane));
  }
  span->AddArg("cost", TraceDouble(trial.cost));
  span->AddArg("objective", TraceDouble(trial.objective));
  span->AddArg("runtime", TraceDouble(trial.result.runtime_seconds));
  if (trial.scaled) span->AddArg("scaled", "1");
  if (trial.result.censored) {
    span->AddArg("censored", "1");
  } else if (trial.result.failed) {
    span->AddArg("failed", "1");
  }
}

}  // namespace

const char* TunerCategoryToString(TunerCategory category) {
  switch (category) {
    case TunerCategory::kRuleBased:
      return "rule-based";
    case TunerCategory::kCostModeling:
      return "cost-modeling";
    case TunerCategory::kSimulationBased:
      return "simulation-based";
    case TunerCategory::kExperimentDriven:
      return "experiment-driven";
    case TunerCategory::kMachineLearning:
      return "machine-learning";
    case TunerCategory::kAdaptive:
      return "adaptive";
  }
  return "?";
}

Evaluator::Evaluator(TunableSystem* system, Workload workload,
                     TuningBudget budget, double failure_penalty)
    : system_(system),
      workload_(std::move(workload)),
      budget_(budget),
      budget_max_(static_cast<double>(budget.max_evaluations)),
      failure_penalty_(failure_penalty) {
  // Reserve the history up front (bounded for absurd budgets) so steady-state
  // commits never reallocate the trial vector. Repairs can commit more
  // trials than the budget counts; the slack covers typical overage and a
  // rare regrowth is correct, just not free.
  history_.reserve(std::min<size_t>(budget.max_evaluations + 16, 4096));
}

void Evaluator::set_metrics(MetricsRegistry* metrics) {
  metrics_ = metrics;
  m_ = MetricSet{};
  if (metrics_ == nullptr) return;
  m_.trial_latency = metrics_->GetHistogram("trial.latency_seconds");
  m_.trial_cost = metrics_->GetHistogram("trial.cost_units");
  m_.queue_wait = metrics_->GetHistogram("pool.queue_wait_host_seconds");
  m_.trials = metrics_->GetCounter("trial.total");
  m_.failed = metrics_->GetCounter("trial.failed");
  m_.censored = metrics_->GetCounter("trial.censored");
  m_.retried = metrics_->GetCounter("trial.retried");
  m_.timed_out = metrics_->GetCounter("trial.timed_out");
  m_.remeasured = metrics_->GetCounter("trial.remeasured");
  m_.replayed = metrics_->GetCounter("trial.replayed");
  m_.budget_used = metrics_->GetGauge("budget.used_units");
  m_.budget_retry = metrics_->GetGauge("budget.retry_units");
  m_.budget_remeasure = metrics_->GetGauge("budget.remeasure_units");
  m_.io_appends = metrics_->GetCounter("io.append.total");
  m_.io_retries = metrics_->GetCounter("io.append.retries");
  m_.io_shorts = metrics_->GetCounter("io.append.short_writes");
  m_.io_errors = metrics_->GetCounter("io.error.total");
  m_.io_degraded = metrics_->GetGauge("io.journal.degraded");
}

void Evaluator::RecordTrialMetrics(const Trial& trial) {
  if (metrics_ == nullptr) return;
  m_.trials->Increment();
  if (trial.result.censored) {
    m_.censored->Increment();
  } else if (trial.result.failed) {
    m_.failed->Increment();
  }
  m_.trial_latency->Record(trial.result.runtime_seconds);
  m_.trial_cost->Record(trial.cost);
  m_.budget_used->Set(used_);
}

void Evaluator::SynthesizeRepairSpans(uint64_t trial_span, bool synth_measure,
                                      uint64_t retries, uint64_t remeasures) {
  if (tracer_ == nullptr) return;
  if (synth_measure) {
    tracer_->RecordSynthetic(trial_span, "measure", nullptr, {});
  }
  for (uint64_t i = 0; i < retries; ++i) {
    tracer_->RecordSynthetic(trial_span, "retry", nullptr, {});
  }
  for (uint64_t i = 0; i < remeasures; ++i) {
    tracer_->RecordSynthetic(trial_span, "remeasure", nullptr, {});
  }
}

double Evaluator::ObjectiveOf(const Configuration& config,
                              const ExecutionResult& result) const {
  if (objective_) return objective_(config, result);
  double obj = result.runtime_seconds;
  if (result.failed) obj *= failure_penalty_;
  return obj;
}

void Evaluator::CommitTrial(Configuration config, ExecutionResult result,
                            double cost, bool exclude_from_best) {
  commit_allocs_sample_ = SampleAllocCount();
  used_ += cost;
  Trial trial;
  trial.objective = ObjectiveOf(config, result);
  trial.config = std::move(config);
  trial.result = std::move(result);
  trial.cost = cost;
  trial.scaled = exclude_from_best;
  trial.round = round_;
  history_.push_back(std::move(trial));
  if (!exclude_from_best &&
      (!has_best_ ||
       history_.back().objective < history_[best_index_].objective)) {
    best_index_ = history_.size() - 1;
    has_best_ = true;
  }
  // The guard sees every committed observation (ReplayTrial mirrors this),
  // so breaker state is a pure function of the journaled sequence.
  if (guard_ != nullptr) guard_->Observe(history_.back());
}

ExecutionResult Evaluator::RetryTransient(const Configuration& config,
                                          const Workload& workload,
                                          ExecutionResult result,
                                          double base_cost, double reserved,
                                          double* cost,
                                          uint64_t parent_span) {
  size_t attempts = 0;
  while (result.failed && result.transient &&
         attempts < policy_.max_retries) {
    double retry_cost = policy_.retry_cost_fraction * base_cost;
    // `reserved` already includes this run's base cost; only the extras
    // accrued so far (*cost - base_cost) and the new retry come on top.
    if (used_ + reserved + (*cost - base_cost) + retry_cost >
        budget_max_ + kBudgetEpsilon) {
      break;  // no budget left to retry; degrade to the failed measurement
    }
    // Manual span rather than ScopedSpan: a retry that fails to execute is
    // never recorded, matching replay synthesis (which only sees the
    // counted retries).
    uint64_t span_id = 0;
    uint64_t begin_ns = 0;
    if (tracer_ != nullptr) {
      span_id = tracer_->BeginSpan();
      begin_ns = tracer_->NowNs();
    }
    auto again = CountedExecute(config, workload);
    if (!again.ok()) break;  // repair impossible; keep what we measured
    if (tracer_ != nullptr) {
      tracer_->EndSpan(span_id, parent_span, "retry", nullptr, begin_ns, {});
    }
    *cost += retry_cost;
    ++attempts;
    ++retried_runs_;
    if (m_.retried != nullptr) {
      m_.retried->Increment();
      m_.budget_retry->Add(retry_cost);
    }
    result = *std::move(again);
  }
  return result;
}

double Evaluator::OutlierScore(double runtime) const {
  std::vector<double> runtimes;
  runtimes.reserve(history_.size());
  for (const Trial& t : history_) {
    if (t.scaled || t.result.failed || t.result.censored) continue;
    runtimes.push_back(t.result.runtime_seconds);
  }
  if (runtimes.size() < policy_.outlier_min_history) return 0.0;
  MadResult stats = Mad(std::move(runtimes));
  // Floor the MAD so a near-degenerate history (repeated identical
  // measurements) doesn't make every new config look suspicious.
  double mad =
      std::max({stats.mad, 0.01 * std::abs(stats.median), 1e-12});
  return 0.6745 * std::abs(runtime - stats.median) / mad;
}

ExecutionResult Evaluator::ApplyRobustnessPolicy(const Configuration& config,
                                                 ExecutionResult result,
                                                 double reserved,
                                                 double* cost,
                                                 bool* exclude_from_best,
                                                 uint64_t parent_span) {
  *cost = 1.0;
  *exclude_from_best = false;
  result = RetryTransient(config, workload_, std::move(result), 1.0,
                          reserved, cost, parent_span);

  // Timeout watchdog: reclaim hung (or merely interminable) runs at the
  // threshold. Early-abort cost accounting: we only watched the run for
  // timeout_seconds of its wall-clock, so charge that fraction (with the
  // same 0.05 setup floor); the censored lower bound never becomes a best.
  if (policy_.timeout_seconds > 0.0 &&
      result.runtime_seconds > policy_.timeout_seconds) {
    double fraction = policy_.timeout_seconds / result.runtime_seconds;
    // Written as (cost - 1) + floor so the 0.05 floor is exact when no
    // retry surcharges preceded it (cost == 1.0).
    *cost = (*cost - 1.0) + std::max(0.05, std::min(1.0, fraction));
    result.runtime_seconds = policy_.timeout_seconds;
    result.censored = true;
    result.failure_reason = StrFormat(
        "killed by timeout watchdog after %.0f s", policy_.timeout_seconds);
    ++timed_out_runs_;
    if (m_.timed_out != nullptr) m_.timed_out->Increment();
    *exclude_from_best = true;
    return result;
  }

  // MAD outlier re-measurement: a completed run far outside the history's
  // runtime distribution is either a straggler, a corrupted measurement, or
  // a genuinely extreme configuration — re-running distinguishes them, and
  // committing the median measurement is right in every case.
  if (policy_.outlier_mad_threshold > 0.0 && !result.failed &&
      OutlierScore(result.runtime_seconds) > policy_.outlier_mad_threshold) {
    std::vector<ExecutionResult> measurements;
    measurements.push_back(result);
    for (size_t i = 0; i < policy_.remeasure_runs; ++i) {
      if (used_ + reserved + (*cost - 1.0) + 1.0 >
          budget_max_ + kBudgetEpsilon) {
        break;  // keep what we can afford
      }
      uint64_t span_id = 0;
      uint64_t begin_ns = 0;
      if (tracer_ != nullptr) {
        span_id = tracer_->BeginSpan();
        begin_ns = tracer_->NowNs();
      }
      auto again = CountedExecute(config, workload_);
      if (!again.ok()) break;
      if (tracer_ != nullptr) {
        tracer_->EndSpan(span_id, parent_span, "remeasure", nullptr, begin_ns,
                         {});
      }
      *cost += 1.0;
      ++remeasured_runs_;
      if (m_.remeasured != nullptr) {
        m_.remeasured->Increment();
        m_.budget_remeasure->Add(1.0);
      }
      measurements.push_back(RetryTransient(config, workload_,
                                            *std::move(again), 1.0, reserved,
                                            cost, parent_span));
    }
    if (measurements.size() > 1) {
      std::sort(measurements.begin(), measurements.end(),
                [](const ExecutionResult& a, const ExecutionResult& b) {
                  return a.runtime_seconds < b.runtime_seconds;
                });
      result = measurements[measurements.size() / 2];
    }
  }
  return result;
}

Status Evaluator::RefuseBudget() {
  budget_refused_ = true;
  return Status::ResourceExhausted(
      StrFormat("tuning budget exhausted (%.1f/%.1f runs)", used_,
                budget_max_));
}

Status Evaluator::Refuse(double needed) {
  if (lease_active_ && used_ + needed <= budget_max_ + kBudgetEpsilon) {
    // The lease is spent but the real budget would still fund this call:
    // refuse without the terminal latch so the session resumes normal
    // accounting once the lease clears. The lease-scoped latch makes
    // fractional leftovers safe for `while (!Exhausted())` tuners (see
    // Exhausted()); ClearLease() resets it.
    lease_refused_ = true;
    return Status::ResourceExhausted(
        StrFormat("evaluation lease exhausted (%.1f/%.1f leased units)",
                  used_, lease_limit_));
  }
  return RefuseBudget();
}

namespace {
Status InterruptedStatus() {
  return Status::Aborted(
      "tuning session interrupted; progress is checkpointed in the trial "
      "journal");
}
}  // namespace

bool Evaluator::InterruptRequested() {
  if (interrupted_) return true;
  bool fire = interrupt_check_ && interrupt_check_();
  if (record_limit_ > 0 && journal_ != nullptr &&
      journal_->next_seq() >= record_limit_) {
    fire = true;
  }
  if (fire) {
    interrupted_ = true;
    // Also refuse the budget so `while (!Exhausted())` tuners wind down
    // even if they swallow the kAborted status.
    budget_refused_ = true;
  }
  return fire;
}

Status Evaluator::EntryGate() {
  if (!journal_error_.ok()) return journal_error_;
  if (InterruptRequested()) return InterruptedStatus();
  return Status::OK();
}

Result<ExecutionResult> Evaluator::CountedExecute(const Configuration& config,
                                                  const Workload& workload) {
  ++system_runs_;
  return system_->Execute(config, workload);
}

Status Evaluator::JournalTrial(uint64_t batch_size, uint64_t lane,
                               uint64_t parent_span) {
  if (journal_ == nullptr) {
    last_commit_allocs_ = SampleAllocCount() - commit_allocs_sample_;
    return Status::OK();
  }
  const Trial& trial = history_.back();
  // Borrow the committed trial's config/result instead of copying them into
  // an owning record — with AppendRef's reused frame buffer, the journal
  // half of the commit path allocates nothing in steady state.
  JournalRecordRef rec;
  rec.kind = JournalRecordKind::kTrial;
  rec.seq = journal_->next_seq();
  rec.config = &trial.config;
  rec.result = &trial.result;
  rec.objective = trial.objective;
  rec.cost = trial.cost;
  rec.scaled = trial.scaled;
  rec.round = trial.round;
  rec.batch_size = batch_size;
  rec.lane = lane;
  rec.system_runs = system_runs_;
  rec.used = used_;
  rec.retried_runs = retried_runs_;
  rec.timed_out_runs = timed_out_runs_;
  rec.remeasured_runs = remeasured_runs_;
  uint64_t span_id = 0;
  uint64_t begin_ns = 0;
  if (tracer_ != nullptr) {
    span_id = tracer_->BeginSpan();
    begin_ns = tracer_->NowNs();
  }
  Status status = journal_->AppendRef(rec);
  last_commit_allocs_ = SampleAllocCount() - commit_allocs_sample_;
  RecordIoTelemetry();
  if (!status.ok()) {
    ATUNE_RETURN_IF_ERROR(
        HandleJournalFailure(std::move(status), parent_span));
  } else {
    if (m_.io_appends != nullptr) m_.io_appends->Increment();
    // The span marks the commit boundary; structurally it is "commit", the
    // same structural name the replay path emits, so resumed and
    // uninterrupted traces agree.
    if (tracer_ != nullptr) {
      tracer_->EndSpan(span_id, parent_span, "journal_append", "commit",
                       begin_ns, {});
    }
  }
  // The append is the commit boundary: firing the interrupt here (rather
  // than at the next call's entry gate) means a kill lands with the record
  // durable but the measurement never reaching the tuner — exactly the
  // crash the journal defends against — and stops a long batch mid-commit.
  if (InterruptRequested()) return InterruptedStatus();
  return Status::OK();
}

Status Evaluator::JournalUnit(const Configuration& config, size_t unit_index,
                              const ExecutionResult& result, double cost,
                              uint64_t parent_span) {
  uint64_t sample = SampleAllocCount();
  if (journal_ == nullptr) {
    last_commit_allocs_ = SampleAllocCount() - sample;
    return Status::OK();
  }
  JournalRecordRef rec;
  rec.kind = JournalRecordKind::kUnit;
  rec.seq = journal_->next_seq();
  rec.config = &config;
  rec.result = &result;
  rec.objective = ObjectiveOf(config, result);
  rec.cost = cost;
  rec.round = round_;
  rec.unit_index = unit_index;
  rec.system_runs = system_runs_;
  rec.used = used_;
  rec.retried_runs = retried_runs_;
  rec.timed_out_runs = timed_out_runs_;
  rec.remeasured_runs = remeasured_runs_;
  uint64_t span_id = 0;
  uint64_t begin_ns = 0;
  if (tracer_ != nullptr) {
    span_id = tracer_->BeginSpan();
    begin_ns = tracer_->NowNs();
  }
  Status status = journal_->AppendRef(rec);
  last_commit_allocs_ = SampleAllocCount() - sample;
  RecordIoTelemetry();
  if (!status.ok()) {
    ATUNE_RETURN_IF_ERROR(
        HandleJournalFailure(std::move(status), parent_span));
  } else {
    if (m_.io_appends != nullptr) m_.io_appends->Increment();
    if (tracer_ != nullptr) {
      tracer_->EndSpan(span_id, parent_span, "journal_append", "commit",
                       begin_ns, {});
    }
  }
  if (InterruptRequested()) return InterruptedStatus();
  return Status::OK();
}

Status Evaluator::HandleJournalFailure(Status status, uint64_t parent_span) {
  if (m_.io_errors != nullptr) m_.io_errors->Increment();
  if (journal_policy_ == JournalPolicy::kStrict) {
    journal_error_ = status;
    return status;
  }
  // Degrade: availability over resumability. Detach the journal so no
  // further appends are attempted, and leave a durable sidecar so a later
  // resume refuses the now-incomplete record instead of silently replaying
  // a truncated history.
  journal_degraded_ = true;
  const std::string sidecar = journal_->path() + kDegradedSidecarSuffix;
  journal_ = nullptr;
  IoEnv* env = IoEnv::Current();
  auto marker = env->OpenWritable(sidecar, IoEnv::OpenMode::kTruncate);
  if (marker.ok()) {
    std::string message = "journal degraded: " + status.message() + "\n";
    (void)WriteFully(env, marker->get(), message.data(), message.size());
    (void)(*marker)->Sync();
    (void)(*marker)->Close();
    (void)env->SyncDir(sidecar);
  }
  if (m_.io_degraded != nullptr) m_.io_degraded->Set(1.0);
  if (tracer_ != nullptr) {
    tracer_->RecordSynthetic(parent_span, "journal_degrade", nullptr, {});
  }
  ATUNE_LOG(Warning) << "journal degraded (" << status.ToString()
                     << "); tuning continues un-journaled and this session "
                        "can no longer be resumed";
  return Status::OK();
}

void Evaluator::RecordIoTelemetry() {
  if (journal_ == nullptr || metrics_ == nullptr) return;
  uint64_t retries = journal_->write_retries();
  uint64_t shorts = journal_->short_writes();
  if (retries > io_retries_seen_) {
    m_.io_retries->Increment(retries - io_retries_seen_);
    io_retries_seen_ = retries;
  }
  if (shorts > io_shorts_seen_) {
    m_.io_shorts->Increment(shorts - io_shorts_seen_);
    io_shorts_seen_ = shorts;
  }
}

Status Evaluator::ReplayTrial(const Configuration& config,
                              uint64_t batch_size, uint64_t lane,
                              uint64_t parent_span, bool synth_measure) {
  // Replay-consistency errors latch into journal_error_: they are
  // durability failures, and the latch keeps supervision layers from
  // mistaking them for a tuner's numerical failure and failing over past a
  // corrupted resume.
  if (replay_pos_ >= replay_.size()) {
    return StickyReplayError(Status::Internal(
        "journal replay ended mid-call; the journal does not match the "
        "tuner's request sequence"));
  }
  const JournalRecord& rec = replay_[replay_pos_];
  if (rec.kind != JournalRecordKind::kTrial || rec.batch_size != batch_size ||
      rec.lane != lane || !(rec.config == config)) {
    return StickyReplayError(Status::Internal(StrFormat(
        "journal replay diverged at record %llu: the tuner requested a "
        "different evaluation than the one journaled (check that the resumed "
        "session uses identical parameters, including any custom objective)",
        static_cast<unsigned long long>(rec.seq))));
  }
  ++replay_pos_;
  ATUNE_RETURN_IF_ERROR(StickyReplayError(FastForwardSystem(rec)));
  // Counter deltas relative to the previous record reconstruct the repair
  // activity this trial performed live (the journal stores the counters
  // cumulatively) — capture them before the counters are overwritten.
  uint64_t delta_retried = rec.retried_runs - retried_runs_;
  uint64_t delta_timed_out = rec.timed_out_runs - timed_out_runs_;
  uint64_t delta_remeasured = rec.remeasured_runs - remeasured_runs_;
  // Re-apply the committed trial exactly: same round, same cost, same
  // cumulative budget/counters/noise cursor as the uninterrupted session.
  round_ = rec.round;
  Trial trial;
  trial.config = rec.config;
  trial.result = rec.result;
  trial.objective = rec.objective;
  trial.cost = rec.cost;
  trial.scaled = rec.scaled;
  trial.round = rec.round;
  history_.push_back(std::move(trial));
  if (!rec.scaled &&
      (!has_best_ ||
       history_.back().objective < history_[best_index_].objective)) {
    best_index_ = history_.size() - 1;
    has_best_ = true;
  }
  used_ = rec.used;
  retried_runs_ = rec.retried_runs;
  timed_out_runs_ = rec.timed_out_runs;
  remeasured_runs_ = rec.remeasured_runs;
  // Mirror the live CommitTrial's guard feedback so replayed sessions
  // rebuild identical supervision state (crash regions, trial clock).
  if (guard_ != nullptr) guard_->Observe(history_.back());
  // Emit the same span structure the live trial emitted: the trial span
  // with synthesized measure/retry/remeasure children and a commit-boundary
  // span (structural name "commit", like the live journal_append).
  {
    ScopedSpan trial_span(tracer_, "trial", parent_span);
    AnnotateTrialSpan(&trial_span, /*has_seq=*/true, rec.seq, history_.back(),
                      batch_size, lane);
    SynthesizeRepairSpans(trial_span.id(), synth_measure, delta_retried,
                          delta_remeasured);
    if (tracer_ != nullptr) {
      tracer_->RecordSynthetic(trial_span.id(), "replay", "commit", {});
    }
  }
  if (metrics_ != nullptr) {
    // Deterministic metrics are re-recorded from the journal, mirroring the
    // live recording sequence so a resumed registry matches bit-for-bit
    // (budget.retry_units reconstructs each live Add(retry_cost); the
    // full-run retry cost is exact, scaled-trial retries are approximated
    // with base cost 1.0 — see DESIGN.md §9).
    for (uint64_t i = 0; i < delta_retried; ++i) {
      m_.retried->Increment();
      m_.budget_retry->Add(policy_.retry_cost_fraction);
    }
    m_.timed_out->Increment(delta_timed_out);
    for (uint64_t i = 0; i < delta_remeasured; ++i) {
      m_.remeasured->Increment();
      m_.budget_remeasure->Add(1.0);
    }
    m_.replayed->Increment();
    // The journaled record was one successful append in the live session;
    // re-count it so a resumed registry matches the uninterrupted one.
    m_.io_appends->Increment();
    RecordTrialMetrics(history_.back());
  }
  return Status::OK();
}

Status Evaluator::FastForwardSystem(const JournalRecord& rec) {
  // Skip exactly the runs this record consumed, leaving any runs the tuner
  // performed directly on the system (off-journal, e.g. OtterTune's offline
  // repository build) to re-execute live. Because measurement noise depends
  // only on (seed, run index), re-running those interleaved at the same
  // indices reproduces them bit-identically — no tuner-side state to save.
  if (rec.system_runs < system_runs_) {
    return Status::Internal(StrFormat(
        "journal replay diverged at record %llu: system-run cursor moved "
        "backwards (%llu -> %llu)",
        static_cast<unsigned long long>(rec.seq),
        static_cast<unsigned long long>(system_runs_),
        static_cast<unsigned long long>(rec.system_runs)));
  }
  if (rec.system_runs > system_runs_) {
    system_->SkipRuns(rec.system_runs - system_runs_);
    system_runs_ = rec.system_runs;
  }
  return Status::OK();
}

Result<ExecutionResult> Evaluator::ReplayUnit(const Configuration& config,
                                              size_t unit_index) {
  if (replay_pos_ >= replay_.size()) {
    return StickyReplayError(Status::Internal(
        "journal replay ended mid-call; the journal does not match the "
        "tuner's request sequence"));
  }
  const JournalRecord& rec = replay_[replay_pos_];
  if (rec.kind != JournalRecordKind::kUnit || rec.unit_index != unit_index ||
      !(rec.config == config)) {
    return StickyReplayError(Status::Internal(StrFormat(
        "journal replay diverged at record %llu: the tuner requested a "
        "different unit execution than the one journaled",
        static_cast<unsigned long long>(rec.seq))));
  }
  ++replay_pos_;
  ATUNE_RETURN_IF_ERROR(StickyReplayError(FastForwardSystem(rec)));
  round_ = rec.round;
  used_ = rec.used;
  retried_runs_ = rec.retried_runs;
  timed_out_runs_ = rec.timed_out_runs;
  remeasured_runs_ = rec.remeasured_runs;
  {
    ScopedSpan unit_span(tracer_, "unit");
    if (unit_span.active()) {
      unit_span.AddArg("seq", std::to_string(rec.seq));
      unit_span.AddArg("unit", std::to_string(unit_index));
      unit_span.AddArg("cost", TraceDouble(rec.cost));
      unit_span.AddArg("objective", TraceDouble(rec.objective));
      unit_span.AddArg("runtime", TraceDouble(rec.result.runtime_seconds));
    }
    if (tracer_ != nullptr) {
      tracer_->RecordSynthetic(unit_span.id(), "measure", nullptr, {});
      tracer_->RecordSynthetic(unit_span.id(), "replay", "commit", {});
    }
  }
  if (metrics_ != nullptr) {
    m_.budget_used->Set(used_);
    m_.replayed->Increment();
    m_.io_appends->Increment();
  }
  return rec.result;
}

Result<double> Evaluator::Evaluate(const Configuration& config) {
  ATUNE_RETURN_IF_ERROR(EntryGate());
  if (used_ + 1.0 > EffectiveMax() + kBudgetEpsilon) {
    return Refuse(1.0);
  }
  Configuration admitted = AdmitProposal(config);
  ATUNE_RETURN_IF_ERROR(space().ValidateConfiguration(admitted));
  ScopedSpan round_span(tracer_, "round");
  if (replay_active()) {
    ATUNE_RETURN_IF_ERROR(ReplayTrial(admitted, /*batch_size=*/1, /*lane=*/0,
                                      round_span.id(),
                                      /*synth_measure=*/true));
    return history_.back().objective;
  }
  ScopedSpan trial_span(tracer_, "trial", round_span.id());
  ExecutionResult result;
  {
    ScopedSpan measure_span(tracer_, "measure", trial_span.id());
    ATUNE_ASSIGN_OR_RETURN(result, CountedExecute(admitted, workload_));
  }
  ++round_;
  double cost = 1.0;
  bool exclude = false;
  result = ApplyRobustnessPolicy(admitted, std::move(result), /*reserved=*/1.0,
                                 &cost, &exclude, trial_span.id());
  CommitTrial(std::move(admitted), std::move(result), cost, exclude);
  RecordTrialMetrics(history_.back());
  AnnotateTrialSpan(&trial_span, /*has_seq=*/journal_ != nullptr,
                    journal_ != nullptr ? journal_->next_seq() : 0,
                    history_.back(), /*batch_size=*/1, /*lane=*/0);
  ATUNE_RETURN_IF_ERROR(
      JournalTrial(/*batch_size=*/1, /*lane=*/0, trial_span.id()));
  return history_.back().objective;
}

ThreadPool* Evaluator::thread_pool(size_t min_threads) {
  min_threads = std::max<size_t>(min_threads, 1);
  if (pool_ == nullptr || pool_->num_threads() < min_threads) {
    pool_ = std::make_unique<ThreadPool>(min_threads);
  }
  return pool_.get();
}

Result<std::vector<double>> Evaluator::EvaluateBatch(
    const std::vector<Configuration>& configs, size_t parallelism) {
  if (configs.empty()) return std::vector<double>();
  ATUNE_RETURN_IF_ERROR(EntryGate());
  // Admit the whole submission before validation/truncation so the guard's
  // call sequence is identical live and on replay (truncation depends on
  // budget state, admission must not).
  std::vector<Configuration> admitted;
  admitted.reserve(configs.size());
  for (const Configuration& config : configs) {
    admitted.push_back(AdmitProposal(config));
  }
  for (const Configuration& config : admitted) {
    ATUNE_RETURN_IF_ERROR(space().ValidateConfiguration(config));
  }
  // Deterministic mid-batch truncation: only whole runs that still fit.
  size_t affordable =
      static_cast<size_t>(std::max(0.0, Remaining() + kBudgetEpsilon));
  if (affordable == 0) {
    return Refuse(1.0);
  }
  size_t k = std::min(admitted.size(), affordable);
  ScopedSpan round_span(tracer_, "round");
  ScopedSpan batch_span(tracer_, "batch", round_span.id());
  if (batch_span.active()) batch_span.AddArg("size", std::to_string(k));
  if (replay_active()) {
    // Recovery only ever keeps whole batches, so replay serves the full
    // wave or none of it; running dry mid-wave means the journal belongs to
    // a different request sequence.
    std::vector<double> objectives;
    objectives.reserve(k);
    for (size_t i = 0; i < k; ++i) {
      ATUNE_RETURN_IF_ERROR(ReplayTrial(admitted[i], k, i, batch_span.id(),
                                        /*synth_measure=*/true));
      objectives.push_back(history_.back().objective);
    }
    return objectives;
  }
  ++round_;  // the whole batch is one wall-clock round

  // Lane trial spans open before the fan-out so each worker's "measure"
  // span can parent to its lane; they close lane-by-lane at commit.
  std::vector<std::unique_ptr<ScopedSpan>> lane_spans;
  if (tracer_ != nullptr) {
    lane_spans.reserve(k);
    for (size_t i = 0; i < k; ++i) {
      lane_spans.push_back(
          std::make_unique<ScopedSpan>(tracer_, "trial", batch_span.id()));
    }
  }
  auto lane_span_id = [&](size_t i) -> uint64_t {
    return tracer_ != nullptr ? lane_spans[i]->id() : 0;
  };

  std::vector<Result<ExecutionResult>> results;
  results.reserve(k);
  std::unique_ptr<TunableSystem> probe =
      parallelism > 1 ? system_->Clone(0) : nullptr;
  if (probe == nullptr) {
    // Serial fallback (parallelism 1 or non-clonable system): identical
    // semantics, executed in submission order on the parent.
    for (size_t i = 0; i < k; ++i) {
      ScopedSpan measure_span(tracer_, "measure", lane_span_id(i));
      results.push_back(CountedExecute(admitted[i], workload_));
    }
  } else {
    // Fan out over clones. Clone i replays exactly the noise the parent
    // would draw on its i-th execution from now, so the committed history
    // is bit-identical to the serial loop above.
    std::vector<std::unique_ptr<TunableSystem>> clones;
    clones.reserve(k);
    clones.push_back(std::move(probe));  // probe == Clone(0); reuse it
    for (size_t i = 1; i < k; ++i) clones.push_back(system_->Clone(i));
    ThreadPool* pool = thread_pool(parallelism);
    std::vector<std::future<Result<ExecutionResult>>> futures;
    futures.reserve(k);
    for (size_t i = 0; i < k; ++i) {
      TunableSystem* clone = clones[i].get();
      const Configuration* config = &admitted[i];
      uint64_t lane_span = lane_span_id(i);
      Histogram* queue_wait = m_.queue_wait;  // host-clock; see naming note
      auto submitted = std::chrono::steady_clock::now();
      futures.push_back(
          pool->Submit([clone, config, this, lane_span, queue_wait,
                        submitted]() {
            if (queue_wait != nullptr) {
              queue_wait->Record(std::chrono::duration<double>(
                                     std::chrono::steady_clock::now() -
                                     submitted)
                                     .count());
            }
            ScopedSpan measure_span(tracer_, "measure", lane_span);
            return clone->Execute(*config, workload_);
          }));
    }
    for (size_t i = 0; i < k; ++i) results.push_back(futures[i].get());
    system_->SkipRuns(k);
    system_runs_ += k;  // the cursor tracks SkipRuns as well as executions
  }

  // Commit in submission order; an execution error (impossible for
  // validated configs on the built-in simulators, but systems may fail)
  // aborts the batch after committing the preceding trials. Robustness
  // repairs (transient retries, outlier re-measurement) re-execute on the
  // parent — realigned by SkipRuns above — so a faulty wave behaves like a
  // parallel wave followed by a serial repair phase; with nothing to repair
  // this is bit-identical to committing the wave directly.
  std::vector<double> objectives;
  objectives.reserve(k);
  double reserved = static_cast<double>(k);  // base cost of uncommitted lanes
  for (size_t i = 0; i < k; ++i) {
    if (!results[i].ok()) return results[i].status();
    double cost = 1.0;
    bool exclude = false;
    ExecutionResult repaired = ApplyRobustnessPolicy(
        admitted[i], *std::move(results[i]), reserved, &cost, &exclude,
        lane_span_id(i));
    CommitTrial(std::move(admitted[i]), std::move(repaired), cost, exclude);
    RecordTrialMetrics(history_.back());
    reserved -= 1.0;
    if (tracer_ != nullptr) {
      AnnotateTrialSpan(lane_spans[i].get(), /*has_seq=*/journal_ != nullptr,
                        journal_ != nullptr ? journal_->next_seq() : 0,
                        history_.back(), /*batch_size=*/k, /*lane=*/i);
    }
    Status append_status = JournalTrial(/*batch_size=*/k, /*lane=*/i,
                                        lane_span_id(i));
    if (tracer_ != nullptr) lane_spans[i].reset();  // lane committed
    ATUNE_RETURN_IF_ERROR(append_status);
    objectives.push_back(history_.back().objective);
  }
  return objectives;
}

Result<double> Evaluator::EvaluateWithEarlyAbort(const Configuration& config,
                                                 double abort_at_seconds,
                                                 bool* aborted) {
  if (aborted != nullptr) *aborted = false;
  if (abort_at_seconds <= 0.0) {
    return Status::InvalidArgument(
        "EvaluateWithEarlyAbort: abort threshold must be positive");
  }
  ATUNE_RETURN_IF_ERROR(EntryGate());
  // Conservative gate: a run that completes under the threshold costs a
  // full unit, so require one up front (never overspends).
  if (used_ + 1.0 > EffectiveMax() + kBudgetEpsilon) {
    return Refuse(1.0);
  }
  const Configuration admitted = AdmitProposal(config);
  ATUNE_RETURN_IF_ERROR(space().ValidateConfiguration(admitted));
  ScopedSpan round_span(tracer_, "round");
  if (replay_active()) {
    ATUNE_RETURN_IF_ERROR(ReplayTrial(admitted, /*batch_size=*/1, /*lane=*/0,
                                      round_span.id(),
                                      /*synth_measure=*/true));
    if (aborted != nullptr) *aborted = history_.back().result.censored;
    return history_.back().objective;
  }
  ScopedSpan trial_span(tracer_, "trial", round_span.id());
  ExecutionResult result;
  {
    ScopedSpan measure_span(tracer_, "measure", trial_span.id());
    ATUNE_ASSIGN_OR_RETURN(result, CountedExecute(admitted, workload_));
  }
  ++round_;
  double cost = 1.0;
  result = RetryTransient(admitted, workload_, std::move(result), 1.0,
                          /*reserved=*/1.0, &cost, trial_span.id());
  // The watchdog, when armed and tighter than the caller's threshold, kills
  // the run first — a hung run never gets to burn abort_at_seconds.
  double censor_at = abort_at_seconds;
  bool watchdog = false;
  if (policy_.timeout_seconds > 0.0 &&
      policy_.timeout_seconds < abort_at_seconds) {
    censor_at = policy_.timeout_seconds;
    watchdog = true;
  }
  if (result.runtime_seconds > censor_at && !result.failed) {
    // Censor: we only watched the run for censor_at of wall clock.
    double fraction = std::min(1.0, censor_at / result.runtime_seconds);
    cost = (cost - 1.0) + std::max(0.05, fraction);  // setup isn't free
    if (aborted != nullptr) *aborted = true;
    if (watchdog) {
      ++timed_out_runs_;
      if (m_.timed_out != nullptr) m_.timed_out->Increment();
    }
    result.censored = true;
    result.failure_reason = watchdog
                                ? StrFormat("killed by timeout watchdog "
                                            "after %.0f s", censor_at)
                                : "aborted by early-abort threshold";
    result.runtime_seconds = censor_at;
    // The objective is a *lower bound*; keep it clearly worse than any
    // incumbent below the threshold and exclude it from best-tracking
    // (its objective is not a completed measurement).
    CommitTrial(std::move(admitted), std::move(result), cost,
                /*exclude_from_best=*/true);
    RecordTrialMetrics(history_.back());
    AnnotateTrialSpan(&trial_span, /*has_seq=*/journal_ != nullptr,
                      journal_ != nullptr ? journal_->next_seq() : 0,
                      history_.back(), /*batch_size=*/1, /*lane=*/0);
    ATUNE_RETURN_IF_ERROR(
        JournalTrial(/*batch_size=*/1, /*lane=*/0, trial_span.id()));
    return history_.back().objective;
  }
  CommitTrial(std::move(admitted), std::move(result), cost);
  RecordTrialMetrics(history_.back());
  AnnotateTrialSpan(&trial_span, /*has_seq=*/journal_ != nullptr,
                    journal_ != nullptr ? journal_->next_seq() : 0,
                    history_.back(), /*batch_size=*/1, /*lane=*/0);
  ATUNE_RETURN_IF_ERROR(
      JournalTrial(/*batch_size=*/1, /*lane=*/0, trial_span.id()));
  return history_.back().objective;
}

Result<double> Evaluator::EvaluateScaled(const Configuration& config,
                                         double fraction) {
  if (fraction <= 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("EvaluateScaled: fraction must be in (0,1]");
  }
  ATUNE_RETURN_IF_ERROR(EntryGate());
  if (used_ + fraction > EffectiveMax() + kBudgetEpsilon) {
    return Refuse(fraction);
  }
  // Sanitize-only: Ernest-style tuners legitimately re-propose the same
  // config at several scales, so the duplicate/veto pipeline stays out.
  Configuration admitted = SanitizeProposal(config);
  ATUNE_RETURN_IF_ERROR(space().ValidateConfiguration(admitted));
  ScopedSpan round_span(tracer_, "round");
  if (replay_active()) {
    ATUNE_RETURN_IF_ERROR(ReplayTrial(admitted, /*batch_size=*/1, /*lane=*/0,
                                      round_span.id(),
                                      /*synth_measure=*/true));
    return history_.back().objective;
  }
  Workload sample = workload_;
  sample.scale *= fraction;
  ScopedSpan trial_span(tracer_, "trial", round_span.id());
  ExecutionResult result;
  {
    ScopedSpan measure_span(tracer_, "measure", trial_span.id());
    ATUNE_ASSIGN_OR_RETURN(result, CountedExecute(admitted, sample));
  }
  ++round_;
  // Transient faults hit cheap sample runs too; a retry costs the same
  // fraction of the (scaled-down) run it re-executes.
  double cost = fraction;
  result = RetryTransient(admitted, sample, std::move(result), fraction,
                          /*reserved=*/fraction, &cost, trial_span.id());
  CommitTrial(std::move(admitted), std::move(result), cost,
              /*exclude_from_best=*/true);
  RecordTrialMetrics(history_.back());
  AnnotateTrialSpan(&trial_span, /*has_seq=*/journal_ != nullptr,
                    journal_ != nullptr ? journal_->next_seq() : 0,
                    history_.back(), /*batch_size=*/1, /*lane=*/0);
  ATUNE_RETURN_IF_ERROR(
      JournalTrial(/*batch_size=*/1, /*lane=*/0, trial_span.id()));
  return history_.back().objective;
}

Result<ExecutionResult> Evaluator::EvaluateUnit(const Configuration& config,
                                                size_t unit_index) {
  ATUNE_RETURN_IF_ERROR(EntryGate());
  IterativeSystem* iterative = system_->AsIterative();
  if (iterative == nullptr) {
    return Status::FailedPrecondition(
        StrFormat("system '%s' does not support unit-level execution",
                  system_->name().c_str()));
  }
  size_t units = std::max<size_t>(iterative->NumUnits(workload_), 1);
  double cost = 1.0 / static_cast<double>(units);
  if (used_ + cost > EffectiveMax() + kBudgetEpsilon) {
    return Refuse(cost);
  }
  // Sanitize-only: unit sequences legitimately repeat a config per unit,
  // so the duplicate/veto pipeline would corrupt composite runs.
  const Configuration admitted = SanitizeProposal(config);
  ATUNE_RETURN_IF_ERROR(space().ValidateConfiguration(admitted));
  if (replay_active()) {
    return ReplayUnit(admitted, unit_index);
  }
  ScopedSpan unit_span(tracer_, "unit");
  ++system_runs_;  // ExecuteUnit advances the system's run index like Execute
  ExecutionResult result;
  {
    ScopedSpan measure_span(tracer_, "measure", unit_span.id());
    ATUNE_ASSIGN_OR_RETURN(
        result, iterative->ExecuteUnit(admitted, workload_, unit_index));
  }
  used_ += cost;
  if (m_.budget_used != nullptr) m_.budget_used->Set(used_);
  if (unit_span.active()) {
    if (journal_ != nullptr) {
      unit_span.AddArg("seq", std::to_string(journal_->next_seq()));
    }
    unit_span.AddArg("unit", std::to_string(unit_index));
    unit_span.AddArg("cost", TraceDouble(cost));
    unit_span.AddArg("objective", TraceDouble(ObjectiveOf(admitted, result)));
    unit_span.AddArg("runtime", TraceDouble(result.runtime_seconds));
  }
  ATUNE_RETURN_IF_ERROR(
      JournalUnit(admitted, unit_index, result, cost, unit_span.id()));
  return result;
}

void Evaluator::RecordCompositeTrial(const Configuration& config,
                                     const ExecutionResult& aggregate,
                                     double cost) {
  // Sanitize so composite history entries match the configs the unit-level
  // path actually executed (EvaluateUnit sanitizes the same way).
  Configuration admitted = SanitizeProposal(config);
  ScopedSpan round_span(tracer_, "round");
  if (replay_active()) {
    // The composite trial was journaled like a serial trial; any divergence
    // surfaces through the sticky journal_error_ (this API is void). No
    // measure span is synthesized — the live path performs no base run.
    Status status = ReplayTrial(admitted, /*batch_size=*/1, /*lane=*/0,
                                round_span.id(), /*synth_measure=*/false);
    if (!status.ok() && journal_error_.ok()) journal_error_ = status;
    return;
  }
  ++round_;
  ScopedSpan trial_span(tracer_, "trial", round_span.id());
  // The budget was already charged by the unit-level evaluations; commit
  // with zero cost, then stamp the trial's nominal cost for reporting.
  CommitTrial(std::move(admitted), aggregate, 0.0);
  history_.back().cost = cost;
  RecordTrialMetrics(history_.back());
  AnnotateTrialSpan(&trial_span, /*has_seq=*/journal_ != nullptr,
                    journal_ != nullptr ? journal_->next_seq() : 0,
                    history_.back(), /*batch_size=*/1, /*lane=*/0);
  // Journal after the cost stamp so the record carries the display cost.
  JournalTrial(/*batch_size=*/1, /*lane=*/0, trial_span.id());
}

const Trial* Evaluator::best() const {
  if (!has_best_) return nullptr;
  return &history_[best_index_];
}

}  // namespace atune
