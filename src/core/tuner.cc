#include "core/tuner.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace atune {

const char* TunerCategoryToString(TunerCategory category) {
  switch (category) {
    case TunerCategory::kRuleBased:
      return "rule-based";
    case TunerCategory::kCostModeling:
      return "cost-modeling";
    case TunerCategory::kSimulationBased:
      return "simulation-based";
    case TunerCategory::kExperimentDriven:
      return "experiment-driven";
    case TunerCategory::kMachineLearning:
      return "machine-learning";
    case TunerCategory::kAdaptive:
      return "adaptive";
  }
  return "?";
}

Evaluator::Evaluator(TunableSystem* system, Workload workload,
                     TuningBudget budget, double failure_penalty)
    : system_(system),
      workload_(std::move(workload)),
      budget_(budget),
      budget_max_(static_cast<double>(budget.max_evaluations)),
      failure_penalty_(failure_penalty) {}

double Evaluator::ObjectiveOf(const Configuration& config,
                              const ExecutionResult& result) const {
  if (objective_) return objective_(config, result);
  double obj = result.runtime_seconds;
  if (result.failed) obj *= failure_penalty_;
  return obj;
}

void Evaluator::CommitTrial(const Configuration& config,
                            const ExecutionResult& result, double cost,
                            bool exclude_from_best) {
  used_ += cost;
  Trial trial;
  trial.config = config;
  trial.result = result;
  trial.objective = ObjectiveOf(config, result);
  trial.cost = cost;
  trial.scaled = exclude_from_best;
  trial.round = round_;
  history_.push_back(std::move(trial));
  if (!exclude_from_best &&
      (!has_best_ ||
       history_.back().objective < history_[best_index_].objective)) {
    best_index_ = history_.size() - 1;
    has_best_ = true;
  }
}

ExecutionResult Evaluator::RetryTransient(const Configuration& config,
                                          const Workload& workload,
                                          ExecutionResult result,
                                          double base_cost, double reserved,
                                          double* cost) {
  size_t attempts = 0;
  while (result.failed && result.transient &&
         attempts < policy_.max_retries) {
    double retry_cost = policy_.retry_cost_fraction * base_cost;
    // `reserved` already includes this run's base cost; only the extras
    // accrued so far (*cost - base_cost) and the new retry come on top.
    if (used_ + reserved + (*cost - base_cost) + retry_cost >
        budget_max_ + kBudgetEpsilon) {
      break;  // no budget left to retry; degrade to the failed measurement
    }
    auto again = system_->Execute(config, workload);
    if (!again.ok()) break;  // repair impossible; keep what we measured
    *cost += retry_cost;
    ++attempts;
    ++retried_runs_;
    result = *std::move(again);
  }
  return result;
}

double Evaluator::OutlierScore(double runtime) const {
  std::vector<double> runtimes;
  runtimes.reserve(history_.size());
  for (const Trial& t : history_) {
    if (t.scaled || t.result.failed || t.result.censored) continue;
    runtimes.push_back(t.result.runtime_seconds);
  }
  if (runtimes.size() < policy_.outlier_min_history) return 0.0;
  auto median_of = [](std::vector<double>* v) {
    std::nth_element(v->begin(), v->begin() + v->size() / 2, v->end());
    return (*v)[v->size() / 2];
  };
  double median = median_of(&runtimes);
  for (double& r : runtimes) r = std::abs(r - median);
  double mad = median_of(&runtimes);
  // Floor the MAD so a near-degenerate history (repeated identical
  // measurements) doesn't make every new config look suspicious.
  mad = std::max({mad, 0.01 * std::abs(median), 1e-12});
  return 0.6745 * std::abs(runtime - median) / mad;
}

ExecutionResult Evaluator::ApplyRobustnessPolicy(const Configuration& config,
                                                 ExecutionResult result,
                                                 double reserved,
                                                 double* cost,
                                                 bool* exclude_from_best) {
  *cost = 1.0;
  *exclude_from_best = false;
  result = RetryTransient(config, workload_, std::move(result), 1.0,
                          reserved, cost);

  // Timeout watchdog: reclaim hung (or merely interminable) runs at the
  // threshold. Early-abort cost accounting: we only watched the run for
  // timeout_seconds of its wall-clock, so charge that fraction (with the
  // same 0.05 setup floor); the censored lower bound never becomes a best.
  if (policy_.timeout_seconds > 0.0 &&
      result.runtime_seconds > policy_.timeout_seconds) {
    double fraction = policy_.timeout_seconds / result.runtime_seconds;
    // Written as (cost - 1) + floor so the 0.05 floor is exact when no
    // retry surcharges preceded it (cost == 1.0).
    *cost = (*cost - 1.0) + std::max(0.05, std::min(1.0, fraction));
    result.runtime_seconds = policy_.timeout_seconds;
    result.censored = true;
    result.failure_reason = StrFormat(
        "killed by timeout watchdog after %.0f s", policy_.timeout_seconds);
    ++timed_out_runs_;
    *exclude_from_best = true;
    return result;
  }

  // MAD outlier re-measurement: a completed run far outside the history's
  // runtime distribution is either a straggler, a corrupted measurement, or
  // a genuinely extreme configuration — re-running distinguishes them, and
  // committing the median measurement is right in every case.
  if (policy_.outlier_mad_threshold > 0.0 && !result.failed &&
      OutlierScore(result.runtime_seconds) > policy_.outlier_mad_threshold) {
    std::vector<ExecutionResult> measurements;
    measurements.push_back(result);
    for (size_t i = 0; i < policy_.remeasure_runs; ++i) {
      if (used_ + reserved + (*cost - 1.0) + 1.0 >
          budget_max_ + kBudgetEpsilon) {
        break;  // keep what we can afford
      }
      auto again = system_->Execute(config, workload_);
      if (!again.ok()) break;
      *cost += 1.0;
      ++remeasured_runs_;
      measurements.push_back(RetryTransient(config, workload_,
                                            *std::move(again), 1.0, reserved,
                                            cost));
    }
    if (measurements.size() > 1) {
      std::sort(measurements.begin(), measurements.end(),
                [](const ExecutionResult& a, const ExecutionResult& b) {
                  return a.runtime_seconds < b.runtime_seconds;
                });
      result = measurements[measurements.size() / 2];
    }
  }
  return result;
}

Status Evaluator::RefuseBudget() {
  budget_refused_ = true;
  return Status::ResourceExhausted(
      StrFormat("tuning budget exhausted (%.1f/%.1f runs)", used_,
                budget_max_));
}

Result<double> Evaluator::Evaluate(const Configuration& config) {
  if (used_ + 1.0 > budget_max_ + kBudgetEpsilon) {
    return RefuseBudget();
  }
  ATUNE_RETURN_IF_ERROR(space().ValidateConfiguration(config));
  ATUNE_ASSIGN_OR_RETURN(ExecutionResult result,
                         system_->Execute(config, workload_));
  ++round_;
  double cost = 1.0;
  bool exclude = false;
  result = ApplyRobustnessPolicy(config, std::move(result), /*reserved=*/1.0,
                                 &cost, &exclude);
  CommitTrial(config, result, cost, exclude);
  return history_.back().objective;
}

ThreadPool* Evaluator::thread_pool(size_t min_threads) {
  min_threads = std::max<size_t>(min_threads, 1);
  if (pool_ == nullptr || pool_->num_threads() < min_threads) {
    pool_ = std::make_unique<ThreadPool>(min_threads);
  }
  return pool_.get();
}

Result<std::vector<double>> Evaluator::EvaluateBatch(
    const std::vector<Configuration>& configs, size_t parallelism) {
  if (configs.empty()) return std::vector<double>();
  for (const Configuration& config : configs) {
    ATUNE_RETURN_IF_ERROR(space().ValidateConfiguration(config));
  }
  // Deterministic mid-batch truncation: only whole runs that still fit.
  size_t affordable =
      static_cast<size_t>(std::max(0.0, Remaining() + kBudgetEpsilon));
  if (affordable == 0) {
    return RefuseBudget();
  }
  size_t k = std::min(configs.size(), affordable);
  ++round_;  // the whole batch is one wall-clock round

  std::vector<Result<ExecutionResult>> results;
  results.reserve(k);
  std::unique_ptr<TunableSystem> probe =
      parallelism > 1 ? system_->Clone(0) : nullptr;
  if (probe == nullptr) {
    // Serial fallback (parallelism 1 or non-clonable system): identical
    // semantics, executed in submission order on the parent.
    for (size_t i = 0; i < k; ++i) {
      results.push_back(system_->Execute(configs[i], workload_));
    }
  } else {
    // Fan out over clones. Clone i replays exactly the noise the parent
    // would draw on its i-th execution from now, so the committed history
    // is bit-identical to the serial loop above.
    std::vector<std::unique_ptr<TunableSystem>> clones;
    clones.reserve(k);
    clones.push_back(std::move(probe));  // probe == Clone(0); reuse it
    for (size_t i = 1; i < k; ++i) clones.push_back(system_->Clone(i));
    ThreadPool* pool = thread_pool(parallelism);
    std::vector<std::future<Result<ExecutionResult>>> futures;
    futures.reserve(k);
    for (size_t i = 0; i < k; ++i) {
      TunableSystem* clone = clones[i].get();
      const Configuration* config = &configs[i];
      futures.push_back(pool->Submit([clone, config, this]() {
        return clone->Execute(*config, workload_);
      }));
    }
    for (size_t i = 0; i < k; ++i) results.push_back(futures[i].get());
    system_->SkipRuns(k);
  }

  // Commit in submission order; an execution error (impossible for
  // validated configs on the built-in simulators, but systems may fail)
  // aborts the batch after committing the preceding trials. Robustness
  // repairs (transient retries, outlier re-measurement) re-execute on the
  // parent — realigned by SkipRuns above — so a faulty wave behaves like a
  // parallel wave followed by a serial repair phase; with nothing to repair
  // this is bit-identical to committing the wave directly.
  std::vector<double> objectives;
  objectives.reserve(k);
  double reserved = static_cast<double>(k);  // base cost of uncommitted lanes
  for (size_t i = 0; i < k; ++i) {
    if (!results[i].ok()) return results[i].status();
    double cost = 1.0;
    bool exclude = false;
    ExecutionResult repaired = ApplyRobustnessPolicy(
        configs[i], *std::move(results[i]), reserved, &cost, &exclude);
    CommitTrial(configs[i], repaired, cost, exclude);
    reserved -= 1.0;
    objectives.push_back(history_.back().objective);
  }
  return objectives;
}

Result<double> Evaluator::EvaluateWithEarlyAbort(const Configuration& config,
                                                 double abort_at_seconds,
                                                 bool* aborted) {
  if (aborted != nullptr) *aborted = false;
  if (abort_at_seconds <= 0.0) {
    return Status::InvalidArgument(
        "EvaluateWithEarlyAbort: abort threshold must be positive");
  }
  // Conservative gate: a run that completes under the threshold costs a
  // full unit, so require one up front (never overspends).
  if (used_ + 1.0 > budget_max_ + kBudgetEpsilon) {
    return RefuseBudget();
  }
  ATUNE_RETURN_IF_ERROR(space().ValidateConfiguration(config));
  ATUNE_ASSIGN_OR_RETURN(ExecutionResult result,
                         system_->Execute(config, workload_));
  ++round_;
  double cost = 1.0;
  result = RetryTransient(config, workload_, std::move(result), 1.0,
                          /*reserved=*/1.0, &cost);
  // The watchdog, when armed and tighter than the caller's threshold, kills
  // the run first — a hung run never gets to burn abort_at_seconds.
  double censor_at = abort_at_seconds;
  bool watchdog = false;
  if (policy_.timeout_seconds > 0.0 &&
      policy_.timeout_seconds < abort_at_seconds) {
    censor_at = policy_.timeout_seconds;
    watchdog = true;
  }
  if (result.runtime_seconds > censor_at && !result.failed) {
    // Censor: we only watched the run for censor_at of wall clock.
    double fraction = std::min(1.0, censor_at / result.runtime_seconds);
    cost = (cost - 1.0) + std::max(0.05, fraction);  // setup isn't free
    if (aborted != nullptr) *aborted = true;
    if (watchdog) ++timed_out_runs_;
    result.censored = true;
    result.failure_reason = watchdog
                                ? StrFormat("killed by timeout watchdog "
                                            "after %.0f s", censor_at)
                                : "aborted by early-abort threshold";
    result.runtime_seconds = censor_at;
    // The objective is a *lower bound*; keep it clearly worse than any
    // incumbent below the threshold and exclude it from best-tracking
    // (its objective is not a completed measurement).
    CommitTrial(config, result, cost, /*exclude_from_best=*/true);
    return history_.back().objective;
  }
  CommitTrial(config, result, cost);
  return history_.back().objective;
}

Result<double> Evaluator::EvaluateScaled(const Configuration& config,
                                         double fraction) {
  if (fraction <= 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("EvaluateScaled: fraction must be in (0,1]");
  }
  if (used_ + fraction > budget_max_ + kBudgetEpsilon) {
    return RefuseBudget();
  }
  ATUNE_RETURN_IF_ERROR(space().ValidateConfiguration(config));
  Workload sample = workload_;
  sample.scale *= fraction;
  ATUNE_ASSIGN_OR_RETURN(ExecutionResult result,
                         system_->Execute(config, sample));
  ++round_;
  // Transient faults hit cheap sample runs too; a retry costs the same
  // fraction of the (scaled-down) run it re-executes.
  double cost = fraction;
  result = RetryTransient(config, sample, std::move(result), fraction,
                          /*reserved=*/fraction, &cost);
  CommitTrial(config, result, cost, /*exclude_from_best=*/true);
  return history_.back().objective;
}

Result<ExecutionResult> Evaluator::EvaluateUnit(const Configuration& config,
                                                size_t unit_index) {
  IterativeSystem* iterative = system_->AsIterative();
  if (iterative == nullptr) {
    return Status::FailedPrecondition(
        StrFormat("system '%s' does not support unit-level execution",
                  system_->name().c_str()));
  }
  size_t units = std::max<size_t>(iterative->NumUnits(workload_), 1);
  double cost = 1.0 / static_cast<double>(units);
  if (used_ + cost > budget_max_ + kBudgetEpsilon) {
    return RefuseBudget();
  }
  ATUNE_RETURN_IF_ERROR(space().ValidateConfiguration(config));
  ATUNE_ASSIGN_OR_RETURN(
      ExecutionResult result,
      iterative->ExecuteUnit(config, workload_, unit_index));
  used_ += cost;
  return result;
}

void Evaluator::RecordCompositeTrial(const Configuration& config,
                                     const ExecutionResult& aggregate,
                                     double cost) {
  ++round_;
  // The budget was already charged by the unit-level evaluations; commit
  // with zero cost, then stamp the trial's nominal cost for reporting.
  CommitTrial(config, aggregate, 0.0);
  history_.back().cost = cost;
}

const Trial* Evaluator::best() const {
  if (!has_best_) return nullptr;
  return &history_[best_index_];
}

}  // namespace atune
