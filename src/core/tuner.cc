#include "core/tuner.h"

#include <algorithm>

#include "common/string_util.h"

namespace atune {

const char* TunerCategoryToString(TunerCategory category) {
  switch (category) {
    case TunerCategory::kRuleBased:
      return "rule-based";
    case TunerCategory::kCostModeling:
      return "cost-modeling";
    case TunerCategory::kSimulationBased:
      return "simulation-based";
    case TunerCategory::kExperimentDriven:
      return "experiment-driven";
    case TunerCategory::kMachineLearning:
      return "machine-learning";
    case TunerCategory::kAdaptive:
      return "adaptive";
  }
  return "?";
}

Evaluator::Evaluator(TunableSystem* system, Workload workload,
                     TuningBudget budget, double failure_penalty)
    : system_(system),
      workload_(std::move(workload)),
      budget_(budget),
      budget_max_(static_cast<double>(budget.max_evaluations)),
      failure_penalty_(failure_penalty) {}

double Evaluator::ObjectiveOf(const Configuration& config,
                              const ExecutionResult& result) const {
  if (objective_) return objective_(config, result);
  double obj = result.runtime_seconds;
  if (result.failed) obj *= failure_penalty_;
  return obj;
}

void Evaluator::CommitTrial(const Configuration& config,
                            const ExecutionResult& result, double cost) {
  used_ += cost;
  Trial trial;
  trial.config = config;
  trial.result = result;
  trial.objective = ObjectiveOf(config, result);
  trial.cost = cost;
  trial.round = round_;
  history_.push_back(std::move(trial));
  if (!has_best_ ||
      history_.back().objective < history_[best_index_].objective) {
    best_index_ = history_.size() - 1;
    has_best_ = true;
  }
}

Result<double> Evaluator::Evaluate(const Configuration& config) {
  if (used_ + 1.0 > budget_max_ + 1e-9) {
    return Status::ResourceExhausted(
        StrFormat("tuning budget exhausted (%.1f/%.1f runs)", used_,
                  budget_max_));
  }
  ATUNE_RETURN_IF_ERROR(space().ValidateConfiguration(config));
  ATUNE_ASSIGN_OR_RETURN(ExecutionResult result,
                         system_->Execute(config, workload_));
  ++round_;
  CommitTrial(config, result, 1.0);
  return history_.back().objective;
}

ThreadPool* Evaluator::thread_pool(size_t min_threads) {
  min_threads = std::max<size_t>(min_threads, 1);
  if (pool_ == nullptr || pool_->num_threads() < min_threads) {
    pool_ = std::make_unique<ThreadPool>(min_threads);
  }
  return pool_.get();
}

Result<std::vector<double>> Evaluator::EvaluateBatch(
    const std::vector<Configuration>& configs, size_t parallelism) {
  if (configs.empty()) return std::vector<double>();
  for (const Configuration& config : configs) {
    ATUNE_RETURN_IF_ERROR(space().ValidateConfiguration(config));
  }
  // Deterministic mid-batch truncation: only whole runs that still fit.
  size_t affordable =
      static_cast<size_t>(std::max(0.0, Remaining() + 1e-9));
  if (affordable == 0) {
    return Status::ResourceExhausted(
        StrFormat("tuning budget exhausted (%.1f/%.1f runs)", used_,
                  budget_max_));
  }
  size_t k = std::min(configs.size(), affordable);
  ++round_;  // the whole batch is one wall-clock round

  std::vector<Result<ExecutionResult>> results;
  results.reserve(k);
  std::unique_ptr<TunableSystem> probe =
      parallelism > 1 ? system_->Clone(0) : nullptr;
  if (probe == nullptr) {
    // Serial fallback (parallelism 1 or non-clonable system): identical
    // semantics, executed in submission order on the parent.
    for (size_t i = 0; i < k; ++i) {
      results.push_back(system_->Execute(configs[i], workload_));
    }
  } else {
    // Fan out over clones. Clone i replays exactly the noise the parent
    // would draw on its i-th execution from now, so the committed history
    // is bit-identical to the serial loop above.
    std::vector<std::unique_ptr<TunableSystem>> clones;
    clones.reserve(k);
    clones.push_back(std::move(probe));  // probe == Clone(0); reuse it
    for (size_t i = 1; i < k; ++i) clones.push_back(system_->Clone(i));
    ThreadPool* pool = thread_pool(parallelism);
    std::vector<std::future<Result<ExecutionResult>>> futures;
    futures.reserve(k);
    for (size_t i = 0; i < k; ++i) {
      TunableSystem* clone = clones[i].get();
      const Configuration* config = &configs[i];
      futures.push_back(pool->Submit([clone, config, this]() {
        return clone->Execute(*config, workload_);
      }));
    }
    for (size_t i = 0; i < k; ++i) results.push_back(futures[i].get());
    system_->SkipRuns(k);
  }

  // Commit in submission order; an execution error (impossible for
  // validated configs on the built-in simulators, but systems may fail)
  // aborts the batch after committing the preceding trials.
  std::vector<double> objectives;
  objectives.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    if (!results[i].ok()) return results[i].status();
    CommitTrial(configs[i], *results[i], 1.0);
    objectives.push_back(history_.back().objective);
  }
  return objectives;
}

Result<double> Evaluator::EvaluateWithEarlyAbort(const Configuration& config,
                                                 double abort_at_seconds,
                                                 bool* aborted) {
  if (aborted != nullptr) *aborted = false;
  if (abort_at_seconds <= 0.0) {
    return Status::InvalidArgument(
        "EvaluateWithEarlyAbort: abort threshold must be positive");
  }
  // Conservative gate: a run that completes under the threshold costs a
  // full unit, so require one up front (never overspends).
  if (used_ + 1.0 > budget_max_ + 1e-9) {
    return Status::ResourceExhausted("tuning budget exhausted");
  }
  ATUNE_RETURN_IF_ERROR(space().ValidateConfiguration(config));
  ATUNE_ASSIGN_OR_RETURN(ExecutionResult result,
                         system_->Execute(config, workload_));
  ++round_;
  if (result.runtime_seconds > abort_at_seconds && !result.failed) {
    // Censor: we only watched the run for abort_at_seconds of wall clock.
    double fraction =
        std::min(1.0, abort_at_seconds / result.runtime_seconds);
    double cost = std::max(0.05, fraction);  // setup isn't free either
    used_ += cost;
    if (aborted != nullptr) *aborted = true;
    result.failure_reason = "aborted by early-abort threshold";
    result.runtime_seconds = abort_at_seconds;
    Trial trial;
    trial.config = config;
    trial.result = result;
    // The objective is a *lower bound*; keep it clearly worse than any
    // incumbent below the threshold and exclude it from best-tracking via
    // the scaled flag (its objective is not a completed measurement).
    trial.objective = ObjectiveOf(config, result);
    trial.cost = cost;
    trial.scaled = true;
    trial.round = round_;
    history_.push_back(std::move(trial));
    return history_.back().objective;
  }
  CommitTrial(config, result, 1.0);
  return history_.back().objective;
}

Result<double> Evaluator::EvaluateScaled(const Configuration& config,
                                         double fraction) {
  if (fraction <= 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("EvaluateScaled: fraction must be in (0,1]");
  }
  if (used_ + fraction > budget_max_ + 1e-9) {
    return Status::ResourceExhausted("tuning budget exhausted");
  }
  ATUNE_RETURN_IF_ERROR(space().ValidateConfiguration(config));
  Workload sample = workload_;
  sample.scale *= fraction;
  ATUNE_ASSIGN_OR_RETURN(ExecutionResult result,
                         system_->Execute(config, sample));
  ++round_;
  used_ += fraction;
  Trial trial;
  trial.config = config;
  trial.result = result;
  trial.objective = ObjectiveOf(config, result);
  trial.cost = fraction;
  trial.scaled = true;
  trial.round = round_;
  history_.push_back(std::move(trial));
  return history_.back().objective;
}

Result<ExecutionResult> Evaluator::EvaluateUnit(const Configuration& config,
                                                size_t unit_index) {
  auto* iterative = dynamic_cast<IterativeSystem*>(system_);
  if (iterative == nullptr) {
    return Status::FailedPrecondition(
        StrFormat("system '%s' does not support unit-level execution",
                  system_->name().c_str()));
  }
  size_t units = std::max<size_t>(iterative->NumUnits(workload_), 1);
  double cost = 1.0 / static_cast<double>(units);
  if (used_ + cost > budget_max_ + 1e-9) {
    return Status::ResourceExhausted("tuning budget exhausted");
  }
  ATUNE_RETURN_IF_ERROR(space().ValidateConfiguration(config));
  ATUNE_ASSIGN_OR_RETURN(
      ExecutionResult result,
      iterative->ExecuteUnit(config, workload_, unit_index));
  used_ += cost;
  return result;
}

void Evaluator::RecordCompositeTrial(const Configuration& config,
                                     const ExecutionResult& aggregate,
                                     double cost) {
  ++round_;
  // The budget was already charged by the unit-level evaluations; commit
  // with zero cost, then stamp the trial's nominal cost for reporting.
  CommitTrial(config, aggregate, 0.0);
  history_.back().cost = cost;
}

const Trial* Evaluator::best() const {
  if (!has_best_) return nullptr;
  return &history_[best_index_];
}

}  // namespace atune
