#include "core/drift_detector.h"

#include <algorithm>
#include <cmath>

namespace atune {

DriftDetector::DriftDetector(DriftDetectorOptions options)
    : options_(options) {
  if (options_.min_samples == 0) options_.min_samples = 1;
}

bool DriftDetector::Observe(double objective) {
  ++observed_;
  const double y = std::log(std::max(objective, options_.floor));
  ++window_count_;
  if (window_count_ == 1) {
    mean_ = y;
    ph_ = 0.0;
    return false;
  }
  // Accumulate the deviation against the mean of the *previous*
  // observations (the classical PH recursion), then fold y into the mean.
  ph_ = std::max(0.0, ph_ + (y - mean_ - options_.delta));
  mean_ += (y - mean_) / static_cast<double>(window_count_);
  if (window_count_ >= options_.min_samples && ph_ > options_.threshold) {
    ++firings_;
    Reset();
    return true;
  }
  return false;
}

void DriftDetector::Reset() {
  window_count_ = 0;
  mean_ = 0.0;
  ph_ = 0.0;
}

}  // namespace atune
