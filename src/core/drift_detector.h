#ifndef ATUNE_CORE_DRIFT_DETECTOR_H_
#define ATUNE_CORE_DRIFT_DETECTOR_H_

#include <cstddef>

namespace atune {

/// Knobs for the Page–Hinkley drift detector. Defaults are tuned for the
/// serve-loop objective streams of AdaptiveRetuneTuner: insensitive to
/// simulator measurement noise, firing within a handful of observations of
/// a 1.5x+ regime change.
struct DriftDetectorOptions {
  /// Insensitivity margin (in log-objective units): deviations below this
  /// per-observation drift magnitude never accumulate. Absorbs run-to-run
  /// measurement noise.
  double delta = 0.02;
  /// Firing threshold on the cumulative Page–Hinkley statistic.
  double threshold = 0.35;
  /// Observations required in the current window before a firing is
  /// allowed (warm-up for the running mean, and the post-firing cooldown —
  /// a firing restarts the window).
  size_t min_samples = 6;
  /// Lower clamp applied before taking logs (objectives are positive
  /// runtimes, but a custom objective could emit 0).
  double floor = 1e-12;
};

/// One-sided Page–Hinkley change detector over an objective sequence
/// (lower objective = better, so only *increases* — degradations — fire).
///
/// Determinism contract (the PR 5 circuit-breaker discipline, DESIGN.md
/// §15): the detector's entire state is a pure function of the sequence of
/// Observe() values and the options — no wall clock, no randomness, no
/// external inputs. AdaptiveRetuneTuner feeds it the committed trial
/// objectives in commit order, and journal replay re-serves exactly that
/// sequence, so a resumed session recomputes identical firing rounds with
/// no new journal record types.
///
/// The statistic runs on log-objectives, making the threshold
/// scale-invariant: a 2x slowdown accumulates the same evidence whether
/// runs take 40 seconds or 4000.
class DriftDetector {
 public:
  explicit DriftDetector(DriftDetectorOptions options = DriftDetectorOptions());

  /// Feeds the next objective (commit order). Returns true when drift fires
  /// at this observation; a firing restarts the detection window, so the
  /// detector never fires twice on the same evidence.
  bool Observe(double objective);

  /// Restarts the detection window (mean, statistic, sample count). The
  /// lifetime firing/observation counters are preserved.
  void Reset();

  /// Observations ever fed (across resets).
  size_t observed() const { return observed_; }
  /// Observations in the current window.
  size_t window_count() const { return window_count_; }
  /// Firings ever (lifetime).
  size_t firings() const { return firings_; }
  /// Current cumulative Page–Hinkley statistic.
  double statistic() const { return ph_; }
  const DriftDetectorOptions& options() const { return options_; }

 private:
  DriftDetectorOptions options_;
  size_t observed_ = 0;
  size_t window_count_ = 0;
  double mean_ = 0.0;
  double ph_ = 0.0;
  size_t firings_ = 0;
};

}  // namespace atune

#endif  // ATUNE_CORE_DRIFT_DETECTOR_H_
