#include "core/parameter_space.h"

#include <algorithm>

#include "common/string_util.h"

namespace atune {

Status ParameterSpace::Add(ParameterDef def) {
  if (index_.find(def.name()) != index_.end()) {
    return Status::InvalidArgument(
        StrFormat("duplicate parameter '%s'", def.name().c_str()));
  }
  index_[def.name()] = params_.size();
  params_.push_back(std::move(def));
  return Status::OK();
}

Result<const ParameterDef*> ParameterSpace::Find(
    const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound(
        StrFormat("unknown parameter '%s'", name.c_str()));
  }
  return &params_[it->second];
}

Result<size_t> ParameterSpace::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound(
        StrFormat("unknown parameter '%s'", name.c_str()));
  }
  return it->second;
}

Status ParameterSpace::ValidateConfiguration(
    const Configuration& config) const {
  for (const ParameterDef& def : params_) {
    ATUNE_ASSIGN_OR_RETURN(ParamValue v, config.Get(def.name()));
    ATUNE_RETURN_IF_ERROR(def.Validate(v));
  }
  for (const auto& [name, value] : config.values()) {
    (void)value;
    if (index_.find(name) == index_.end()) {
      return Status::InvalidArgument(
          StrFormat("configuration sets unknown parameter '%s'", name.c_str()));
    }
  }
  return Status::OK();
}

Configuration ParameterSpace::DefaultConfiguration() const {
  Configuration config;
  for (const ParameterDef& def : params_) {
    config.Set(def.name(), def.default_value());
  }
  return config;
}

Configuration ParameterSpace::RandomConfiguration(Rng* rng) const {
  Configuration config;
  for (const ParameterDef& def : params_) {
    config.Set(def.name(), def.Denormalize(rng->Uniform()));
  }
  return config;
}

Vec ParameterSpace::ToUnitVector(const Configuration& config) const {
  Vec u(params_.size(), 0.0);
  for (size_t i = 0; i < params_.size(); ++i) {
    auto v = config.Get(params_[i].name());
    u[i] = params_[i].Normalize(v.ok() ? *v : params_[i].default_value());
  }
  return u;
}

Configuration ParameterSpace::FromUnitVector(const Vec& u) const {
  Configuration config;
  for (size_t i = 0; i < params_.size(); ++i) {
    double x = i < u.size() ? u[i] : 0.5;
    config.Set(params_[i].name(), params_[i].Denormalize(x));
  }
  return config;
}

Configuration ParameterSpace::Neighbor(const Configuration& config,
                                       double sigma, Rng* rng) const {
  Vec u = ToUnitVector(config);
  for (double& x : u) {
    x = std::clamp(x + rng->Normal(0.0, sigma), 0.0, 1.0);
  }
  return FromUnitVector(u);
}

Result<ParameterSpace> ParameterSpace::Subspace(
    const std::vector<std::string>& names) const {
  ParameterSpace sub;
  for (const std::string& name : names) {
    ATUNE_ASSIGN_OR_RETURN(const ParameterDef* def, Find(name));
    ATUNE_RETURN_IF_ERROR(sub.Add(*def));
  }
  return sub;
}

}  // namespace atune
