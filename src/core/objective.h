#ifndef ATUNE_CORE_OBJECTIVE_H_
#define ATUNE_CORE_OBJECTIVE_H_

#include <functional>
#include <string>

#include "core/configuration.h"
#include "core/system.h"

namespace atune {

/// A tuning objective maps one run's (configuration, result) to a scalar to
/// *minimize*. The default objective is penalized runtime; the paper's open
/// challenges (§2.5) motivate richer ones: dollar cost in the cloud,
/// latency-SLA compliance for real-time analytics.
using ObjectiveFunction =
    std::function<double(const Configuration&, const ExecutionResult&)>;

/// Cloud pricing for cost-aware tuning (§2.5 challenge 2: "decision making
/// in resource provisioning"). Billing follows the common on-demand model:
/// you pay for the resources you *reserve* for the duration of the run.
struct CloudPricing {
  /// $ per vCPU-hour and per GB-hour of memory reserved.
  double usd_per_core_hour = 0.04;
  double usd_per_gb_hour = 0.005;
  /// Fixed $ per run (job submission, storage ops).
  double usd_per_run = 0.01;
};

/// Dollar cost of one run given the resources the configuration reserves.
/// Resource extraction is system-aware: Spark configs reserve
/// executors*cores and executors*memory; other systems reserve the whole
/// cluster (descriptors) for the run's duration.
double ComputeRunCostUsd(const CloudPricing& pricing,
                         const std::string& system_name,
                         const std::map<std::string, double>& descriptors,
                         const Configuration& config,
                         const ExecutionResult& result);

/// Objective: minimize dollars, with runtime capped by `deadline_s` — runs
/// missing the deadline (or failing) pay a steep penalty, so the tuner
/// finds the cheapest allocation that still meets the deadline.
ObjectiveFunction MakeCloudCostObjective(
    CloudPricing pricing, const std::string& system_name,
    std::map<std::string, double> descriptors, double deadline_s);

/// Objective for streaming/real-time workloads (§2.5 challenge 3): minimize
/// latency-SLA violations first, resource footprint second. Uses the
/// system's "sla_violation_ratio" metric when present, falling back to
/// runtime. `footprint_weight` trades violation headroom against cost.
ObjectiveFunction MakeLatencySlaObjective(
    const std::string& system_name,
    std::map<std::string, double> descriptors,
    double footprint_weight = 0.1);

}  // namespace atune

#endif  // ATUNE_CORE_OBJECTIVE_H_
