#ifndef ATUNE_CORE_COMPARATOR_H_
#define ATUNE_CORE_COMPARATOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/status.h"
#include "core/session.h"

namespace atune {

/// Aggregated result of running one tuner across several seeds on one
/// (system, workload) scenario.
struct ComparisonRow {
  std::string tuner_name;
  TunerCategory category = TunerCategory::kRuleBased;
  size_t seeds = 0;
  double mean_best_objective = 0.0;
  double mean_speedup = 0.0;       ///< default_objective / best_objective
  double mean_evaluations = 0.0;   ///< budget actually spent
  /// Mean budget spent until first reaching within 10% of the tuner's own
  /// final best (time-to-good-config).
  double mean_cost_to_good = 0.0;
  double mean_failed_runs = 0.0;   ///< risky exploration indicator
  /// Mean objective of the first measured trial (quality of the tuner's
  /// zero-knowledge recommendation; relevant for ad-hoc queries).
  double mean_first_trial = 0.0;
};

/// Full comparison output: per-tuner rows plus per-(tuner, seed) convergence
/// traces for plotting.
struct ComparisonReport {
  std::string scenario;
  std::vector<ComparisonRow> rows;
  /// convergence[tuner][seed] = (cost, best-so-far) pairs.
  std::vector<std::vector<std::vector<std::pair<double, double>>>> traces;

  /// Renders rows as a table (pretty ASCII).
  TableWriter ToTable() const;
};

/// Factory for fresh system instances (each seed gets its own system so that
/// simulator noise is independent across repetitions).
using SystemFactory = std::function<std::unique_ptr<TunableSystem>(uint64_t seed)>;

/// Runs every (tuner factory) across `seeds` repetitions on the scenario and
/// aggregates. This is the harness behind bench_table1_categories.
Result<ComparisonReport> CompareTuners(
    const std::vector<std::pair<std::string, std::function<std::unique_ptr<Tuner>()>>>&
        tuners,
    const SystemFactory& make_system, const Workload& workload,
    const TuningBudget& budget, size_t seeds, std::string scenario_name);

}  // namespace atune

#endif  // ATUNE_CORE_COMPARATOR_H_
