#ifndef ATUNE_CORE_CONFIGURATION_H_
#define ATUNE_CORE_CONFIGURATION_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/parameter.h"

namespace atune {

/// A full assignment of values to configuration parameters — what a DBA
/// would put in postgresql.conf / mapred-site.xml / spark-defaults.conf.
///
/// Configuration is a value type (copyable, comparable) keyed by parameter
/// name. Validation against a ParameterSpace is the space's job.
class Configuration {
 public:
  Configuration() = default;

  void Set(const std::string& name, ParamValue value) {
    values_[name] = std::move(value);
  }
  void SetInt(const std::string& name, int64_t v) { values_[name] = v; }
  void SetDouble(const std::string& name, double v) { values_[name] = v; }
  void SetBool(const std::string& name, bool v) { values_[name] = v; }
  void SetString(const std::string& name, std::string v) {
    values_[name] = std::move(v);
  }

  bool Has(const std::string& name) const {
    return values_.find(name) != values_.end();
  }

  Result<ParamValue> Get(const std::string& name) const;

  /// Typed getters; numeric ones coerce between int64 and double so model
  /// code can read any numeric knob as double.
  Result<int64_t> GetInt(const std::string& name) const;
  Result<double> GetDouble(const std::string& name) const;
  Result<bool> GetBool(const std::string& name) const;
  Result<std::string> GetString(const std::string& name) const;

  /// Convenience for simulator code on already-validated configs: returns
  /// the value or aborts (debug) / returns fallback (release) when missing.
  int64_t IntOr(const std::string& name, int64_t fallback) const;
  double DoubleOr(const std::string& name, double fallback) const;
  bool BoolOr(const std::string& name, bool fallback) const;
  std::string StringOr(const std::string& name, std::string fallback) const;

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  const std::map<std::string, ParamValue>& values() const { return values_; }

  /// Names whose values differ between the two configurations (union of
  /// keys; missing-on-one-side counts as different).
  static std::vector<std::string> Diff(const Configuration& a,
                                       const Configuration& b);

  /// "name1=v1 name2=v2 ..." (sorted by name).
  std::string ToString() const;

  bool operator==(const Configuration& other) const {
    return values_ == other.values_;
  }

 private:
  std::map<std::string, ParamValue> values_;
};

}  // namespace atune

#endif  // ATUNE_CORE_CONFIGURATION_H_
