#ifndef ATUNE_CORE_PARAMETER_H_
#define ATUNE_CORE_PARAMETER_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace atune {

/// The value of one configuration parameter.
using ParamValue = std::variant<int64_t, double, bool, std::string>;

/// Parameter value domains.
enum class ParamType {
  kInt,          ///< integer range [min_int, max_int]
  kDouble,       ///< real range [min_double, max_double]
  kBool,         ///< true/false
  kCategorical,  ///< one of a fixed set of strings
};

const char* ParamTypeToString(ParamType type);

/// Renders a ParamValue as text ("64", "0.75", "true", "snappy").
std::string ParamValueToString(const ParamValue& value);

/// Definition of one tunable configuration parameter: its domain, default,
/// and normalization behavior. Mirrors what a DBMS/Hadoop/Spark config page
/// documents for a knob.
class ParameterDef {
 public:
  /// Integer-valued parameter in [min, max].
  static ParameterDef Int(std::string name, int64_t min, int64_t max,
                          int64_t default_value, std::string description = "",
                          bool log_scale = false, std::string unit = "");

  /// Real-valued parameter in [min, max].
  static ParameterDef Double(std::string name, double min, double max,
                             double default_value,
                             std::string description = "",
                             bool log_scale = false, std::string unit = "");

  /// Boolean parameter.
  static ParameterDef Bool(std::string name, bool default_value,
                           std::string description = "");

  /// Categorical parameter; default_index must be < categories.size().
  static ParameterDef Categorical(std::string name,
                                  std::vector<std::string> categories,
                                  size_t default_index,
                                  std::string description = "");

  const std::string& name() const { return name_; }
  const std::string& description() const { return description_; }
  const std::string& unit() const { return unit_; }
  ParamType type() const { return type_; }
  bool log_scale() const { return log_scale_; }

  int64_t min_int() const { return min_int_; }
  int64_t max_int() const { return max_int_; }
  double min_double() const { return min_double_; }
  double max_double() const { return max_double_; }
  const std::vector<std::string>& categories() const { return categories_; }

  ParamValue default_value() const { return default_value_; }

  /// True if `value` has the right variant alternative and is in range.
  Status Validate(const ParamValue& value) const;

  /// Maps a valid value to [0, 1] (log-scaled if configured).
  /// Bool: false=0, true=1. Categorical: index/(n-1), or 0.5 if n==1.
  double Normalize(const ParamValue& value) const;

  /// Inverse of Normalize: maps u in [0,1] (clamped) to a valid value,
  /// rounding integers and snapping categories.
  ParamValue Denormalize(double u) const;

  /// Number of distinct values for discrete domains (0 for kDouble).
  size_t Cardinality() const;

 private:
  ParameterDef() = default;

  std::string name_;
  std::string description_;
  std::string unit_;
  ParamType type_ = ParamType::kDouble;
  bool log_scale_ = false;
  int64_t min_int_ = 0;
  int64_t max_int_ = 0;
  double min_double_ = 0.0;
  double max_double_ = 0.0;
  std::vector<std::string> categories_;
  ParamValue default_value_;
};

}  // namespace atune

#endif  // ATUNE_CORE_PARAMETER_H_
