#include "core/comparator.h"

#include <cmath>

#include "common/stats.h"
#include "common/string_util.h"

namespace atune {

TableWriter ComparisonReport::ToTable() const {
  TableWriter table({"tuner", "category", "speedup", "best_objective",
                     "evals_used", "cost_to_good", "failed_runs",
                     "first_trial"});
  for (const ComparisonRow& row : rows) {
    table.AddRow({row.tuner_name, TunerCategoryToString(row.category),
                  StrFormat("%.2fx", row.mean_speedup),
                  StrFormat("%.2f", row.mean_best_objective),
                  StrFormat("%.1f", row.mean_evaluations),
                  StrFormat("%.1f", row.mean_cost_to_good),
                  StrFormat("%.1f", row.mean_failed_runs),
                  StrFormat("%.2f", row.mean_first_trial)});
  }
  return table;
}

Result<ComparisonReport> CompareTuners(
    const std::vector<std::pair<std::string,
                                std::function<std::unique_ptr<Tuner>()>>>& tuners,
    const SystemFactory& make_system, const Workload& workload,
    const TuningBudget& budget, size_t seeds, std::string scenario_name) {
  if (tuners.empty() || seeds == 0) {
    return Status::InvalidArgument("CompareTuners: no tuners or seeds");
  }
  ComparisonReport report;
  report.scenario = std::move(scenario_name);
  report.traces.resize(tuners.size());

  for (size_t t = 0; t < tuners.size(); ++t) {
    RunningStats best_obj, speedup, evals, cost_to_good, failed, first_trial;
    TunerCategory category = TunerCategory::kRuleBased;
    report.traces[t].resize(seeds);
    for (size_t s = 0; s < seeds; ++s) {
      uint64_t seed = 1000 + s;
      std::unique_ptr<TunableSystem> system = make_system(seed);
      std::unique_ptr<Tuner> tuner = tuners[t].second();
      category = tuner->category();
      SessionOptions options;
      options.budget = budget;
      options.seed = seed * 7919 + t;
      auto outcome_or =
          RunTuningSession(tuner.get(), system.get(), workload, options);
      if (!outcome_or.ok() &&
          outcome_or.status().code() == StatusCode::kAllTrialsFailed) {
        // Every trial this seed failed: there is no recommendation to
        // aggregate (previously surfaced as a NaN best, skipped below), but
        // one hostile seed must not abort the whole comparison.
        continue;
      }
      ATUNE_ASSIGN_OR_RETURN(TuningOutcome outcome, std::move(outcome_or));
      if (!std::isnan(outcome.best_objective)) {
        best_obj.Add(outcome.best_objective);
        speedup.Add(outcome.speedup_over_default);
      }
      evals.Add(outcome.evaluations_used);
      failed.Add(static_cast<double>(outcome.failed_runs));
      if (!outcome.history.empty()) {
        first_trial.Add(outcome.history.front().objective);
      }
      // Cost to reach within 10% of this run's final best.
      if (!outcome.convergence.empty()) {
        double target = outcome.convergence.back() * 1.10;
        for (size_t i = 0; i < outcome.convergence.size(); ++i) {
          if (outcome.convergence[i] <= target) {
            cost_to_good.Add(outcome.convergence_cost[i]);
            break;
          }
        }
        auto& trace = report.traces[t][s];
        for (size_t i = 0; i < outcome.convergence.size(); ++i) {
          trace.emplace_back(outcome.convergence_cost[i],
                             outcome.convergence[i]);
        }
      }
    }
    ComparisonRow row;
    row.tuner_name = tuners[t].first;
    row.category = category;
    row.seeds = seeds;
    row.mean_best_objective = best_obj.mean();
    row.mean_speedup = speedup.mean();
    row.mean_evaluations = evals.mean();
    row.mean_cost_to_good = cost_to_good.mean();
    row.mean_failed_runs = failed.mean();
    row.mean_first_trial = first_trial.mean();
    report.rows.push_back(row);
  }
  return report;
}

}  // namespace atune
