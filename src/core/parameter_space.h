#ifndef ATUNE_CORE_PARAMETER_SPACE_H_
#define ATUNE_CORE_PARAMETER_SPACE_H_

#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/configuration.h"
#include "core/parameter.h"
#include "math/matrix.h"

namespace atune {

/// An ordered collection of parameter definitions: the search space a tuner
/// optimizes over. Order is stable and defines the dimensions of the unit
/// hypercube encoding used by samplers and surrogate models.
class ParameterSpace {
 public:
  ParameterSpace() = default;

  /// Adds a parameter; names must be unique.
  Status Add(ParameterDef def);

  size_t dims() const { return params_.size(); }
  const std::vector<ParameterDef>& params() const { return params_; }
  const ParameterDef& param(size_t i) const { return params_[i]; }

  /// Definition by name, or error.
  Result<const ParameterDef*> Find(const std::string& name) const;
  /// Dimension index of a parameter name, or error.
  Result<size_t> IndexOf(const std::string& name) const;

  /// A configuration that sets every parameter, exactly covering the space.
  Status ValidateConfiguration(const Configuration& config) const;

  /// Configuration with every parameter at its documented default.
  Configuration DefaultConfiguration() const;

  /// Uniform random configuration (each dimension independent).
  Configuration RandomConfiguration(Rng* rng) const;

  /// Encodes a configuration as a point in [0,1]^dims (space order).
  /// Parameters missing from the config encode as their default.
  Vec ToUnitVector(const Configuration& config) const;

  /// Decodes a unit point into a full configuration (values clamped/rounded
  /// to the domain).
  Configuration FromUnitVector(const Vec& u) const;

  /// Gaussian perturbation of `config` in unit space with the given sigma;
  /// each dimension is perturbed independently and clamped to [0,1].
  Configuration Neighbor(const Configuration& config, double sigma,
                         Rng* rng) const;

  /// Restriction of this space to the named parameters (in the given order).
  Result<ParameterSpace> Subspace(const std::vector<std::string>& names) const;

 private:
  std::vector<ParameterDef> params_;
  std::map<std::string, size_t> index_;
};

}  // namespace atune

#endif  // ATUNE_CORE_PARAMETER_SPACE_H_
