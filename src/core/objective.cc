#include "core/objective.h"

#include <algorithm>
#include <cmath>

namespace atune {

namespace {
double Desc(const std::map<std::string, double>& d, const std::string& key,
            double fallback) {
  auto it = d.find(key);
  return it == d.end() ? fallback : it->second;
}
}  // namespace

double ComputeRunCostUsd(const CloudPricing& pricing,
                         const std::string& system_name,
                         const std::map<std::string, double>& descriptors,
                         const Configuration& config,
                         const ExecutionResult& result) {
  double cores, memory_gb;
  if (system_name == "simulated-spark") {
    double executors =
        static_cast<double>(config.IntOr("num_executors", 2));
    cores = executors * static_cast<double>(config.IntOr("executor_cores", 1));
    memory_gb = executors *
                static_cast<double>(config.IntOr("executor_memory_mb", 1024)) /
                1024.0;
  } else {
    // Non-elastic systems reserve the whole cluster for the run.
    cores = Desc(descriptors, "total_cores", 8.0);
    memory_gb = Desc(descriptors, "total_ram_mb", 16384.0) / 1024.0;
  }
  double hours = result.runtime_seconds / 3600.0;
  return pricing.usd_per_run + hours * (cores * pricing.usd_per_core_hour +
                                        memory_gb * pricing.usd_per_gb_hour);
}

ObjectiveFunction MakeCloudCostObjective(
    CloudPricing pricing, const std::string& system_name,
    std::map<std::string, double> descriptors, double deadline_s) {
  return [pricing, system_name, descriptors = std::move(descriptors),
          deadline_s](const Configuration& config,
                      const ExecutionResult& result) {
    double usd =
        ComputeRunCostUsd(pricing, system_name, descriptors, config, result);
    if (result.failed) return usd * 100.0;
    if (result.runtime_seconds > deadline_s) {
      // Deadline misses cost proportionally to how badly they miss.
      usd *= 10.0 * (result.runtime_seconds / deadline_s);
    }
    return usd;
  };
}

ObjectiveFunction MakeLatencySlaObjective(
    const std::string& system_name,
    std::map<std::string, double> descriptors, double footprint_weight) {
  return [system_name, descriptors = std::move(descriptors),
          footprint_weight](const Configuration& config,
                            const ExecutionResult& result) {
    if (result.failed) return 1000.0;
    double violation = result.MetricOr("sla_violation_ratio", -1.0);
    if (violation < 0.0) {
      // System doesn't report SLA compliance: fall back to runtime.
      return result.runtime_seconds;
    }
    // Resource footprint as a fraction of the cluster, so over-provisioned
    // "always meets SLA" configs still differentiate.
    double footprint = 1.0;
    if (system_name == "simulated-spark") {
      double cores =
          static_cast<double>(config.IntOr("num_executors", 2) *
                              config.IntOr("executor_cores", 1));
      double total = std::max(1.0, [&] {
        auto it = descriptors.find("total_cores");
        return it == descriptors.end() ? 32.0 : it->second;
      }());
      footprint = cores / total;
    }
    return violation * 100.0 + footprint_weight * footprint;
  };
}

}  // namespace atune
