#ifndef ATUNE_CORE_JOURNAL_H_
#define ATUNE_CORE_JOURNAL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/io_env.h"
#include "common/status.h"
#include "core/configuration.h"
#include "core/system.h"

namespace atune {

/// Fingerprint of the session a journal belongs to. Written once at journal
/// creation; checked on resume so a journal is never replayed into a session
/// with different parameters (which would silently diverge). Custom
/// objective functions cannot be fingerprinted — callers must pass the same
/// objective on resume (see DESIGN.md §8).
struct JournalHeader {
  std::string tuner_name;
  std::string system_name;
  std::string workload_name;
  std::string workload_kind;
  double workload_scale = 1.0;
  std::map<std::string, double> workload_properties;
  uint64_t seed = 0;
  uint64_t max_evaluations = 0;
  double failure_penalty = 0.0;
  /// RobustnessPolicy fields, spelled out so core/journal.h does not depend
  /// on core/tuner.h (which depends on this header).
  uint64_t max_retries = 0;
  double retry_cost_fraction = 0.0;
  double timeout_seconds = 0.0;
  double outlier_mad_threshold = 0.0;
  uint64_t outlier_min_history = 0;
  uint64_t remeasure_runs = 0;

  bool operator==(const JournalHeader& other) const;
  bool operator!=(const JournalHeader& other) const {
    return !(*this == other);
  }

  /// Human-readable list of fields that differ (for mismatch diagnostics).
  std::string DiffString(const JournalHeader& other) const;
};

/// One committed observation. kTrial mirrors a Trial the Evaluator appended
/// to its history (serial evaluation, one lane of a batch, a scaled or
/// censored run, or an adaptive tuner's composite trial); kUnit mirrors a
/// unit-level execution (Evaluator::EvaluateUnit), which charges budget and
/// feeds the tuner a measurement but creates no history entry.
enum class JournalRecordKind : uint8_t { kTrial = 1, kUnit = 2 };

struct JournalRecord {
  JournalRecordKind kind = JournalRecordKind::kTrial;
  /// Dense 0-based record index. Recovery stops at the first gap or
  /// duplicate, so a damaged tail can never smuggle records out of order.
  uint64_t seq = 0;
  Configuration config;
  ExecutionResult result;
  double objective = 0.0;
  /// Trial::cost for kTrial (the trial's reported cost); the budget charge
  /// for kUnit.
  double cost = 0.0;
  bool scaled = false;  ///< Trial::scaled (excluded from best-tracking)
  uint64_t round = 0;
  /// Lanes in the EvaluateBatch call this trial belongs to (1 for serial
  /// evaluations) and this trial's lane index. Recovery drops a trailing
  /// *incomplete* batch — its lanes re-execute on resume — so replay always
  /// hands a batch-aware tuner either the whole wave or none of it.
  uint64_t batch_size = 1;
  uint64_t lane = 0;
  uint64_t unit_index = 0;  ///< kUnit only
  /// Cumulative Evaluator state after this record committed. `system_runs`
  /// is the measurement-noise cursor: the number of parent-system executions
  /// the Evaluator has charged so far. During replay the Evaluator advances
  /// a fresh system by each record's delta with SkipRuns, so both replayed
  /// trials and any off-journal runs the tuner performs directly on the
  /// system land on the same run indices — and therefore draw exactly the
  /// noise — as in the uninterrupted session.
  uint64_t system_runs = 0;
  double used = 0.0;
  uint64_t retried_runs = 0;
  uint64_t timed_out_runs = 0;
  uint64_t remeasured_runs = 0;
};

/// View-based twin of JournalRecord for the Evaluator's zero-allocation
/// commit path: the config/result a trial just committed already live in the
/// Evaluator's history, so the journal borrows them by pointer instead of
/// copying them into a JournalRecord. The pointed-to objects must outlive
/// the AppendRef call (they are read during serialization only).
struct JournalRecordRef {
  JournalRecordKind kind = JournalRecordKind::kTrial;
  uint64_t seq = 0;
  const Configuration* config = nullptr;
  const ExecutionResult* result = nullptr;
  double objective = 0.0;
  double cost = 0.0;
  bool scaled = false;
  uint64_t round = 0;
  uint64_t batch_size = 1;
  uint64_t lane = 0;
  uint64_t unit_index = 0;
  uint64_t system_runs = 0;
  double used = 0.0;
  uint64_t retried_runs = 0;
  uint64_t timed_out_runs = 0;
  uint64_t remeasured_runs = 0;
};

/// How a session reacts to a journal I/O failure (the CLI's
/// --journal-policy flag). Strict is the default: measurements must never
/// outrun the checkpoint, so the session aborts with a clean kIoError.
/// Degrade trades resumability for availability: the Evaluator detaches the
/// journal, marks it with a `<path>.degraded` sidecar (so a later resume
/// refuses the incomplete record), and the session continues un-journaled
/// with counters and a warning.
enum class JournalPolicy : uint8_t { kStrict, kDegrade };

/// Sidecar marker a degraded session leaves next to its journal;
/// ResumeTuningSession refuses to resume while it exists, and
/// TrialJournal::Create removes a stale one when starting fresh.
inline constexpr char kDegradedSidecarSuffix[] = ".degraded";

/// How OpenForResume reads the file. kAuto (the default) memory-maps when
/// the platform supports it and falls back to the streaming read on any
/// mapping failure other than the file not existing; kStreaming forces the
/// read-into-memory path; kMmap requires the mapping (errors surface). The
/// env var ATUNE_JOURNAL_NO_MMAP=1 disables mapping under kAuto. Recovery
/// semantics are identical in every mode — the bench_hotpath replay section
/// and journal_mmap_test assert record-for-record equality.
enum class JournalReplayMode { kAuto, kStreaming, kMmap };

/// Process-wide replay-mode override (testing/benchmarking).
void SetJournalReplayModeForTesting(JournalReplayMode mode);
JournalReplayMode JournalReplayModeForTesting();

/// Write-ahead trial journal: an append-only file of fsynced, checksummed
/// records, one per committed observation, written by the Evaluator before
/// the measurement reaches the tuner. Because every tuner is deterministic
/// given (seed, evaluator responses), the journal is a complete checkpoint:
/// ResumeTuningSession re-runs the tuner from scratch while the Evaluator
/// serves journaled observations instead of executing the system, then goes
/// live — no tuner needs bespoke serialization (DESIGN.md §8).
///
/// On-disk format (little-endian):
///   magic "ATUNEWAL" | version u32 | frame(header) | frame(record)*
///   frame := payload_len u32 | crc32(payload) u32 | payload
/// Recovery keeps the longest valid prefix: parsing stops at the first
/// truncated, torn, CRC-mismatched, or out-of-sequence frame, trailing
/// incomplete batches are dropped, and the file is physically truncated to
/// what survived. Anything discarded is simply re-executed on resume —
/// corruption costs wall-clock, never correctness.
class TrialJournal {
 public:
  ~TrialJournal();
  TrialJournal(const TrialJournal&) = delete;
  TrialJournal& operator=(const TrialJournal&) = delete;

  /// Creates (or truncates) `path`, writes the header, and opens the
  /// journal for appending.
  static Result<std::unique_ptr<TrialJournal>> Create(
      const std::string& path, const JournalHeader& header);

  struct Recovered {
    /// Open for appending after the recovered prefix. nullptr when the
    /// file's magic/header was unreadable (header_valid == false) — the
    /// caller should Create() a fresh journal instead.
    std::unique_ptr<TrialJournal> journal;
    bool header_valid = false;
    JournalHeader header;
    std::vector<JournalRecord> records;
    /// What recovery had to discard, for operator visibility.
    std::vector<std::string> warnings;
    /// Whether recovery parsed the file through the zero-copy mmap path
    /// (false: streaming fallback — platform without mmap, a mapping
    /// failure, or the truncation-race guard tripping).
    bool used_mmap = false;
  };

  /// Loads `path`, recovering the longest valid record prefix and
  /// truncating the file to it. NotFound if the file does not exist; any
  /// *corrupt* file recovers (possibly to zero records) rather than erroring.
  static Result<Recovered> OpenForResume(const std::string& path);

  /// Appends one record: frames it with a CRC32, writes, and (by default)
  /// fsyncs before returning, so a committed record survives any crash.
  /// `record.seq` is written verbatim — callers stamp it with next_seq().
  Status Append(const JournalRecord& record);

  /// Allocation-free Append: serializes into a reused member buffer and
  /// borrows config/result through the ref. Byte-identical on disk to
  /// Append with the equivalent JournalRecord. Not thread-safe (the
  /// Evaluator serializes commits under its own lock).
  Status AppendRef(const JournalRecordRef& record);

  /// Sequence number the next appended record should carry.
  uint64_t next_seq() const { return next_seq_; }
  const std::string& path() const { return path_; }

  /// Disables the per-append fsync (testing only; the durability guarantee
  /// requires it on).
  void set_sync(bool sync) { sync_ = sync; }

  /// Cumulative transient-error retries / short-write continuations the
  /// append path has performed (WriteFully telemetry, surfaced by the
  /// Evaluator as io.append.retries / io.append.short_writes).
  uint64_t write_retries() const { return write_retries_; }
  uint64_t short_writes() const { return short_writes_; }

 private:
  TrialJournal(std::string path, IoEnv* env, std::unique_ptr<IoFile> file,
               uint64_t next_seq, uint64_t append_offset,
               uint64_t last_frame_start)
      : path_(std::move(path)),
        env_(env),
        file_(std::move(file)),
        next_seq_(next_seq),
        append_offset_(append_offset),
        last_frame_start_(last_frame_start) {}

  /// fsyncgate recovery: after a failed write or fsync the page-cache state
  /// is unknown, so the journal closes its handle, physically truncates the
  /// file back to the last offset known durable (`append_offset_`), reads
  /// the kept tail frame back and re-verifies its CRC, then re-opens for
  /// appending. On success the on-disk journal is once again exactly the
  /// longest valid prefix; on failure the journal stays closed and every
  /// later Append returns FailedPrecondition.
  Status ReverifyTail();

  std::string path_;
  IoEnv* env_ = nullptr;       ///< captured at open; borrowed
  std::unique_ptr<IoFile> file_;
  uint64_t next_seq_ = 0;
  bool sync_ = true;
  /// End offset of the durable prefix: preamble + every frame whose append
  /// completed (write + fsync). Bytes past it are unverified.
  uint64_t append_offset_ = 0;
  /// Start offset of the final frame in the durable prefix (the header
  /// frame when no record survived) — the frame ReverifyTail re-checks.
  uint64_t last_frame_start_ = 0;
  uint64_t write_retries_ = 0;
  uint64_t short_writes_ = 0;
  /// Reused frame buffer for AppendRef: after the first append it has the
  /// high-water capacity and appends allocate nothing.
  std::string frame_buf_;
};

}  // namespace atune

#endif  // ATUNE_CORE_JOURNAL_H_
