#include "core/supervisor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/string_util.h"
#include "math/sampling.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace atune {

namespace {

/// Substitution draws are generated in waves of this size; LHS stratifies
/// within a wave, so consecutive substitutes spread across the space.
constexpr size_t kSubstituteWave = 16;

/// Repairs one proposed value against its definition. Returns the value to
/// use and sets *changed when the proposal had to be repaired (wrong type,
/// non-finite, out of range). In-range well-typed values pass through
/// untouched, so a well-behaved tuner is unaffected.
ParamValue SanitizeValue(const ParameterDef& def, const ParamValue& value,
                         bool* changed) {
  switch (def.type()) {
    case ParamType::kInt: {
      double d;
      if (std::holds_alternative<int64_t>(value)) {
        d = static_cast<double>(std::get<int64_t>(value));
      } else if (std::holds_alternative<double>(value)) {
        d = std::get<double>(value);
      } else {
        *changed = true;
        return def.default_value();
      }
      if (!std::isfinite(d)) {
        *changed = true;
        return def.default_value();
      }
      double lo = static_cast<double>(def.min_int());
      double hi = static_cast<double>(def.max_int());
      int64_t repaired =
          static_cast<int64_t>(std::llround(std::clamp(d, lo, hi)));
      if (!std::holds_alternative<int64_t>(value) ||
          repaired != std::get<int64_t>(value)) {
        *changed = true;
      }
      return repaired;
    }
    case ParamType::kDouble: {
      double d;
      if (std::holds_alternative<double>(value)) {
        d = std::get<double>(value);
      } else if (std::holds_alternative<int64_t>(value)) {
        d = static_cast<double>(std::get<int64_t>(value));
      } else {
        *changed = true;
        return def.default_value();
      }
      if (!std::isfinite(d)) {
        *changed = true;
        return def.default_value();
      }
      double repaired = std::clamp(d, def.min_double(), def.max_double());
      if (!std::holds_alternative<double>(value) ||
          repaired != std::get<double>(value)) {
        *changed = true;
      }
      return repaired;
    }
    case ParamType::kBool: {
      if (std::holds_alternative<bool>(value)) return value;
      *changed = true;
      return def.default_value();
    }
    case ParamType::kCategorical: {
      if (std::holds_alternative<std::string>(value)) {
        const std::string& s = std::get<std::string>(value);
        const auto& cats = def.categories();
        if (std::find(cats.begin(), cats.end(), s) != cats.end()) return value;
      }
      *changed = true;
      return def.default_value();
    }
  }
  *changed = true;
  return def.default_value();
}

Counter* GuardCounter(const char* name) {
  MetricsRegistry* metrics = CurrentMetrics();
  return metrics != nullptr ? metrics->GetCounter(name) : nullptr;
}

void Bump(Counter* counter) {
  if (counter != nullptr) counter->Increment();
}

}  // namespace

SupervisorGuard::SupervisorGuard(const SupervisionPolicy& policy,
                                 const ParameterSpace* space)
    : policy_(policy), space_(space), substitute_rng_(policy.guard_seed) {
  MetricsRegistry* metrics = CurrentMetrics();
  if (metrics != nullptr) {
    m_sanitized_ = metrics->GetCounter("supervisor.sanitized");
    m_duplicates_ = metrics->GetCounter("supervisor.duplicates_broken");
    m_vetoes_ = metrics->GetCounter("supervisor.vetoes");
    m_breaker_opened_ = metrics->GetCounter("supervisor.breaker_opened");
    m_breaker_reopened_ = metrics->GetCounter("supervisor.breaker_reopened");
    m_breaker_closed_ = metrics->GetCounter("supervisor.breaker_closed");
    m_open_regions_ = metrics->GetGauge("supervisor.open_regions");
  }
}

Configuration SupervisorGuard::Sanitize(const Configuration& proposed) {
  Configuration sanitized;
  bool any_changed = false;
  for (const ParameterDef& def : space_->params()) {
    bool changed = false;
    auto it = proposed.values().find(def.name());
    if (it == proposed.values().end()) {
      sanitized.Set(def.name(), def.default_value());
      any_changed = true;
      ++stats_.sanitized_values;
      continue;
    }
    sanitized.Set(def.name(), SanitizeValue(def, it->second, &changed));
    if (changed) {
      any_changed = true;
      ++stats_.sanitized_values;
    }
  }
  // Extra keys the space does not define are dropped by construction; count
  // the repair (never silently).
  if (proposed.size() > space_->dims()) any_changed = true;
  if (any_changed) {
    ++stats_.sanitized_configs;
    Bump(m_sanitized_);
  }
  return sanitized;
}

Vec SupervisorGuard::NextSubstitute() {
  if (substitute_pos_ >= substitute_pool_.size()) {
    substitute_pool_ = LatinHypercubeSamples(
        kSubstituteWave, std::max<size_t>(space_->dims(), 1),
        &substitute_rng_);
    substitute_pos_ = 0;
  }
  return substitute_pool_[substitute_pos_++];
}

double SupervisorGuard::NormalizedDistance(const Vec& a, const Vec& b) const {
  double d2 = 0.0;
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) d2 += (a[i] - b[i]) * (a[i] - b[i]);
  return std::sqrt(d2 / std::max<size_t>(n, 1));
}

void SupervisorGuard::AdvanceBreakerClock() {
  for (Region& region : regions_) {
    if (region.state == Region::State::kOpen &&
        trials_seen_ >= region.opened_at + policy_.breaker_cooldown_trials) {
      region.state = Region::State::kHalfOpen;
    }
  }
}

bool SupervisorGuard::Vetoed(const Vec& u) const {
  for (const Region& region : regions_) {
    if (region.state == Region::State::kOpen &&
        NormalizedDistance(u, region.center) <= policy_.breaker_radius) {
      return true;
    }
  }
  return false;
}

size_t SupervisorGuard::open_regions() const {
  size_t open = 0;
  for (const Region& region : regions_) {
    if (region.state == Region::State::kOpen) ++open;
  }
  return open;
}

Configuration SupervisorGuard::Admit(const Configuration& proposed) {
  Configuration config = Sanitize(proposed);

  // Duplicate-livelock breaker: tolerate policy_.duplicate_limit identical
  // consecutive proposals (legitimate re-measurement), then substitute
  // deterministic LHS draws until the proposer moves on.
  if (has_last_ && config == last_sanitized_) {
    ++consecutive_duplicates_;
  } else {
    consecutive_duplicates_ = 0;
    last_sanitized_ = config;
    has_last_ = true;
  }
  if (policy_.duplicate_limit > 0 &&
      consecutive_duplicates_ >= policy_.duplicate_limit) {
    config = space_->FromUnitVector(NextSubstitute());
    ++stats_.duplicates_broken;
    Bump(m_duplicates_);
  }

  // Crash-region veto: proposals inside an open breaker region are replaced
  // by an LHS draw outside every open region. Cooldown is checked lazily
  // against the trial clock, so an expired breaker half-opens here and lets
  // this proposal through as its probe.
  AdvanceBreakerClock();
  Vec u = space_->ToUnitVector(config);
  if (Vetoed(u)) {
    ++stats_.vetoes;
    Bump(m_vetoes_);
    ScopedSpan span(CurrentTracer(), "veto");
    if (span.active()) {
      span.AddArg("open_regions", std::to_string(open_regions()));
      span.AddArg("proposed", config.ToString());
    }
    Vec draw;
    for (size_t attempt = 0; attempt < std::max<size_t>(policy_.veto_max_draws,
                                                        1);
         ++attempt) {
      draw = NextSubstitute();
      if (!Vetoed(draw)) break;
    }
    config = space_->FromUnitVector(draw);
    if (span.active()) span.AddArg("substituted", config.ToString());
  }
  return config;
}

void SupervisorGuard::Observe(const Trial& trial) {
  ++trials_seen_;
  Vec u = space_->ToUnitVector(trial.config);
  if (!trial.result.failed) {
    // A successful run inside a half-open region closes its breaker.
    for (Region& region : regions_) {
      if (region.state == Region::State::kHalfOpen &&
          NormalizedDistance(u, region.center) <= policy_.breaker_radius) {
        region.state = Region::State::kTracking;
        region.failures = 0;
        ++stats_.breaker_closed;
        Bump(m_breaker_closed_);
      }
    }
    if (m_open_regions_ != nullptr) {
      m_open_regions_->Set(static_cast<double>(open_regions()));
    }
    return;
  }
  // Failed run: attribute it to the nearest region within the radius, or
  // found a new region around it.
  Region* nearest = nullptr;
  double nearest_dist = std::numeric_limits<double>::infinity();
  for (Region& region : regions_) {
    double dist = NormalizedDistance(u, region.center);
    if (dist <= policy_.breaker_radius && dist < nearest_dist) {
      nearest = &region;
      nearest_dist = dist;
    }
  }
  if (nearest == nullptr) {
    Region region;
    region.center = u;
    region.failures = 1;
    regions_.push_back(std::move(region));
  } else {
    ++nearest->failures;
    if (nearest->state == Region::State::kHalfOpen) {
      // The probe failed: reopen with a fresh cooldown.
      nearest->state = Region::State::kOpen;
      nearest->opened_at = trials_seen_;
      ++stats_.breaker_reopened;
      Bump(m_breaker_reopened_);
    } else if (nearest->state == Region::State::kTracking &&
               nearest->failures >= policy_.breaker_failure_threshold) {
      nearest->state = Region::State::kOpen;
      nearest->opened_at = trials_seen_;
      ++stats_.breaker_opened;
      Bump(m_breaker_opened_);
    }
  }
  if (m_open_regions_ != nullptr) {
    m_open_regions_->Set(static_cast<double>(open_regions()));
  }
}

namespace {

/// Model-free Latin-hypercube fallback (see MakeLhsFallbackTuner).
class LhsFallbackTuner : public Tuner {
 public:
  std::string name() const override { return "lhs-fallback"; }
  TunerCategory category() const override {
    return TunerCategory::kExperimentDriven;
  }
  void set_parallelism(size_t parallelism) override {
    parallelism_ = std::max<size_t>(parallelism, 1);
  }

  Status Tune(Evaluator* evaluator, Rng* rng) override {
    const ParameterSpace& space = evaluator->space();
    size_t dims = std::max<size_t>(space.dims(), 1);
    size_t waves = 0;
    size_t evaluated = 0;
    while (!evaluator->Exhausted()) {
      size_t wave = std::max<size_t>(parallelism_, 4);
      std::vector<Vec> design = LatinHypercubeSamples(wave, dims, rng);
      ++waves;
      if (parallelism_ > 1) {
        std::vector<Configuration> batch;
        batch.reserve(design.size());
        for (const Vec& u : design) batch.push_back(space.FromUnitVector(u));
        auto objs = evaluator->EvaluateBatch(batch, parallelism_);
        if (!objs.ok()) {
          if (objs.status().code() == StatusCode::kResourceExhausted) break;
          return objs.status();
        }
        evaluated += objs->size();
      } else {
        for (const Vec& u : design) {
          if (evaluator->Exhausted()) break;
          auto obj = evaluator->Evaluate(space.FromUnitVector(u));
          if (!obj.ok()) {
            if (obj.status().code() == StatusCode::kResourceExhausted) break;
            return obj.status();
          }
          ++evaluated;
        }
      }
    }
    report_ = StrFormat("lhs-fallback: %zu samples over %zu waves", evaluated,
                        waves);
    return Status::OK();
  }

  std::string Report() const override { return report_; }

 private:
  size_t parallelism_ = 1;
  std::string report_;
};

}  // namespace

SupervisedTuner::SupervisedTuner(std::unique_ptr<Tuner> primary,
                                 std::unique_ptr<Tuner> fallback,
                                 SupervisionPolicy policy)
    : primary_(std::move(primary)),
      fallback_(fallback != nullptr ? std::move(fallback)
                                    : MakeLhsFallbackTuner()),
      policy_(policy),
      name_("supervised:" + primary_->name()) {}

void SupervisedTuner::set_parallelism(size_t parallelism) {
  primary_->set_parallelism(parallelism);
  fallback_->set_parallelism(parallelism);
}

Status SupervisedTuner::Tune(Evaluator* evaluator, Rng* rng) {
  SupervisorGuard guard(policy_, &evaluator->space());
  evaluator->set_proposal_guard(&guard);
  // The guard lives on this stack frame; never leave it (or a stale lease)
  // installed past Tune().
  struct Uninstall {
    Evaluator* evaluator;
    ~Uninstall() {
      evaluator->set_proposal_guard(nullptr);
      evaluator->ClearLease();
    }
  } uninstall{evaluator};

  stats_ = SupervisionStats{};
  last_failover_cause_.clear();
  Counter* failover_metric = GuardCounter("supervisor.failovers");

  Status status = Status::OK();
  while (true) {
    status = primary_->Tune(evaluator, rng);
    // A journal error means measurements outran the checkpoint — that is a
    // durability failure, never something to paper over with a fallback.
    if (!evaluator->journal_error().ok()) break;
    if (status.code() != StatusCode::kInternal) break;
    if (evaluator->Exhausted()) {
      // The numerical failure coincided with budget exhaustion: nothing a
      // fallback could spend; the session already has its history.
      status = Status::OK();
      break;
    }
    ++stats_.failovers;
    last_failover_cause_ = status.message();
    const bool terminal = stats_.failovers >= policy_.max_failover_episodes;
    {
      ScopedSpan span(CurrentTracer(), "failover");
      if (span.active()) {
        span.AddArg("episode", std::to_string(stats_.failovers));
        span.AddArg("from", primary_->name());
        span.AddArg("to", fallback_->name());
        span.AddArg("terminal", terminal ? "1" : "0");
        span.AddArg("cause", status.message());
      }
      Bump(failover_metric);
    }
    // Lease K units to the fallback; the terminal episode gets the rest of
    // the budget instead (the primary has proven persistently unstable).
    if (!terminal) {
      evaluator->SetLease(
          static_cast<double>(std::max<size_t>(policy_.failover_cooldown_trials,
                                               1)));
    }
    Status fallback_status = fallback_->Tune(evaluator, rng);
    evaluator->ClearLease();
    if (!evaluator->journal_error().ok()) {
      status = fallback_status;
      break;
    }
    if (!fallback_status.ok() &&
        fallback_status.code() != StatusCode::kResourceExhausted) {
      status = fallback_status;
      break;
    }
    if (terminal || evaluator->Exhausted()) {
      status = Status::OK();
      break;
    }
    // Cooldown over: probe the primary again (a fresh Tune() pass — tuners
    // keep their working state in locals, so this restarts the algorithm
    // against the same budget/history).
  }
  stats_.sanitized_values = guard.stats().sanitized_values;
  stats_.sanitized_configs = guard.stats().sanitized_configs;
  stats_.duplicates_broken = guard.stats().duplicates_broken;
  stats_.vetoes = guard.stats().vetoes;
  stats_.breaker_opened = guard.stats().breaker_opened;
  stats_.breaker_reopened = guard.stats().breaker_reopened;
  stats_.breaker_closed = guard.stats().breaker_closed;
  return status;
}

std::string SupervisedTuner::Report() const {
  std::string report = StrFormat(
      "supervised(%s): %zu sanitized configs (%zu values), %zu duplicates "
      "broken, %zu vetoes, breaker %zu opened/%zu reopened/%zu closed, %zu "
      "failover episodes",
      primary_->name().c_str(), stats_.sanitized_configs,
      stats_.sanitized_values, stats_.duplicates_broken, stats_.vetoes,
      stats_.breaker_opened, stats_.breaker_reopened, stats_.breaker_closed,
      stats_.failovers);
  if (!last_failover_cause_.empty()) {
    report += StrFormat(" (last cause: %s)", last_failover_cause_.c_str());
  }
  std::string primary_report = primary_->Report();
  if (!primary_report.empty()) report += " | " + primary_report;
  if (stats_.failovers > 0) {
    std::string fallback_report = fallback_->Report();
    if (!fallback_report.empty()) report += " | " + fallback_report;
  }
  return report;
}

std::unique_ptr<Tuner> MakeLhsFallbackTuner() {
  return std::make_unique<LhsFallbackTuner>();
}

std::unique_ptr<Tuner> MakeSupervisedTuner(std::unique_ptr<Tuner> primary,
                                           std::unique_ptr<Tuner> fallback,
                                           SupervisionPolicy policy) {
  return std::make_unique<SupervisedTuner>(std::move(primary),
                                           std::move(fallback), policy);
}

}  // namespace atune
