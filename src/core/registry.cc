#include "core/registry.h"

#include "common/string_util.h"

namespace atune {

void TunerRegistry::Add(const std::string& name, TunerFactory factory) {
  factories_[name] = std::move(factory);
}

Result<std::unique_ptr<Tuner>> TunerRegistry::Create(
    const std::string& name) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    return Status::NotFound(StrFormat("no tuner named '%s'", name.c_str()));
  }
  return it->second();
}

std::vector<std::string> TunerRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) {
    (void)factory;
    names.push_back(name);
  }
  return names;
}

}  // namespace atune
