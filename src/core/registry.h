#ifndef ATUNE_CORE_REGISTRY_H_
#define ATUNE_CORE_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/tuner.h"

namespace atune {

/// Factory returning a fresh tuner instance with default options.
using TunerFactory = std::function<std::unique_ptr<Tuner>()>;

/// Name -> factory registry for tuners, so harnesses and examples can
/// instantiate approaches by name ("ituned", "ottertune", "colt", ...).
///
/// The registry is explicit (no static-initializer magic): call
/// RegisterBuiltinTuners() from tuners/builtin.h to populate it with every
/// approach in the library, or Add() your own.
class TunerRegistry {
 public:
  /// Registers a factory; replaces any existing entry with the same name.
  void Add(const std::string& name, TunerFactory factory);

  /// Instantiates a registered tuner.
  Result<std::unique_ptr<Tuner>> Create(const std::string& name) const;

  /// All registered names, sorted.
  std::vector<std::string> Names() const;

  bool Contains(const std::string& name) const {
    return factories_.find(name) != factories_.end();
  }
  size_t size() const { return factories_.size(); }

 private:
  std::map<std::string, TunerFactory> factories_;
};

}  // namespace atune

#endif  // ATUNE_CORE_REGISTRY_H_
