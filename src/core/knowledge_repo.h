#ifndef ATUNE_CORE_KNOWLEDGE_REPO_H_
#define ATUNE_CORE_KNOWLEDGE_REPO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/parameter_space.h"
#include "core/session.h"
#include "core/system.h"
#include "core/tuner.h"
#include "math/matrix.h"

namespace atune {

/// One completed tuning session's contribution to the global knowledge
/// repository (DESIGN.md §14): enough to fingerprint the workload it ran
/// against and to replay its best configurations into a new session.
struct KnowledgeRecord {
  /// Also the shard filename stem — must satisfy the wire protocol's
  /// session-id charset ([A-Za-z0-9._-], <= 128 chars).
  std::string session_id;
  std::string tenant;
  std::string tuner;
  std::string system;         ///< TunableSystem::name()
  std::string workload;       ///< Workload::name
  std::string workload_kind;  ///< Workload::kind
  double scale = 1.0;
  uint64_t seed = 0;
  uint64_t budget = 0;
  /// Metric schema for `fingerprint` (the system's MetricNames()).
  std::vector<std::string> metric_names;
  /// RAW per-metric mean over the session's unscaled trials. Stored
  /// unnormalized on purpose: pruning/standardization/binning happen only
  /// at query time as a pure function of the queried record set, so a
  /// long-lived process never carries normalization state across tenants.
  Vec fingerprint;
  /// Unit-encoded configurations of the session's unscaled trials, each
  /// paired with the observed objective (lower = better).
  std::vector<Vec> configs;
  Vec objectives;
};

/// Builds a record from a finished session. The fingerprint is the
/// per-metric mean over the outcome's unscaled trials with the addends
/// sorted before summation, so it is *bitwise* invariant under any
/// permutation of the trial history (metamorphic-test contract).
KnowledgeRecord MakeKnowledgeRecord(const std::string& session_id,
                                    const std::string& tenant,
                                    const std::string& system_name,
                                    const ParameterSpace& space,
                                    const std::vector<std::string>& metric_names,
                                    const Workload& workload, uint64_t seed,
                                    uint64_t budget,
                                    const TuningOutcome& outcome);

/// Self-describing single-record shard encoding: magic "ATUNEKRS", a
/// version, and a length+CRC32-framed little-endian payload. Decode
/// rejects any truncation, bit-flip, or foreign file with a non-OK status
/// (never a partially-filled record).
std::string EncodeKnowledgeRecord(const KnowledgeRecord& record);
Result<KnowledgeRecord> DecodeKnowledgeRecord(const std::string& bytes);

/// A global, concurrently-written, sharded store of completed sessions.
///
/// Layout: one immutable file per record, `s<bucket>-<session_id>.krs`,
/// where bucket = hash(session_id) % shard_buckets. Every publish goes
/// through AtomicWriteFile (tmp + fsync + rename + dir fsync on the IoEnv
/// seam), so a reader never observes a torn shard and the fault-injection
/// and crash-point harnesses cover ingest for free. Writers to *distinct*
/// session ids never contend (distinct paths); re-ingesting the same id is
/// an idempotent atomic replace. The object itself holds only the
/// directory path — no cached records, no accumulated normalization
/// state — so it is trivially safe to share across tenants and threads.
class KnowledgeRepository {
 public:
  explicit KnowledgeRepository(std::string dir, size_t shard_buckets = 16);

  const std::string& dir() const { return dir_; }

  /// Creates the directory if missing and atomically publishes the
  /// record's shard. Thread-safe for distinct session ids.
  Status Ingest(const KnowledgeRecord& record);

  /// Shard filename (relative to dir()) a record would be published under.
  std::string ShardName(const std::string& session_id) const;

  /// Sorted list of shard filenames currently present (".krs" only —
  /// in-flight ".tmp" files are never listed). Missing directory = empty.
  std::vector<std::string> ListShards() const;

  /// Decodes one shard by filename.
  Result<KnowledgeRecord> LoadShard(const std::string& filename) const;

  /// Loads every listed shard. A corrupt or unreadable shard is skipped —
  /// not fatal — and counted into *corrupt_skipped (may be null).
  Result<std::vector<KnowledgeRecord>> LoadAll(
      size_t* corrupt_skipped = nullptr) const;

  /// LoadAll restricted to an explicit shard list — how a warm-started
  /// daemon session pins its snapshot at admission so a restart maps
  /// against byte-identical history (DESIGN.md §14). Missing/corrupt
  /// entries are skipped and counted.
  Result<std::vector<KnowledgeRecord>> LoadShards(
      const std::vector<std::string>& filenames,
      size_t* corrupt_skipped = nullptr) const;

  /// What one Compact() pass did (all counters are per-pass).
  struct CompactionStats {
    size_t superseded = 0;    ///< stale-bucket duplicates found
    size_t removed = 0;       ///< superseded files unlinked
    size_t renamed = 0;       ///< sole stale records moved to canonical names
    size_t corrupt_kept = 0;  ///< undecodable shards left untouched
  };

  /// Latest-wins compaction: reconciles the directory with the *current*
  /// bucket mapping. A repository reopened with a different `shard_buckets`
  /// leaves records stranded under stale bucket prefixes; because every
  /// Ingest publishes under the current ShardName, the canonical file is
  /// always the newest record for its session id, so
  ///   * a stale-bucket file whose canonical twin exists and decodes is
  ///     superseded — unlinked through the IoEnv seam;
  ///   * a sole stale-bucket file that decodes is renamed to its canonical
  ///     name (no knowledge is ever dropped by compaction);
  ///   * anything that fails to decode is left exactly where it is — the
  ///     corrupt-skip contract: compaction never destroys evidence, and a
  ///     corrupt canonical twin also shields its stale duplicate.
  /// Safe to run concurrently with Ingest of *other* session ids (distinct
  /// paths); re-ingesting an id concurrently with a pass that is moving
  /// that id's stale twin may resurface the older (still valid) record.
  /// Best-effort: the pass visits every shard and returns the first I/O
  /// error encountered, if any.
  Status Compact(CompactionStats* stats = nullptr);

 private:
  std::string dir_;
  size_t shard_buckets_;
};

/// Query-time workload mapping (pure function — see KnowledgeRecord).
struct WorkloadMapping {
  /// Pruned (informative) fingerprint dimensions, ascending. Pruning
  /// drops near-constant metrics, then keeps one representative per
  /// k-means cluster of standardized metric profiles (OtterTune §5.1,
  /// reusing ml/kmeans with a fixed internal seed for determinism).
  std::vector<size_t> metric_idx;
  /// Record indices into the queried set, nearest first; ties broken by
  /// session_id then index so the ordering is deterministic.
  std::vector<size_t> neighbors;
  /// Euclidean distance over deciles-binned pruned fingerprints.
  std::vector<double> distances;
};

/// Maps `target_fingerprint` onto the k nearest records by Euclidean
/// distance over deciles-binned pruned metrics (OtterTune §5.2). Decile
/// boundaries and pruning are computed from the *distinct* values of the
/// queried set plus the target, which makes the mapping invariant under
/// record duplication (metamorphic-test contract). Records whose metric
/// dimensionality differs from the target are ignored.
WorkloadMapping MapWorkloadKnn(const std::vector<KnowledgeRecord>& records,
                               const Vec& target_fingerprint, size_t k);

/// Deterministically selects up to `max_configs` warm-start seed
/// configurations from the mapped neighbors: walks neighbors nearest
/// first, taking each one's best-objective trials, deduplicating
/// identical configs, and skipping configs whose dimensionality differs
/// from `dims`.
std::vector<Vec> SelectWarmConfigs(const std::vector<KnowledgeRecord>& records,
                                   const std::vector<size_t>& neighbors,
                                   size_t dims, size_t max_configs);

}  // namespace atune

#endif  // ATUNE_CORE_KNOWLEDGE_REPO_H_
