#include "systems/system_factory.h"

#include "systems/dbms/dbms_system.h"
#include "systems/dbms/dbms_workloads.h"
#include "systems/hardware.h"
#include "systems/mapreduce/mr_system.h"
#include "systems/mapreduce/mr_workloads.h"
#include "systems/spark/spark_system.h"
#include "systems/spark/spark_workloads.h"

namespace atune {

std::map<std::string, Workload> WorkloadsForSystem(const std::string& system,
                                                   double scale) {
  if (system == "mapreduce") {
    return {{"wordcount", MakeMrWordCountWorkload(10.0 * scale)},
            {"terasort", MakeMrTeraSortWorkload(10.0 * scale)},
            {"grep", MakeMrGrepWorkload(10.0 * scale)},
            {"join", MakeMrJoinWorkload(10.0 * scale)},
            {"pagerank", MakeMrPageRankWorkload(5.0 * scale, 8)}};
  }
  if (system == "spark") {
    return {{"sql_aggregate", MakeSparkSqlAggregateWorkload(8.0 * scale)},
            {"sql_join", MakeSparkJoinWorkload(8.0 * scale)},
            {"iterative_ml", MakeSparkIterativeMlWorkload(4.0 * scale)},
            {"streaming", MakeSparkStreamingWorkload(64.0 * scale)}};
  }
  return {{"olap", MakeDbmsOlapWorkload(scale)},
          {"oltp", MakeDbmsOltpWorkload(scale)},
          {"mixed", MakeDbmsMixedWorkload(scale)}};
}

Result<std::unique_ptr<TunableSystem>> MakeSystemByName(
    const std::string& system, size_t nodes, uint64_t seed) {
  NodeSpec node;
  node.cores = 8;
  node.ram_mb = 16384;
  if (system == "mapreduce") {
    node.ram_mb = 8192;
    return std::unique_ptr<TunableSystem>(std::make_unique<SimulatedMapReduce>(
        ClusterSpec::MakeUniform(nodes == 0 ? 4 : nodes, node), seed));
  }
  if (system == "spark") {
    return std::unique_ptr<TunableSystem>(std::make_unique<SimulatedSpark>(
        ClusterSpec::MakeUniform(nodes == 0 ? 4 : nodes, node), seed));
  }
  if (system == "dbms") {
    return std::unique_ptr<TunableSystem>(std::make_unique<SimulatedDbms>(
        ClusterSpec::MakeUniform(nodes == 0 ? 1 : nodes, node), seed));
  }
  return Status::InvalidArgument("unknown system '" + system + "'");
}

Result<Workload> WorkloadByName(const std::string& system,
                                const std::string& workload, double scale) {
  auto catalog = WorkloadsForSystem(system, scale);
  if (workload.empty()) return catalog.begin()->second;
  auto it = catalog.find(workload);
  if (it == catalog.end()) {
    return Status::InvalidArgument("unknown workload '" + workload +
                                   "' for system '" + system + "'");
  }
  return it->second;
}

}  // namespace atune
