#include "systems/multi_tenant.h"

#include <algorithm>

#include "common/string_util.h"

namespace atune {

MultiTenantSystem::MultiTenantSystem(TunableSystem* base,
                                     std::vector<Tenant> tenants)
    : base_(base),
      tenants_(std::move(tenants)),
      name_(base->name() + "-multitenant") {}

std::vector<std::string> MultiTenantSystem::MetricNames() const {
  std::vector<std::string> names = {"worst_slo_ratio", "slo_violations"};
  for (size_t i = 0; i < tenants_.size(); ++i) {
    names.push_back(StrFormat("tenant_%zu_runtime_s", i));
    names.push_back(StrFormat("tenant_%zu_slo_ratio", i));
  }
  return names;
}

std::unique_ptr<TunableSystem> MultiTenantSystem::Clone(
    uint64_t runs_ahead) const {
  // Each wrapper execution consumes tenants_.size() base executions, so the
  // base clone must start that many base-runs ahead per wrapper-run.
  std::unique_ptr<TunableSystem> base_clone =
      base_->Clone(runs_ahead * tenants_.size());
  if (base_clone == nullptr) return nullptr;
  auto clone =
      std::unique_ptr<MultiTenantSystem>(new MultiTenantSystem(
          base_clone.get(), tenants_));
  clone->owned_base_ = std::move(base_clone);
  return clone;
}

void MultiTenantSystem::SkipRuns(uint64_t n) {
  base_->SkipRuns(n * tenants_.size());
}

Result<ExecutionResult> MultiTenantSystem::Execute(const Configuration& config,
                                                   const Workload& workload) {
  ExecutionResult total;
  double worst_ratio = 0.0;
  double violations = 0.0;
  for (size_t i = 0; i < tenants_.size(); ++i) {
    Workload tenant_workload = tenants_[i].workload;
    tenant_workload.scale *= workload.scale;
    ATUNE_ASSIGN_OR_RETURN(ExecutionResult r,
                           base_->Execute(config, tenant_workload));
    total.runtime_seconds += r.runtime_seconds;
    if (r.failed) {
      total.failed = true;
      total.failure_reason = StrFormat("tenant '%s': %s",
                                       tenants_[i].name.c_str(),
                                       r.failure_reason.c_str());
    }
    double slo = std::max(tenants_[i].slo_seconds, 1e-9);
    double ratio = r.runtime_seconds / slo;
    if (r.failed) ratio = 10.0;  // a crashed tenant is maximally unhappy
    worst_ratio = std::max(worst_ratio, ratio);
    if (ratio > 1.0) violations += 1.0;
    total.metrics[StrFormat("tenant_%zu_runtime_s", i)] = r.runtime_seconds;
    total.metrics[StrFormat("tenant_%zu_slo_ratio", i)] = ratio;
  }
  total.metrics["worst_slo_ratio"] = worst_ratio;
  total.metrics["slo_violations"] = violations;
  return total;
}

Workload MakeMultiTenantWorkload(double scale) {
  Workload w;
  w.name = "multi-tenant";
  w.kind = "multi-tenant";
  w.scale = scale;
  return w;
}

ObjectiveFunction MakeRobustSloObjective(double total_time_weight) {
  return [total_time_weight](const Configuration&,
                             const ExecutionResult& result) {
    double worst = result.MetricOr("worst_slo_ratio", 10.0);
    if (result.failed) worst = std::max(worst, 10.0);
    return worst + total_time_weight * result.runtime_seconds;
  };
}

}  // namespace atune
