#ifndef ATUNE_SYSTEMS_HARDWARE_H_
#define ATUNE_SYSTEMS_HARDWARE_H_

#include <cstddef>
#include <vector>

#include "common/random.h"

namespace atune {

/// Hardware description of one cluster node. All simulators consume this
/// model, which captures the resources configuration parameters trade off:
/// CPU, memory capacity, disk and network bandwidth.
struct NodeSpec {
  double cores = 8.0;
  double ram_mb = 16384.0;
  double disk_mbps = 200.0;       ///< sequential bandwidth
  double disk_iops = 500.0;       ///< random 4K reads per second
  double network_mbps = 1000.0;   ///< full-duplex per-node bandwidth (MB/s /8)
  /// Relative CPU speed (1.0 = baseline); heterogeneous clusters vary this.
  double cpu_speed = 1.0;
};

/// A cluster of nodes. Homogeneous unless built with MakeHeterogeneous.
class ClusterSpec {
 public:
  ClusterSpec() = default;
  explicit ClusterSpec(std::vector<NodeSpec> nodes) : nodes_(std::move(nodes)) {}

  /// n identical nodes.
  static ClusterSpec MakeUniform(size_t n, const NodeSpec& node);

  /// n nodes whose cpu_speed / disk / network vary by +-`spread` fraction
  /// (log-uniform), modeling the heterogeneity challenge from the paper's
  /// Section 2.5.
  static ClusterSpec MakeHeterogeneous(size_t n, const NodeSpec& base,
                                       double spread, Rng* rng);

  size_t num_nodes() const { return nodes_.size(); }
  const std::vector<NodeSpec>& nodes() const { return nodes_; }
  const NodeSpec& node(size_t i) const { return nodes_[i]; }

  double TotalCores() const;
  double TotalRamMb() const;
  /// Aggregate sequential disk bandwidth.
  double TotalDiskMbps() const;
  double TotalNetworkMbps() const;
  /// Speed of the slowest node relative to the mean (straggler factor
  /// driver; 1.0 for homogeneous clusters).
  double SlowestNodeFactor() const;
  /// Mean node values.
  NodeSpec MeanNode() const;

 private:
  std::vector<NodeSpec> nodes_;
};

}  // namespace atune

#endif  // ATUNE_SYSTEMS_HARDWARE_H_
