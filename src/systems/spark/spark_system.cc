#include "systems/spark/spark_system.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "systems/dbms/dbms_model.h"  // CompressionProfile
#include "systems/spark/spark_model.h"

namespace atune {

namespace {
constexpr double kTaskLaunchSec = 0.08;    // scheduler + deserialization
constexpr double kStageSetupSec = 0.4;
constexpr double kScanPartitionMb = 128.0;
}  // namespace

SimulatedSpark::SimulatedSpark(ClusterSpec cluster, uint64_t seed)
    : cluster_(std::move(cluster)), seed_(seed) {
  double node_ram = cluster_.MeanNode().ram_mb;
  auto add = [this](ParameterDef def) {
    Status s = space_.Add(std::move(def));
    (void)s;
  };
  add(ParameterDef::Int("num_executors", 1, 64, 2, "executor count"));
  add(ParameterDef::Int("executor_cores", 1, 8, 1, "cores per executor"));
  add(ParameterDef::Int("executor_memory_mb", 512,
                        static_cast<int64_t>(node_ram), 1024,
                        "heap per executor", true, "MB"));
  add(ParameterDef::Double("memory_fraction", 0.3, 0.9, 0.6,
                           "unified memory fraction of heap"));
  add(ParameterDef::Double("storage_fraction", 0.1, 0.9, 0.5,
                           "storage share of unified memory"));
  add(ParameterDef::Int("shuffle_partitions", 8, 2000, 200,
                        "partitions for shuffles (spark.sql.shuffle.partitions)",
                        true));
  add(ParameterDef::Categorical("serializer", {"java", "kryo"}, 0,
                                "object serializer"));
  add(ParameterDef::Bool("shuffle_compress", true,
                         "compress shuffle blocks"));
  add(ParameterDef::Bool("rdd_compress", false,
                         "compress cached RDD partitions"));
  add(ParameterDef::Int("broadcast_threshold_mb", 1, 512, 10,
                        "max table size for broadcast join", true, "MB"));
  add(ParameterDef::Bool("speculation", false,
                         "re-launch slow tasks speculatively"));
  add(ParameterDef::Double("locality_wait_s", 0.0, 10.0, 3.0,
                           "wait for data-local scheduling", false, "s"));
}

std::map<std::string, double> SimulatedSpark::Descriptors() const {
  NodeSpec mean = cluster_.MeanNode();
  return {
      {"num_nodes", static_cast<double>(cluster_.num_nodes())},
      {"total_ram_mb", cluster_.TotalRamMb()},
      {"node_ram_mb", mean.ram_mb},
      {"total_cores", cluster_.TotalCores()},
      {"cores_per_node", mean.cores},
      {"disk_mbps", mean.disk_mbps},
      {"network_mbps", mean.network_mbps},
  };
}

std::vector<std::string> SimulatedSpark::MetricNames() const {
  return {"scheduling_overhead_s", "gc_time_s",      "spill_mb",
          "shuffle_read_mb",       "shuffle_write_mb", "cache_hit_ratio",
          "task_count",            "waves",          "cpu_time_s",
          "io_time_s",             "granted_cores",  "memory_pressure",
          "straggler_factor"};
}

size_t SimulatedSpark::NumUnits(const Workload& workload) const {
  if (workload.kind == "iterative_ml") {
    return static_cast<size_t>(workload.PropertyOr("iterations", 10.0));
  }
  if (workload.kind == "streaming") {
    return static_cast<size_t>(workload.PropertyOr("batches", 20.0));
  }
  return static_cast<size_t>(std::max(1.0, workload.PropertyOr("queries", 10.0)));
}

Result<ExecutionResult> SimulatedSpark::ExecuteUnit(const Configuration& config,
                                                    const Workload& workload,
                                                    size_t unit_index) {
  ATUNE_RETURN_IF_ERROR(space_.ValidateConfiguration(config));
  Workload unit = workload;
  // First iteration of an iterative job runs cold (cache not built yet).
  unit.properties["__cold"] = unit_index == 0 ? 1.0 : 0.0;
  ExecutionResult r = RunUnit(config, unit);
  Rng run_rng(DeriveSeed(seed_, run_index_++));
  if (noise_sigma_ > 0.0 && !r.failed) {
    r.runtime_seconds *= std::exp(run_rng.Normal(0.0, noise_sigma_));
  }
  return r;
}

Result<ExecutionResult> SimulatedSpark::Execute(const Configuration& config,
                                                const Workload& workload) {
  ATUNE_RETURN_IF_ERROR(space_.ValidateConfiguration(config));
  size_t units = NumUnits(workload);
  ExecutionResult total;
  for (size_t u = 0; u < units; ++u) {
    Workload unit = workload;
    unit.properties["__cold"] = u == 0 ? 1.0 : 0.0;
    ExecutionResult r = RunUnit(config, unit);
    total.runtime_seconds += r.runtime_seconds;
    for (const auto& [k, v] : r.metrics) total.metrics[k] += v;
    if (r.failed) {
      total.failed = true;
      total.failure_reason = r.failure_reason;
      break;
    }
  }
  // Driver/app startup.
  total.runtime_seconds += 4.0;
  // Streaming SLA: chronic batch overrun collapses the pipeline.
  if (!total.failed && workload.kind == "streaming") {
    double interval = workload.PropertyOr("batch_interval_s", 5.0);
    double mean_batch = total.runtime_seconds / static_cast<double>(units);
    total.metrics["sla_violation_ratio"] = std::max(0.0, mean_batch / interval - 1.0);
    if (mean_batch > 2.0 * interval) {
      total.failed = true;
      total.failure_reason =
          StrFormat("streaming backlog: mean batch %.1fs vs %.1fs interval",
                    mean_batch, interval);
    }
  }
  Rng run_rng(DeriveSeed(seed_, run_index_++));
  if (noise_sigma_ > 0.0 && !total.failed) {
    double noise = std::exp(run_rng.Normal(0.0, noise_sigma_));
    if (run_rng.Bernoulli(0.03)) noise *= 1.3;
    total.runtime_seconds *= noise;
  }
  return total;
}

std::unique_ptr<TunableSystem> SimulatedSpark::Clone(uint64_t runs_ahead) const {
  auto clone = std::make_unique<SimulatedSpark>(cluster_, seed_);
  clone->noise_sigma_ = noise_sigma_;
  clone->run_index_ = run_index_ + runs_ahead;
  return clone;
}

ExecutionResult SimulatedSpark::RunUnit(const Configuration& config,
                                        const Workload& workload) const {
  const double data_mb =
      workload.PropertyOr("data_mb", 8192.0) * workload.scale;
  const int64_t partitions = config.IntOr("shuffle_partitions", 200);
  const bool cold = workload.PropertyOr("__cold", 0.0) > 0.5;

  std::vector<StageSpec> stages;
  if (workload.kind == "sql_aggregate") {
    double agg_sel = workload.PropertyOr("shuffle_selectivity", 0.5);
    StageSpec scan;
    scan.tasks = std::ceil(data_mb / kScanPartitionMb);
    scan.input_mb = data_mb;
    scan.shuffle_write_mb = data_mb * agg_sel;
    scan.cpu_s_per_mb = workload.PropertyOr("cpu_s_per_mb", 0.004);
    stages.push_back(scan);
    StageSpec agg;
    agg.tasks = static_cast<double>(partitions);
    agg.input_mb = scan.shuffle_write_mb;
    agg.reads_shuffle = true;
    agg.cpu_s_per_mb = workload.PropertyOr("agg_cpu_s_per_mb", 0.006);
    stages.push_back(agg);
  } else if (workload.kind == "sql_join") {
    const double small_mb = workload.PropertyOr("small_table_mb", 64.0);
    const int64_t bcast = config.IntOr("broadcast_threshold_mb", 10);
    StageSpec scan_big;
    scan_big.tasks = std::ceil(data_mb / kScanPartitionMb);
    scan_big.input_mb = data_mb;
    scan_big.cpu_s_per_mb = 0.004;
    if (small_mb <= static_cast<double>(bcast)) {
      // Broadcast join: small table shipped to every executor, joined
      // map-side; no shuffle of the big table. The broadcast copy must fit
      // in each executor's memory — a too-aggressive threshold OOMs.
      const int64_t exec_mem = config.IntOr("executor_memory_mb", 1024);
      const std::string ser = config.StringOr("serializer", "java");
      double in_mem =
          small_mb * GetSerializerProfile(ser).memory_expansion;
      if (in_mem > static_cast<double>(exec_mem) * 0.35) {
        ExecutionResult r;
        r.failed = true;
        r.failure_reason = StrFormat(
            "broadcast OOM: %.0f MB table into %lld MB executors",
            small_mb, static_cast<long long>(exec_mem));
        r.runtime_seconds = kFailedRunWallClockSec /
            static_cast<double>(std::max<size_t>(NumUnits(workload), 1));
        return r;
      }
      scan_big.cpu_s_per_mb += 0.003;  // hash probe per row
      scan_big.shuffle_write_mb = 0.0;
      stages.push_back(scan_big);
    } else {
      scan_big.shuffle_write_mb = data_mb;
      stages.push_back(scan_big);
      StageSpec scan_small;
      scan_small.tasks = std::max(1.0, std::ceil(small_mb / kScanPartitionMb));
      scan_small.input_mb = small_mb;
      scan_small.shuffle_write_mb = small_mb;
      stages.push_back(scan_small);
      StageSpec join;
      join.tasks = static_cast<double>(partitions);
      join.input_mb = data_mb + small_mb;
      join.reads_shuffle = true;
      join.cpu_s_per_mb = 0.008;
      stages.push_back(join);
    }
  } else if (workload.kind == "iterative_ml") {
    StageSpec map;
    map.tasks = std::ceil(data_mb / kScanPartitionMb);
    map.input_mb = data_mb;
    map.from_cache = !cold;
    map.cpu_s_per_mb = workload.PropertyOr("cpu_s_per_mb", 0.010);
    map.shuffle_write_mb = workload.PropertyOr("gradient_mb", 8.0);
    stages.push_back(map);
    StageSpec agg;
    agg.tasks = std::min<double>(static_cast<double>(partitions), 64.0);
    agg.input_mb = map.shuffle_write_mb;
    agg.reads_shuffle = true;
    agg.cpu_s_per_mb = 0.005;
    stages.push_back(agg);
  } else if (workload.kind == "streaming") {
    const double batch_mb = workload.PropertyOr("batch_mb", 64.0);
    StageSpec receive;
    receive.tasks = std::max(4.0, std::ceil(batch_mb / 8.0));
    receive.input_mb = batch_mb;
    receive.shuffle_write_mb = batch_mb * 0.6;
    receive.cpu_s_per_mb = 0.006;
    stages.push_back(receive);
    StageSpec agg;
    agg.tasks = static_cast<double>(partitions);
    agg.input_mb = receive.shuffle_write_mb;
    agg.reads_shuffle = true;
    agg.cpu_s_per_mb = 0.006;
    stages.push_back(agg);
  } else {
    // Unknown kind: treat as one scan stage.
    StageSpec scan;
    scan.tasks = std::ceil(data_mb / kScanPartitionMb);
    scan.input_mb = data_mb;
    stages.push_back(scan);
  }
  return RunStages(config, workload, stages);
}

ExecutionResult SimulatedSpark::RunStages(
    const Configuration& config, const Workload& workload,
    const std::vector<StageSpec>& stages) const {
  ExecutionResult r;
  const int64_t num_executors = config.IntOr("num_executors", 2);
  const int64_t executor_cores = config.IntOr("executor_cores", 1);
  const int64_t executor_memory = config.IntOr("executor_memory_mb", 1024);
  const double memory_fraction = config.DoubleOr("memory_fraction", 0.6);
  const double storage_fraction = config.DoubleOr("storage_fraction", 0.5);
  const std::string serializer = config.StringOr("serializer", "java");
  const bool shuffle_compress = config.BoolOr("shuffle_compress", true);
  const bool rdd_compress = config.BoolOr("rdd_compress", false);
  const bool speculation = config.BoolOr("speculation", false);
  const double locality_wait = config.DoubleOr("locality_wait_s", 3.0);

  // --- resource grant ----------------------------------------------------
  const double req_mem =
      static_cast<double>(num_executors * executor_memory);
  const double req_cores =
      static_cast<double>(num_executors * executor_cores);
  if (req_mem > cluster_.TotalRamMb() * 0.95 ||
      req_cores > cluster_.TotalCores()) {
    r.failed = true;
    r.failure_reason = StrFormat(
        "resource request denied: %.0f MB / %.0f cores on a %.0f MB / %.0f "
        "core cluster",
        req_mem, req_cores, cluster_.TotalRamMb(), cluster_.TotalCores());
    r.runtime_seconds = kFailedRunWallClockSec /
        static_cast<double>(std::max<size_t>(NumUnits(workload), 1));
    return r;
  }
  const double granted_cores = req_cores;
  const SparkMemoryPlan plan =
      ComputeMemoryPlan(static_cast<double>(executor_memory), memory_fraction,
                        storage_fraction, executor_cores);
  const SerializerProfile ser = GetSerializerProfile(serializer);
  const bool kryo = serializer == "kryo";
  const CompressionProfile shuffle_codec =
      shuffle_compress ? GetCompressionProfile("lz4") : CompressionProfile{};
  const CompressionProfile rdd_codec =
      rdd_compress ? GetCompressionProfile("lz4") : CompressionProfile{};

  const NodeSpec mean = cluster_.MeanNode();
  const double cpu_speed = mean.cpu_speed;
  const double disk_bw_per_core =
      mean.disk_mbps / std::max(1.0, mean.cores / 2.0);
  const double net_bw_per_core =
      cluster_.TotalNetworkMbps() / std::max(1.0, granted_cores);
  const double locality = workload.PropertyOr("locality", 0.7);

  // Cache capacity across executors (for iterative workloads).
  const double cache_capacity_mb =
      plan.storage_mb * static_cast<double>(num_executors);
  const double dataset_in_mem =
      workload.PropertyOr("data_mb", 8192.0) * workload.scale *
      ser.memory_expansion * rdd_codec.ratio;
  const double cache_hit =
      std::clamp(cache_capacity_mb / std::max(dataset_in_mem, 1.0), 0.0, 1.0);

  double straggler =
      std::pow(cluster_.SlowestNodeFactor(),
               cluster_.num_nodes() > 1 ? 0.8 : 0.0);
  double spec_overhead = 1.0;
  if (speculation) {
    straggler = 1.0 + (straggler - 1.0) * 0.3;
    spec_overhead = 1.10;
  }

  double runtime = 0.0;
  double sched_s = 0.0, gc_s = 0.0, spill_mb = 0.0, cpu_s = 0.0, io_s = 0.0;
  double shuffle_read_mb = 0.0, shuffle_write_mb = 0.0;
  double max_pressure = 0.0;

  for (const StageSpec& stage : stages) {
    const double tasks = std::max(1.0, stage.tasks);
    const double waves = std::ceil(tasks / granted_cores);
    const double data_per_task = stage.input_mb / tasks;

    // Execution memory need: working set expands per the serializer; joins
    // and aggregations build hash tables about as large as their input.
    const double need_mb = data_per_task * ser.memory_expansion;
    if (TaskOom(need_mb, plan.per_task_execution_mb)) {
      r.failed = true;
      r.failure_reason = StrFormat(
          "executor OOM: task working set %.0f MB vs %.0f MB execution "
          "memory (%.0f partitions)",
          need_mb, plan.per_task_execution_mb, tasks);
      r.runtime_seconds = runtime +
          kFailedRunWallClockSec /
              static_cast<double>(std::max<size_t>(NumUnits(workload), 1));
      return r;
    }
    const double pressure = need_mb / std::max(plan.per_task_execution_mb, 1.0);
    max_pressure = std::max(max_pressure, pressure);
    const double gc_frac = GcOverheadFraction(pressure * 0.6, kryo);

    const double spill_factor =
        ExecutionSpillFactor(need_mb, plan.per_task_execution_mb);
    const double task_spill_mb = spill_factor * data_per_task;

    // I/O path for the stage input.
    double read_s = 0.0;
    if (stage.reads_shuffle) {
      double wire_mb = data_per_task * shuffle_codec.ratio;
      read_s = wire_mb / net_bw_per_core +
               data_per_task * (shuffle_codec.decompress_cpu_s_per_mb +
                                ser.deser_cpu_s_per_mb);
    } else if (stage.from_cache) {
      double miss = 1.0 - cache_hit;
      read_s = miss * (data_per_task / disk_bw_per_core +
                       data_per_task * ser.deser_cpu_s_per_mb) +
               cache_hit * data_per_task *
                   rdd_codec.decompress_cpu_s_per_mb;
    } else {
      read_s = data_per_task / disk_bw_per_core;
      // Non-local tasks either wait for a local slot or read remotely.
      double remote_s = data_per_task / net_bw_per_core + 0.1;
      read_s += (1.0 - locality) * std::min(locality_wait, remote_s);
    }

    const double write_per_task = stage.shuffle_write_mb / tasks;
    const double write_s =
        write_per_task * shuffle_codec.ratio / disk_bw_per_core +
        write_per_task * (shuffle_codec.compress_cpu_s_per_mb +
                          ser.ser_cpu_s_per_mb);

    const double compute_s =
        data_per_task * stage.cpu_s_per_mb / cpu_speed * spec_overhead;
    const double spill_s = task_spill_mb / disk_bw_per_core;

    const double task_time =
        kTaskLaunchSec +
        (std::max(read_s, compute_s) + 0.3 * std::min(read_s, compute_s) +
         write_s + spill_s) *
            (1.0 + gc_frac);
    // Many waves let fast nodes absorb extra tasks; one wave is gated by
    // the slowest node.
    const double stage_straggler =
        1.0 + (straggler - 1.0) / std::sqrt(std::max(waves, 1.0));
    const double stage_time =
        kStageSetupSec + waves * task_time * stage_straggler;

    runtime += stage_time;
    sched_s += kTaskLaunchSec * tasks;
    gc_s += waves * task_time * gc_frac;
    spill_mb += task_spill_mb * tasks;
    cpu_s += compute_s * tasks;
    io_s += (read_s + write_s + spill_s) * tasks;
    if (stage.reads_shuffle) shuffle_read_mb += stage.input_mb;
    shuffle_write_mb += stage.shuffle_write_mb;
    r.metrics["task_count"] += tasks;
    r.metrics["waves"] += waves;
  }

  r.runtime_seconds = runtime;
  r.metrics["scheduling_overhead_s"] = sched_s;
  r.metrics["gc_time_s"] = gc_s;
  r.metrics["spill_mb"] = spill_mb;
  r.metrics["shuffle_read_mb"] = shuffle_read_mb;
  r.metrics["shuffle_write_mb"] = shuffle_write_mb;
  r.metrics["cache_hit_ratio"] = cache_hit;
  r.metrics["cpu_time_s"] = cpu_s;
  r.metrics["io_time_s"] = io_s;
  r.metrics["granted_cores"] = granted_cores;
  r.metrics["memory_pressure"] = max_pressure;
  r.metrics["straggler_factor"] = straggler;
  return r;
}

}  // namespace atune
