#include "systems/spark/spark_model.h"

#include <algorithm>
#include <cmath>

namespace atune {

namespace {
constexpr double kReservedMb = 300.0;  // Spark's fixed reserved memory
}

SparkMemoryPlan ComputeMemoryPlan(double executor_memory_mb,
                                  double memory_fraction,
                                  double storage_fraction,
                                  int64_t executor_cores) {
  SparkMemoryPlan plan;
  double usable = std::max(0.0, executor_memory_mb - kReservedMb);
  plan.unified_mb = usable * std::clamp(memory_fraction, 0.0, 1.0);
  plan.storage_mb = plan.unified_mb * std::clamp(storage_fraction, 0.0, 1.0);
  plan.execution_mb = plan.unified_mb - plan.storage_mb;
  plan.per_task_execution_mb =
      plan.execution_mb / std::max<double>(1.0, static_cast<double>(
                                                    executor_cores));
  return plan;
}

SerializerProfile GetSerializerProfile(const std::string& name) {
  if (name == "kryo") {
    return SerializerProfile{1.6, 0.0015, 0.0010};
  }
  // Java serialization: bulky objects, slow streams.
  return SerializerProfile{2.8, 0.0040, 0.0030};
}

double GcOverheadFraction(double pressure, bool kryo) {
  pressure = std::max(0.0, pressure);
  double churn = kryo ? 0.8 : 1.5;
  // Light load: a few percent. Heap pressure near/over 1 sends collectors
  // into repeated full GCs.
  double frac = 0.03 + 0.20 * churn * pressure * pressure;
  return std::min(frac, 1.5);
}

double ExecutionSpillFactor(double need_mb, double available_mb) {
  if (available_mb <= 0.0) return 2.0;
  if (need_mb <= available_mb) return 0.0;
  // Shortfall spills to disk and is re-read during merge.
  double shortfall = (need_mb - available_mb) / need_mb;
  return 2.0 * shortfall;
}

bool TaskOom(double need_mb, double available_mb) {
  return need_mb > 4.0 * std::max(available_mb, 1.0);
}

}  // namespace atune
