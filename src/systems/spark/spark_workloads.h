#ifndef ATUNE_SYSTEMS_SPARK_SPARK_WORKLOADS_H_
#define ATUNE_SYSTEMS_SPARK_SPARK_WORKLOADS_H_

#include "core/system.h"

namespace atune {

/// Canonical Spark workloads from the tuning literature (Section 2.4).

/// SQL scan + group-by aggregation over `data_gb`; shuffle-partition and
/// executor sizing dominate.
Workload MakeSparkSqlAggregateWorkload(double data_gb = 8.0,
                                       double queries = 10.0);

/// Star-schema join of a `data_gb` fact table against a `small_table_mb`
/// dimension; exercises the broadcast-join threshold cliff.
Workload MakeSparkJoinWorkload(double data_gb = 8.0,
                               double small_table_mb = 64.0);

/// Iterative ML training (logistic-regression-like): `iterations` passes
/// over a cached dataset; storage memory and serializer dominate.
Workload MakeSparkIterativeMlWorkload(double data_gb = 4.0,
                                      double iterations = 10.0);

/// Structured-streaming micro-batches with a latency SLA; scheduling
/// overhead vs partition count dominates.
Workload MakeSparkStreamingWorkload(double batch_mb = 64.0,
                                    double batches = 20.0,
                                    double interval_s = 5.0);

}  // namespace atune

#endif  // ATUNE_SYSTEMS_SPARK_SPARK_WORKLOADS_H_
