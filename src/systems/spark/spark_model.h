#ifndef ATUNE_SYSTEMS_SPARK_SPARK_MODEL_H_
#define ATUNE_SYSTEMS_SPARK_SPARK_MODEL_H_

#include <cstdint>
#include <string>

namespace atune {

/// Unified-memory-manager accounting (Spark 1.6+ model): the heap splits
/// into reserved / user memory and a unified region shared by storage
/// (cached RDDs) and execution (shuffle/sort/join buffers).
struct SparkMemoryPlan {
  double unified_mb = 0.0;    ///< memory_fraction * (heap - reserved)
  double storage_mb = 0.0;    ///< storage_fraction * unified (evictable floor)
  double execution_mb = 0.0;  ///< unified - storage
  double per_task_execution_mb = 0.0;  ///< execution / concurrent tasks
};

SparkMemoryPlan ComputeMemoryPlan(double executor_memory_mb,
                                  double memory_fraction,
                                  double storage_fraction,
                                  int64_t executor_cores);

/// Serializer behavior: kryo packs objects tighter and costs less CPU.
struct SerializerProfile {
  double memory_expansion = 1.0;   ///< in-memory size / on-disk size
  double ser_cpu_s_per_mb = 0.0;
  double deser_cpu_s_per_mb = 0.0;
};

SerializerProfile GetSerializerProfile(const std::string& name);

/// Fraction of task time lost to GC as heap pressure rises; Java
/// serialization inflates object churn. `pressure` = working bytes /
/// available heap (>=0).
double GcOverheadFraction(double pressure, bool kryo);

/// Execution-memory spill multiplier: 1 when the task working set fits,
/// otherwise extra disk traffic proportional to the shortfall.
/// Returns extra disk MB per MB of task data (0 = no spill).
double ExecutionSpillFactor(double need_mb, double available_mb);

/// True when a task's working set is so far beyond its execution memory
/// that the executor dies with an OOM (Spark kills at ~4x overcommit here).
bool TaskOom(double need_mb, double available_mb);

}  // namespace atune

#endif  // ATUNE_SYSTEMS_SPARK_SPARK_MODEL_H_
