#ifndef ATUNE_SYSTEMS_SPARK_SPARK_SYSTEM_H_
#define ATUNE_SYSTEMS_SPARK_SPARK_SYSTEM_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "core/system.h"
#include "systems/hardware.h"

namespace atune {

/// Simulated Apache Spark cluster with 12 tunable knobs — the subset of
/// spark-defaults.conf the Spark tuning literature (Section 2.4 of the
/// paper; Ernest [25], Gounaris et al. [10]) identifies as impactful:
/// executor sizing, unified memory fractions, shuffle partitions,
/// serializer, compression, broadcast threshold, speculation, locality wait.
///
/// Jobs are stage DAGs; each stage runs `tasks` over the granted cores in
/// waves. Modeled effects:
///  * executor over-allocation vs cluster capacity -> submission failure
///  * unified memory: execution vs storage split; cache misses recompute
///  * too few partitions -> per-task memory pressure, spills, OOM cliffs
///  * too many partitions -> scheduling overhead dominates
///  * kryo vs java serializer: memory footprint + CPU + GC churn
///  * broadcast-vs-shuffle join cliff at the threshold
///  * speculation recovers heterogeneity stragglers for ~10% extra work
///
/// Workload kinds: "sql_aggregate", "sql_join", "iterative_ml",
/// "streaming". Iterative/streaming workloads are unit-decomposable for
/// adaptive tuners (units = iterations / micro-batches).
class SimulatedSpark : public IterativeSystem {
 public:
  SimulatedSpark(ClusterSpec cluster, uint64_t seed);

  std::string name() const override { return "simulated-spark"; }
  const ParameterSpace& space() const override { return space_; }
  Result<ExecutionResult> Execute(const Configuration& config,
                                  const Workload& workload) override;
  std::map<std::string, double> Descriptors() const override;
  std::vector<std::string> MetricNames() const override;

  size_t NumUnits(const Workload& workload) const override;
  Result<ExecutionResult> ExecuteUnit(const Configuration& config,
                                      const Workload& workload,
                                      size_t unit_index) override;
  double ReconfigurationCost() const override { return 0.08; }

  std::unique_ptr<TunableSystem> Clone(uint64_t runs_ahead) const override;
  void SkipRuns(uint64_t n) override { run_index_ += n; }

  void set_noise_sigma(double sigma) { noise_sigma_ = sigma; }
  const ClusterSpec& cluster() const { return cluster_; }

 private:
  struct StageSpec {
    double tasks = 0.0;
    double input_mb = 0.0;        ///< data read by the stage (storage or shuffle)
    double shuffle_write_mb = 0.0;
    double cpu_s_per_mb = 0.004;
    bool reads_shuffle = false;
    bool from_cache = false;      ///< reads the cached dataset if possible
  };

  /// Simulates one unit (iteration / batch / query); `unit_fraction` scales
  /// volume for workloads that are not unit-decomposable.
  ExecutionResult RunUnit(const Configuration& config,
                          const Workload& workload) const;

  ExecutionResult RunStages(const Configuration& config,
                            const Workload& workload,
                            const std::vector<StageSpec>& stages) const;

  ClusterSpec cluster_;
  ParameterSpace space_;
  uint64_t seed_;
  /// Executions so far; run i's noise is seeded with DeriveSeed(seed_, i)
  /// so clones can replay any future run (see TunableSystem::Clone).
  uint64_t run_index_ = 0;
  double noise_sigma_ = 0.03;
};

}  // namespace atune

#endif  // ATUNE_SYSTEMS_SPARK_SPARK_SYSTEM_H_
