#include "systems/spark/spark_workloads.h"

namespace atune {

Workload MakeSparkSqlAggregateWorkload(double data_gb, double queries) {
  Workload w;
  w.name = "sql-aggregate";
  w.kind = "sql_aggregate";
  w.scale = 1.0;
  w.properties = {
      {"data_mb", data_gb * 1024.0}, {"queries", queries},
      {"shuffle_selectivity", 0.5},  {"cpu_s_per_mb", 0.004},
      {"agg_cpu_s_per_mb", 0.006},   {"locality", 0.7},
  };
  return w;
}

Workload MakeSparkJoinWorkload(double data_gb, double small_table_mb) {
  Workload w;
  w.name = "star-join";
  w.kind = "sql_join";
  w.scale = 1.0;
  w.properties = {
      {"data_mb", data_gb * 1024.0}, {"queries", 8.0},
      {"small_table_mb", small_table_mb}, {"locality", 0.7},
  };
  return w;
}

Workload MakeSparkIterativeMlWorkload(double data_gb, double iterations) {
  Workload w;
  w.name = "iterative-ml";
  w.kind = "iterative_ml";
  w.scale = 1.0;
  w.properties = {
      {"data_mb", data_gb * 1024.0}, {"iterations", iterations},
      {"cpu_s_per_mb", 0.010},       {"gradient_mb", 8.0},
      {"locality", 0.8},
  };
  return w;
}

Workload MakeSparkStreamingWorkload(double batch_mb, double batches,
                                    double interval_s) {
  Workload w;
  w.name = "streaming";
  w.kind = "streaming";
  w.scale = 1.0;
  w.properties = {
      {"batch_mb", batch_mb},        {"batches", batches},
      {"batch_interval_s", interval_s}, {"locality", 0.9},
      {"data_mb", batch_mb},
  };
  return w;
}

}  // namespace atune
