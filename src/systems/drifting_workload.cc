#include "systems/drifting_workload.h"

#include <cmath>
#include <cstdlib>
#include <utility>

#include "common/random.h"
#include "common/string_util.h"

namespace atune {

DriftSchedule DriftSchedule::Ramp(double factor, uint64_t runs) {
  DriftSchedule s;
  s.kind = Kind::kRamp;
  s.ramp_factor = factor;
  s.ramp_runs = runs == 0 ? 1 : runs;
  return s;
}

DriftSchedule DriftSchedule::PhaseShift(uint64_t at_run, double factor,
                                        std::string kind) {
  DriftSchedule s;
  s.kind = Kind::kPhaseShift;
  s.shift_at_run = at_run;
  s.shift_factor = factor;
  s.shift_kind = std::move(kind);
  return s;
}

DriftSchedule DriftSchedule::Diurnal(double amplitude, uint64_t period) {
  DriftSchedule s;
  s.kind = Kind::kDiurnal;
  s.diurnal_amplitude = amplitude;
  s.diurnal_period = period == 0 ? 1 : period;
  return s;
}

Result<DriftSchedule> DriftSchedule::Parse(const std::string& spec) {
  const size_t colon = spec.find(':');
  const std::string head = Trim(spec.substr(0, colon));
  DriftSchedule s;
  if (head == "ramp") {
    s = Ramp(s.ramp_factor, s.ramp_runs);
  } else if (head == "shift") {
    s = PhaseShift(s.shift_at_run, s.shift_factor);
  } else if (head == "diurnal") {
    s = Diurnal(s.diurnal_amplitude, s.diurnal_period);
  } else if (head == "none") {
    s.kind = Kind::kNone;
  } else {
    return Status::InvalidArgument(StrFormat(
        "drift schedule '%s': kind must be ramp|shift|diurnal|none",
        spec.c_str()));
  }
  if (colon == std::string::npos) return s;
  for (const std::string& part : Split(spec.substr(colon + 1), ',')) {
    const std::string kv = Trim(part);
    if (kv.empty()) continue;
    const size_t eq = kv.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(StrFormat(
          "drift schedule '%s': expected key=value, got '%s'", spec.c_str(),
          kv.c_str()));
    }
    const std::string key = Trim(kv.substr(0, eq));
    const std::string value = Trim(kv.substr(eq + 1));
    char* end = nullptr;
    const double num = std::strtod(value.c_str(), &end);
    const bool numeric = end != nullptr && *end == '\0' && !value.empty();
    auto need_numeric = [&]() -> Status {
      return Status::InvalidArgument(
          StrFormat("drift schedule '%s': key '%s' needs a numeric value",
                    spec.c_str(), key.c_str()));
    };
    if (key == "factor") {
      if (!numeric) return need_numeric();
      s.ramp_factor = num;
      s.shift_factor = num;
    } else if (key == "runs") {
      if (!numeric || num < 1) return need_numeric();
      s.ramp_runs = static_cast<uint64_t>(num);
    } else if (key == "at") {
      if (!numeric || num < 0) return need_numeric();
      s.shift_at_run = static_cast<uint64_t>(num);
    } else if (key == "kind") {
      s.shift_kind = value;
    } else if (key == "amplitude") {
      if (!numeric) return need_numeric();
      s.diurnal_amplitude = num;
    } else if (key == "period") {
      if (!numeric || num < 1) return need_numeric();
      s.diurnal_period = static_cast<uint64_t>(num);
    } else if (key == "jitter") {
      if (!numeric) return need_numeric();
      s.scale_jitter = num;
    } else if (key == "seed") {
      if (!numeric) return need_numeric();
      s.seed = static_cast<uint64_t>(num);
    } else {
      return Status::InvalidArgument(StrFormat(
          "drift schedule '%s': unknown key '%s'", spec.c_str(), key.c_str()));
    }
  }
  return s;
}

Workload DriftSchedule::Apply(const Workload& base, uint64_t run_index) const {
  Workload w = base;
  switch (kind) {
    case Kind::kNone:
      break;
    case Kind::kRamp: {
      const double progress =
          std::min(1.0, static_cast<double>(run_index) /
                            static_cast<double>(ramp_runs));
      w.scale *= 1.0 + (ramp_factor - 1.0) * progress;
      break;
    }
    case Kind::kPhaseShift: {
      if (run_index >= shift_at_run) {
        w.scale *= shift_factor;
        if (!shift_kind.empty()) w.kind = shift_kind;
        for (const auto& kv : shift_properties) w.properties[kv.first] = kv.second;
      }
      break;
    }
    case Kind::kDiurnal: {
      const double phase = 2.0 * M_PI * static_cast<double>(run_index) /
                           static_cast<double>(diurnal_period);
      w.scale *= 1.0 + diurnal_amplitude * std::sin(phase);
      break;
    }
  }
  if (scale_jitter > 0.0) {
    Rng rng(DeriveSeed(seed, run_index));
    w.scale *= 1.0 + rng.Uniform(-scale_jitter, scale_jitter);
  }
  if (w.scale < 1e-3) w.scale = 1e-3;  // systems assume a positive scale
  return w;
}

std::string DriftSchedule::ToString() const {
  switch (kind) {
    case Kind::kNone:
      return "none";
    case Kind::kRamp:
      return StrFormat("ramp(factor=%.3g, runs=%llu)", ramp_factor,
                       static_cast<unsigned long long>(ramp_runs));
    case Kind::kPhaseShift:
      return StrFormat("shift(at=%llu, factor=%.3g%s%s)",
                       static_cast<unsigned long long>(shift_at_run),
                       shift_factor, shift_kind.empty() ? "" : ", kind=",
                       shift_kind.c_str());
    case Kind::kDiurnal:
      return StrFormat("diurnal(amplitude=%.3g, period=%llu)",
                       diurnal_amplitude,
                       static_cast<unsigned long long>(diurnal_period));
  }
  return "none";
}

DriftingWorkload::DriftingWorkload(TunableSystem* inner, DriftSchedule schedule)
    : inner_(inner), schedule_(std::move(schedule)) {}

DriftingWorkload::DriftingWorkload(std::unique_ptr<TunableSystem> inner,
                                   DriftSchedule schedule)
    : owned_(std::move(inner)),
      inner_(owned_.get()),
      schedule_(std::move(schedule)) {}

Result<ExecutionResult> DriftingWorkload::Execute(const Configuration& config,
                                                  const Workload& workload) {
  return inner_->Execute(config, schedule_.Apply(workload, run_index_++));
}

std::unique_ptr<TunableSystem> DriftingWorkload::Clone(
    uint64_t runs_ahead) const {
  std::unique_ptr<TunableSystem> inner_clone = inner_->Clone(runs_ahead);
  if (inner_clone == nullptr) return nullptr;
  auto clone =
      std::make_unique<DriftingWorkload>(std::move(inner_clone), schedule_);
  clone->run_index_ = run_index_ + runs_ahead;
  return clone;
}

size_t DriftingWorkload::NumUnits(const Workload& workload) const {
  const IterativeSystem* iterative =
      const_cast<TunableSystem*>(inner_)->AsIterative();
  if (iterative == nullptr) return 0;
  // Peek at the current drift position without advancing the clock.
  return iterative->NumUnits(schedule_.Apply(workload, run_index_));
}

Result<ExecutionResult> DriftingWorkload::ExecuteUnit(
    const Configuration& config, const Workload& workload, size_t unit_index) {
  IterativeSystem* iterative = inner_->AsIterative();
  if (iterative == nullptr) {
    return Status::FailedPrecondition(
        StrFormat("DriftingWorkload: inner system '%s' is not iterative",
                  inner_->name().c_str()));
  }
  return iterative->ExecuteUnit(config, schedule_.Apply(workload, run_index_++),
                                unit_index);
}

double DriftingWorkload::ReconfigurationCost() const {
  const IterativeSystem* iterative =
      const_cast<TunableSystem*>(inner_)->AsIterative();
  return iterative == nullptr ? 0.0 : iterative->ReconfigurationCost();
}

}  // namespace atune
