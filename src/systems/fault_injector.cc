#include "systems/fault_injector.h"

#include <algorithm>
#include <utility>

#include "common/random.h"
#include "common/string_util.h"

namespace atune {

FaultProfile FaultProfile::FromRate(double rate, uint64_t seed) {
  FaultProfile profile;
  profile.transient_failure_rate = rate;
  profile.straggler_rate = rate * 0.5;
  profile.hang_rate = rate * 0.2;
  profile.metric_dropout_rate = rate * 0.5;
  profile.seed = seed;
  return profile;
}

FaultInjectingSystem::FaultInjectingSystem(TunableSystem* inner,
                                           FaultProfile profile)
    : inner_(inner), profile_(profile) {}

FaultInjectingSystem::FaultInjectingSystem(std::unique_ptr<TunableSystem> inner,
                                           FaultProfile profile)
    : owned_(std::move(inner)), inner_(owned_.get()), profile_(profile) {}

ExecutionResult FaultInjectingSystem::Inject(ExecutionResult result,
                                             double scale) {
  Rng rng(DeriveSeed(profile_.seed, run_index_++));
  // Fixed draw order, every decision drawn unconditionally: which faults
  // fire on run i must not depend on the inner result (or on each other),
  // or the stream would stop being a pure function of (seed, run index).
  const bool transient = rng.Bernoulli(profile_.transient_failure_rate);
  const double died_at_fraction = rng.Uniform(0.05, 0.6);
  const bool hang = rng.Bernoulli(profile_.hang_rate);
  const bool straggler = rng.Bernoulli(profile_.straggler_rate);
  const double straggler_multiplier = rng.Uniform(
      profile_.straggler_multiplier_min, profile_.straggler_multiplier_max);
  const bool dropout = rng.Bernoulli(profile_.metric_dropout_rate);

  // Config-caused failures from the inner system take precedence: the fault
  // layer must not mask what the configuration did.
  if (transient && !result.failed) {
    result.failed = true;
    result.transient = true;
    result.failure_reason = "injected: node lost mid-run";
    result.runtime_seconds *= died_at_fraction;
  } else if (hang && !result.failed) {
    result.runtime_seconds = profile_.hang_runtime_seconds * scale;
    result.metrics.clear();  // a hung run reports nothing
  } else if (straggler && !result.failed) {
    result.runtime_seconds *= straggler_multiplier;
  }

  if (dropout && !result.metrics.empty()) {
    // Drop roughly half the metrics and corrupt one survivor — the damaged
    // feature vector metric-driven tuners see after a collector glitch.
    auto it = result.metrics.begin();
    while (it != result.metrics.end()) {
      if (rng.Bernoulli(0.5)) {
        it = result.metrics.erase(it);
      } else {
        ++it;
      }
    }
    if (!result.metrics.empty()) {
      auto victim = result.metrics.begin();
      std::advance(victim, rng.UniformInt(
                               0, static_cast<int64_t>(result.metrics.size()) -
                                      1));
      victim->second *= rng.Uniform(10.0, 100.0);
    }
  }
  return result;
}

Result<ExecutionResult> FaultInjectingSystem::Execute(
    const Configuration& config, const Workload& workload) {
  auto result = inner_->Execute(config, workload);
  if (!result.ok()) return result;
  return Inject(*std::move(result), /*scale=*/1.0);
}

std::unique_ptr<TunableSystem> FaultInjectingSystem::Clone(
    uint64_t runs_ahead) const {
  std::unique_ptr<TunableSystem> inner_clone = inner_->Clone(runs_ahead);
  if (inner_clone == nullptr) return nullptr;
  auto clone = std::make_unique<FaultInjectingSystem>(std::move(inner_clone),
                                                      profile_);
  clone->run_index_ = run_index_ + runs_ahead;
  return clone;
}

size_t FaultInjectingSystem::NumUnits(const Workload& workload) const {
  const IterativeSystem* iterative =
      const_cast<TunableSystem*>(inner_)->AsIterative();
  return iterative == nullptr ? 0 : iterative->NumUnits(workload);
}

Result<ExecutionResult> FaultInjectingSystem::ExecuteUnit(
    const Configuration& config, const Workload& workload, size_t unit_index) {
  IterativeSystem* iterative = inner_->AsIterative();
  if (iterative == nullptr) {
    return Status::FailedPrecondition(
        StrFormat("FaultInjectingSystem: inner system '%s' is not iterative",
                  inner_->name().c_str()));
  }
  auto result = iterative->ExecuteUnit(config, workload, unit_index);
  if (!result.ok()) return result;
  // A hung unit should stall on the unit's time scale, not the full run's.
  const size_t units = std::max<size_t>(1, iterative->NumUnits(workload));
  return Inject(*std::move(result), /*scale=*/1.0 / static_cast<double>(units));
}

double FaultInjectingSystem::ReconfigurationCost() const {
  const IterativeSystem* iterative =
      const_cast<TunableSystem*>(inner_)->AsIterative();
  return iterative == nullptr ? 0.0 : iterative->ReconfigurationCost();
}

}  // namespace atune
