#ifndef ATUNE_SYSTEMS_SYSTEM_FACTORY_H_
#define ATUNE_SYSTEMS_SYSTEM_FACTORY_H_

#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "core/system.h"

namespace atune {

/// Name-keyed construction of the simulated systems and their workload
/// catalogs — one definition shared by atune_cli, atuned (which must rebuild
/// a session's system/workload from a name at admission AND after a restart),
/// and the bench harnesses. Names: "dbms", "mapreduce", "spark".

/// The named workloads available for `system` at `scale` (the catalog the
/// CLI's --list prints). Unknown system names return the dbms catalog —
/// callers validate the system name via MakeSystemByName first.
std::map<std::string, Workload> WorkloadsForSystem(const std::string& system,
                                                   double scale);

/// Builds a simulator by name. `nodes` == 0 picks the per-system default
/// (1 for dbms, 4 for mapreduce/spark). Unknown names are kInvalidArgument.
Result<std::unique_ptr<TunableSystem>> MakeSystemByName(
    const std::string& system, size_t nodes, uint64_t seed);

/// Resolves one workload by name (empty name = the catalog's first entry).
/// Unknown workload names are kInvalidArgument.
Result<Workload> WorkloadByName(const std::string& system,
                                const std::string& workload, double scale);

}  // namespace atune

#endif  // ATUNE_SYSTEMS_SYSTEM_FACTORY_H_
