#include "systems/hardware.h"

#include <algorithm>
#include <cmath>

namespace atune {

ClusterSpec ClusterSpec::MakeUniform(size_t n, const NodeSpec& node) {
  return ClusterSpec(std::vector<NodeSpec>(n, node));
}

ClusterSpec ClusterSpec::MakeHeterogeneous(size_t n, const NodeSpec& base,
                                           double spread, Rng* rng) {
  std::vector<NodeSpec> nodes;
  nodes.reserve(n);
  auto jitter = [&](double v) {
    double lo = std::log(1.0 - spread);
    double hi = std::log(1.0 + spread);
    return v * std::exp(rng->Uniform(lo, hi));
  };
  for (size_t i = 0; i < n; ++i) {
    NodeSpec node = base;
    node.cpu_speed = jitter(base.cpu_speed);
    node.disk_mbps = jitter(base.disk_mbps);
    node.disk_iops = jitter(base.disk_iops);
    node.network_mbps = jitter(base.network_mbps);
    nodes.push_back(node);
  }
  return ClusterSpec(std::move(nodes));
}

double ClusterSpec::TotalCores() const {
  double acc = 0.0;
  for (const NodeSpec& n : nodes_) acc += n.cores;
  return acc;
}

double ClusterSpec::TotalRamMb() const {
  double acc = 0.0;
  for (const NodeSpec& n : nodes_) acc += n.ram_mb;
  return acc;
}

double ClusterSpec::TotalDiskMbps() const {
  double acc = 0.0;
  for (const NodeSpec& n : nodes_) acc += n.disk_mbps;
  return acc;
}

double ClusterSpec::TotalNetworkMbps() const {
  double acc = 0.0;
  for (const NodeSpec& n : nodes_) acc += n.network_mbps;
  return acc;
}

double ClusterSpec::SlowestNodeFactor() const {
  if (nodes_.empty()) return 1.0;
  double mean = 0.0;
  double slowest = nodes_[0].cpu_speed;
  for (const NodeSpec& n : nodes_) {
    mean += n.cpu_speed;
    slowest = std::min(slowest, n.cpu_speed);
  }
  mean /= static_cast<double>(nodes_.size());
  if (slowest <= 0.0) return 1.0;
  return mean / slowest;
}

NodeSpec ClusterSpec::MeanNode() const {
  NodeSpec mean;
  if (nodes_.empty()) return mean;
  mean = NodeSpec{0, 0, 0, 0, 0, 0};
  for (const NodeSpec& n : nodes_) {
    mean.cores += n.cores;
    mean.ram_mb += n.ram_mb;
    mean.disk_mbps += n.disk_mbps;
    mean.disk_iops += n.disk_iops;
    mean.network_mbps += n.network_mbps;
    mean.cpu_speed += n.cpu_speed;
  }
  double k = static_cast<double>(nodes_.size());
  mean.cores /= k;
  mean.ram_mb /= k;
  mean.disk_mbps /= k;
  mean.disk_iops /= k;
  mean.network_mbps /= k;
  mean.cpu_speed /= k;
  return mean;
}

}  // namespace atune
