#ifndef ATUNE_SYSTEMS_FAULT_INJECTOR_H_
#define ATUNE_SYSTEMS_FAULT_INJECTOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/system.h"

namespace atune {

/// What the cluster does to your experiments when you are not looking.
/// Rates are per-run probabilities; each run's faults are drawn from an
/// Rng seeded with DeriveSeed(seed, run_index), so the fault sequence is a
/// pure function of (seed, run index) — independent of threading, of other
/// runs, and of the wrapped system's own noise stream. A profile with all
/// rates zero is an exact pass-through.
struct FaultProfile {
  /// Config-independent run failure (lost node, preempted container, disk
  /// hiccup): the run dies partway through and is marked transient, so the
  /// Evaluator's RobustnessPolicy may retry it.
  double transient_failure_rate = 0.0;
  /// Straggler outlier: the run completes but its runtime is inflated by a
  /// multiplier drawn uniformly from [straggler_multiplier_min, _max].
  double straggler_rate = 0.0;
  double straggler_multiplier_min = 2.0;
  double straggler_multiplier_max = 8.0;
  /// Hung run: the run never finishes on its own; its runtime becomes
  /// hang_runtime_seconds and only a timeout watchdog can reclaim it.
  double hang_rate = 0.0;
  double hang_runtime_seconds = 1.0e6;
  /// Metric dropout/corruption: roughly half the result's metrics vanish
  /// and one surviving metric is scaled by a garbage factor — the run's
  /// runtime is untouched, but metric-driven (ML/diagnostic) tuners see a
  /// damaged feature vector.
  double metric_dropout_rate = 0.0;
  /// Seed of the injector's own fault stream (disjoint from the wrapped
  /// system's measurement-noise stream by construction).
  uint64_t seed = 0xFA17;

  /// One-knob profile used by the CLI and the robustness bench: `rate` is
  /// the transient-failure rate; stragglers and metric dropout occur at
  /// half of it and hangs at a fifth of it, echoing the failure mix the
  /// cloud-tuning literature reports (transient failures dominate).
  static FaultProfile FromRate(double rate, uint64_t seed = 0xFA17);
};

/// Decorator that injects faults into any TunableSystem. It honors the
/// Clone(runs_ahead)/SkipRuns determinism contract of DESIGN.md §6 — the
/// injector keeps its own run index, offsets it in clones, and advances it
/// alongside the inner system's — so batched evaluation over clones of a
/// fault-injecting system commits exactly the runs a serial loop would
/// produce. Unit-level executions (adaptive tuners) are instrumented too.
///
/// The injector does not own the inner system unless constructed from a
/// unique_ptr.
class FaultInjectingSystem : public IterativeSystem {
 public:
  FaultInjectingSystem(TunableSystem* inner, FaultProfile profile);
  FaultInjectingSystem(std::unique_ptr<TunableSystem> inner,
                       FaultProfile profile);

  std::string name() const override { return inner_->name(); }
  const ParameterSpace& space() const override { return inner_->space(); }
  Result<ExecutionResult> Execute(const Configuration& config,
                                  const Workload& workload) override;
  std::map<std::string, double> Descriptors() const override {
    return inner_->Descriptors();
  }
  std::vector<std::string> MetricNames() const override {
    return inner_->MetricNames();
  }

  std::unique_ptr<TunableSystem> Clone(uint64_t runs_ahead) const override;
  void SkipRuns(uint64_t n) override {
    run_index_ += n;
    inner_->SkipRuns(n);
  }

  /// Iterative only when the wrapped system is; unit runs then pass
  /// through the injector as well.
  IterativeSystem* AsIterative() override {
    return inner_->AsIterative() != nullptr ? this : nullptr;
  }
  size_t NumUnits(const Workload& workload) const override;
  Result<ExecutionResult> ExecuteUnit(const Configuration& config,
                                      const Workload& workload,
                                      size_t unit_index) override;
  double ReconfigurationCost() const override;

  const FaultProfile& profile() const { return profile_; }
  TunableSystem* inner() { return inner_; }

 private:
  /// Applies this run's fault draw (if any) to a clean inner result.
  /// `scale` shrinks the hang runtime for unit-level runs so a hung unit
  /// stays on the unit's time scale.
  ExecutionResult Inject(ExecutionResult result, double scale);

  std::unique_ptr<TunableSystem> owned_;
  TunableSystem* inner_;
  FaultProfile profile_;
  /// Runs executed so far; run i's fault draw depends only on
  /// (profile_.seed, i), mirroring the simulators' noise indexing.
  uint64_t run_index_ = 0;
};

}  // namespace atune

#endif  // ATUNE_SYSTEMS_FAULT_INJECTOR_H_
