#include "systems/mapreduce/mr_workloads.h"

namespace atune {

Workload MakeMrWordCountWorkload(double input_gb) {
  Workload w;
  w.name = "wordcount";
  w.kind = "wordcount";
  w.scale = 1.0;
  w.properties = {
      {"input_mb", input_gb * 1024.0}, {"map_selectivity", 1.4},
      {"map_cpu_s_per_mb", 0.006},     {"reduce_cpu_s_per_mb", 0.002},
      {"combiner_reduction", 0.25},    {"reducer_skew", 1.15},
      {"reduce_selectivity", 0.05},    {"num_jobs", 1.0},
  };
  return w;
}

Workload MakeMrTeraSortWorkload(double input_gb) {
  Workload w;
  w.name = "terasort";
  w.kind = "terasort";
  w.scale = 1.0;
  w.properties = {
      {"input_mb", input_gb * 1024.0}, {"map_selectivity", 1.0},
      {"map_cpu_s_per_mb", 0.002},     {"reduce_cpu_s_per_mb", 0.002},
      {"combiner_reduction", 1.0},     {"reducer_skew", 1.3},
      {"reduce_selectivity", 1.0},     {"num_jobs", 1.0},
  };
  return w;
}

Workload MakeMrGrepWorkload(double input_gb) {
  Workload w;
  w.name = "grep";
  w.kind = "grep";
  w.scale = 1.0;
  w.properties = {
      {"input_mb", input_gb * 1024.0}, {"map_selectivity", 0.01},
      {"map_cpu_s_per_mb", 0.003},     {"reduce_cpu_s_per_mb", 0.001},
      {"combiner_reduction", 1.0},     {"reducer_skew", 1.05},
      {"reduce_selectivity", 1.0},     {"num_jobs", 1.0},
  };
  return w;
}

Workload MakeMrJoinWorkload(double input_gb) {
  Workload w;
  w.name = "repartition-join";
  w.kind = "join";
  w.scale = 1.0;
  w.properties = {
      {"input_mb", input_gb * 1024.0}, {"map_selectivity", 1.2},
      {"map_cpu_s_per_mb", 0.005},     {"reduce_cpu_s_per_mb", 0.006},
      {"combiner_reduction", 1.0},     {"reducer_skew", 2.5},
      {"reduce_selectivity", 0.6},     {"num_jobs", 1.0},
  };
  return w;
}

Workload MakeMrPageRankWorkload(double input_gb, double iterations) {
  Workload w;
  w.name = "pagerank";
  w.kind = "pagerank";
  w.scale = 1.0;
  w.properties = {
      {"input_mb", input_gb * 1024.0}, {"map_selectivity", 1.1},
      {"map_cpu_s_per_mb", 0.005},     {"reduce_cpu_s_per_mb", 0.004},
      {"combiner_reduction", 0.6},     {"reducer_skew", 1.8},
      {"reduce_selectivity", 1.0},     {"num_jobs", iterations},
  };
  return w;
}

Workload MakeMrAnalyticalTask(const std::string& op, double data_mb) {
  Workload w;
  w.name = "analytical-" + op;
  w.kind = op;
  w.scale = 1.0;
  if (op == "scan") {
    w.properties = {
        {"input_mb", data_mb},        {"map_selectivity", 0.05},
        {"map_cpu_s_per_mb", 0.003},  {"reduce_cpu_s_per_mb", 0.001},
        {"combiner_reduction", 1.0},  {"reducer_skew", 1.05},
        {"reduce_selectivity", 1.0},  {"num_jobs", 1.0},
    };
  } else if (op == "aggregate") {
    w.properties = {
        {"input_mb", data_mb},        {"map_selectivity", 0.8},
        {"map_cpu_s_per_mb", 0.004},  {"reduce_cpu_s_per_mb", 0.003},
        {"combiner_reduction", 0.3},  {"reducer_skew", 1.2},
        {"reduce_selectivity", 0.1},  {"num_jobs", 1.0},
    };
  } else {  // join
    w.properties = {
        {"input_mb", data_mb},        {"map_selectivity", 1.2},
        {"map_cpu_s_per_mb", 0.005},  {"reduce_cpu_s_per_mb", 0.006},
        {"combiner_reduction", 1.0},  {"reducer_skew", 2.0},
        {"reduce_selectivity", 0.6},  {"num_jobs", 1.0},
    };
  }
  return w;
}

}  // namespace atune
