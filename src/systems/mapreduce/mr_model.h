#ifndef ATUNE_SYSTEMS_MAPREDUCE_MR_MODEL_H_
#define ATUNE_SYSTEMS_MAPREDUCE_MR_MODEL_H_

#include <cstdint>

namespace atune {

/// Analytical sub-models of Hadoop MapReduce task behavior (Starfish-style
/// phase decomposition [Herodotou & Babu, 2011]). SimulatedMapReduce
/// composes these into a job model.

/// Map-side spill/merge traffic.
struct SpillProfile {
  double spill_count = 0.0;     ///< number of spill files produced
  double merge_passes = 0.0;    ///< extra multi-pass merges beyond 1
  double disk_write_mb = 0.0;   ///< total map-side bytes written
  double disk_read_mb = 0.0;    ///< total map-side bytes re-read for merges
};

/// Computes spill behavior for one map task producing `output_mb` of
/// key-value data with a sort buffer of `io_sort_mb` MB filled to
/// `spill_percent` before each spill, merged with fan-in `io_sort_factor`.
SpillProfile ComputeMapSpill(double output_mb, double io_sort_mb,
                             double spill_percent, int64_t io_sort_factor);

/// Reduce-side merge traffic for one reducer fetching `input_mb` with
/// `memory_mb` of merge memory and fan-in `io_sort_factor`.
SpillProfile ComputeReduceMerge(double input_mb, double memory_mb,
                                int64_t io_sort_factor);

/// Number of task waves for `tasks` tasks over `slots` concurrent slots.
double Waves(double tasks, double slots);

/// Effective shuffle throughput (MB/s) for `reducers` fetching in parallel
/// with `parallel_copies` fetch threads each, over a cluster with
/// `aggregate_net_mbps` total bandwidth. Few copies leave fetch latency
/// exposed; throughput saturates at the network limit.
double ShuffleThroughputMbps(double aggregate_net_mbps, double reducers,
                             int64_t parallel_copies);

}  // namespace atune

#endif  // ATUNE_SYSTEMS_MAPREDUCE_MR_MODEL_H_
