#include "systems/mapreduce/mr_model.h"

#include <algorithm>
#include <cmath>

namespace atune {

SpillProfile ComputeMapSpill(double output_mb, double io_sort_mb,
                             double spill_percent, int64_t io_sort_factor) {
  SpillProfile p;
  if (output_mb <= 0.0) return p;
  double usable = std::max(1.0, io_sort_mb * spill_percent);
  p.spill_count = std::max(1.0, std::ceil(output_mb / usable));
  // Every byte is written once in spill files...
  p.disk_write_mb = output_mb;
  // ...and if there are more spill files than the merge fan-in, multi-pass
  // merging rereads and rewrites the data.
  double fanin = std::max<double>(2.0, static_cast<double>(io_sort_factor));
  if (p.spill_count > 1.0) {
    p.merge_passes = std::max(
        1.0, std::ceil(std::log(p.spill_count) / std::log(fanin)));
    // The final merge pass produces the map output file; extra passes do a
    // full read+write each.
    double extra = p.merge_passes;  // includes the mandatory final merge
    p.disk_read_mb = output_mb * extra;
    p.disk_write_mb += output_mb * extra;
  }
  return p;
}

SpillProfile ComputeReduceMerge(double input_mb, double memory_mb,
                                int64_t io_sort_factor) {
  SpillProfile p;
  if (input_mb <= 0.0) return p;
  double in_memory = std::max(1.0, memory_mb * 0.7);
  if (input_mb <= in_memory) return p;  // pure in-memory merge
  double segments = std::ceil(input_mb / in_memory);
  p.spill_count = segments;
  double fanin = std::max<double>(2.0, static_cast<double>(io_sort_factor));
  p.merge_passes = std::max(
      1.0, std::ceil(std::log(segments) / std::log(fanin)));
  p.disk_write_mb = input_mb * p.merge_passes;
  p.disk_read_mb = input_mb * p.merge_passes;
  return p;
}

double Waves(double tasks, double slots) {
  if (slots <= 0.0) return tasks;
  return std::ceil(tasks / slots);
}

double ShuffleThroughputMbps(double aggregate_net_mbps, double reducers,
                             int64_t parallel_copies) {
  // Each fetch thread sustains ~10 MB/s against remote map outputs
  // (latency + seek bound); parallel copies scale that until the network
  // saturates.
  double per_reducer =
      10.0 * std::max<double>(1.0, static_cast<double>(parallel_copies));
  double demand = per_reducer * std::max(1.0, reducers);
  return std::max(1e-3, std::min(demand, aggregate_net_mbps));
}

}  // namespace atune
