#ifndef ATUNE_SYSTEMS_MAPREDUCE_MR_WORKLOADS_H_
#define ATUNE_SYSTEMS_MAPREDUCE_MR_WORKLOADS_H_

#include "core/system.h"

namespace atune {

/// Canonical MapReduce benchmark jobs (the workloads the Hadoop tuning
/// literature evaluates on). `input_gb` sizes the input dataset.

/// WordCount: map selectivity ~1.4 (words + counts), combiner collapses
/// duplicates to ~25%, CPU-light reduce. The classic combiner showcase.
Workload MakeMrWordCountWorkload(double input_gb = 10.0);

/// TeraSort: selectivity 1.0, no combiner benefit, shuffle- and
/// disk-bound; reducer count/skew dominate.
Workload MakeMrTeraSortWorkload(double input_gb = 10.0);

/// Grep/selection: tiny map output; map-phase dominated (the kind of job
/// where Hadoop looked worst against parallel DBMSs [18]).
Workload MakeMrGrepWorkload(double input_gb = 10.0);

/// Repartition join: selectivity >1, strong reducer skew.
Workload MakeMrJoinWorkload(double input_gb = 10.0);

/// PageRank-like chain of `iterations` identical jobs (the iterative
/// workload adaptive tuners exploit; units = jobs).
Workload MakeMrPageRankWorkload(double input_gb = 5.0, double iterations = 8);

/// Analytical task matching MakeDbmsAnalyticalTask for the Hadoop-vs-DBMS
/// comparison: op in {"scan", "aggregate", "join"} over `data_mb`.
Workload MakeMrAnalyticalTask(const std::string& op, double data_mb);

}  // namespace atune

#endif  // ATUNE_SYSTEMS_MAPREDUCE_MR_WORKLOADS_H_
