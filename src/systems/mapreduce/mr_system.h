#ifndef ATUNE_SYSTEMS_MAPREDUCE_MR_SYSTEM_H_
#define ATUNE_SYSTEMS_MAPREDUCE_MR_SYSTEM_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "core/system.h"
#include "systems/hardware.h"

namespace atune {

/// Simulated Hadoop MapReduce cluster with 14 tunable job/cluster knobs
/// (the heavily-tuned subset of mapred-site.xml identified by Starfish [13],
/// MRTuner [21], and the Hadoop studies [2, 14]): split size, slot counts,
/// reducer count, sort buffer, spill threshold, merge fan-in, map-output
/// compression, combiner, slowstart, JVM reuse, shuffle copies, task heap.
///
/// Jobs decompose Starfish-style into map (read/map/collect/spill/merge),
/// shuffle, and reduce (merge/reduce/write) phases, with:
///  * wave effects from slot counts vs task counts
///  * the 1-reducer default catastrophe and reducer skew stragglers
///  * sort-buffer spills with multi-pass merges (io.sort.mb/factor/percent)
///  * compression CPU/network tradeoff, combiner benefit where applicable
///  * slot memory oversubscription -> task OOM failures
///  * heterogeneity stragglers via the cluster spec
///
/// Workload kinds: "wordcount", "terasort", "grep", "join", "pagerank"
/// (iterative; units = iterations). See MakeMr*Workload().
class SimulatedMapReduce : public IterativeSystem {
 public:
  SimulatedMapReduce(ClusterSpec cluster, uint64_t seed);

  std::string name() const override { return "simulated-mapreduce"; }
  const ParameterSpace& space() const override { return space_; }
  Result<ExecutionResult> Execute(const Configuration& config,
                                  const Workload& workload) override;
  std::map<std::string, double> Descriptors() const override;
  std::vector<std::string> MetricNames() const override;

  size_t NumUnits(const Workload& workload) const override;
  Result<ExecutionResult> ExecuteUnit(const Configuration& config,
                                      const Workload& workload,
                                      size_t unit_index) override;
  double ReconfigurationCost() const override { return 0.02; }

  std::unique_ptr<TunableSystem> Clone(uint64_t runs_ahead) const override;
  void SkipRuns(uint64_t n) override { run_index_ += n; }

  void set_noise_sigma(double sigma) { noise_sigma_ = sigma; }
  const ClusterSpec& cluster() const { return cluster_; }

 private:
  /// Simulates one job over `input_mb` of data; shared by Execute (whole
  /// workload = num_jobs chained jobs) and ExecuteUnit (one job).
  ExecutionResult RunJob(const Configuration& config,
                         const Workload& workload) const;

  ClusterSpec cluster_;
  ParameterSpace space_;
  uint64_t seed_;
  /// Executions so far; run i's noise is seeded with DeriveSeed(seed_, i)
  /// so clones can replay any future run (see TunableSystem::Clone).
  uint64_t run_index_ = 0;
  double noise_sigma_ = 0.03;
};

}  // namespace atune

#endif  // ATUNE_SYSTEMS_MAPREDUCE_MR_SYSTEM_H_
