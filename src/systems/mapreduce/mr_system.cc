#include "systems/mapreduce/mr_system.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "systems/dbms/dbms_model.h"  // CompressionProfile
#include "systems/mapreduce/mr_model.h"

namespace atune {

namespace {
constexpr double kTaskStartupSec = 2.0;   // JVM launch + localization
constexpr double kReusedStartupSec = 0.3;
constexpr double kSchedulingOverheadSec = 0.2;  // per task, jobtracker side
constexpr double kReplication = 2.0;            // effective extra output writes
}  // namespace

SimulatedMapReduce::SimulatedMapReduce(ClusterSpec cluster, uint64_t seed)
    : cluster_(std::move(cluster)), seed_(seed) {
  auto add = [this](ParameterDef def) {
    Status s = space_.Add(std::move(def));
    (void)s;
  };
  add(ParameterDef::Int("dfs_block_mb", 32, 512, 64,
                        "input split / DFS block size", true, "MB"));
  add(ParameterDef::Int("map_slots_per_node", 1, 16, 2,
                        "concurrent map tasks per node"));
  add(ParameterDef::Int("reduce_slots_per_node", 1, 16, 2,
                        "concurrent reduce tasks per node"));
  add(ParameterDef::Int("num_reducers", 1, 512, 1,
                        "reduce task count (mapred.reduce.tasks)", true));
  add(ParameterDef::Int("io_sort_mb", 32, 2048, 100,
                        "map-side sort buffer", true, "MB"));
  add(ParameterDef::Double("io_sort_spill_percent", 0.5, 0.95, 0.8,
                           "buffer fill threshold that triggers a spill"));
  add(ParameterDef::Int("io_sort_factor", 10, 200, 10,
                        "merge fan-in for spills/segments", true));
  add(ParameterDef::Bool("compress_map_output", false,
                         "compress intermediate map output"));
  add(ParameterDef::Categorical("compress_codec", {"lz4", "zlib"}, 1,
                                "codec for intermediate compression"));
  add(ParameterDef::Bool("combiner", false,
                         "run the combiner during spills"));
  add(ParameterDef::Double("slowstart", 0.05, 1.0, 0.05,
                           "map completion fraction before reducers start"));
  add(ParameterDef::Bool("jvm_reuse", false,
                         "reuse task JVMs across tasks"));
  add(ParameterDef::Int("shuffle_parallel_copies", 5, 100, 5,
                        "parallel fetch threads per reducer", true));
  add(ParameterDef::Int("task_memory_mb", 256, 4096, 512,
                        "heap per task slot", true, "MB"));
}

std::map<std::string, double> SimulatedMapReduce::Descriptors() const {
  NodeSpec mean = cluster_.MeanNode();
  return {
      {"num_nodes", static_cast<double>(cluster_.num_nodes())},
      {"total_ram_mb", cluster_.TotalRamMb()},
      {"node_ram_mb", mean.ram_mb},
      {"total_cores", cluster_.TotalCores()},
      {"cores_per_node", mean.cores},
      {"disk_mbps", mean.disk_mbps},
      {"network_mbps", mean.network_mbps},
  };
}

std::vector<std::string> SimulatedMapReduce::MetricNames() const {
  return {"map_time_s",    "shuffle_time_s", "reduce_time_s",
          "startup_s",     "map_tasks",      "map_waves",
          "reduce_waves",  "spill_count",    "spill_io_mb",
          "shuffle_mb",    "output_mb",      "straggler_factor",
          "cpu_time_s",    "mem_per_node_mb", "map_func_cpu_s",
          "reduce_func_cpu_s", "reducer_skew_measured"};
}

size_t SimulatedMapReduce::NumUnits(const Workload& workload) const {
  return static_cast<size_t>(std::max(1.0, workload.PropertyOr("num_jobs", 1.0)));
}

Result<ExecutionResult> SimulatedMapReduce::ExecuteUnit(
    const Configuration& config, const Workload& workload, size_t unit_index) {
  (void)unit_index;
  ATUNE_RETURN_IF_ERROR(space_.ValidateConfiguration(config));
  ExecutionResult r = RunJob(config, workload);
  Rng run_rng(DeriveSeed(seed_, run_index_++));
  if (noise_sigma_ > 0.0 && !r.failed) {
    r.runtime_seconds *= std::exp(run_rng.Normal(0.0, noise_sigma_));
  }
  return r;
}

Result<ExecutionResult> SimulatedMapReduce::Execute(const Configuration& config,
                                                    const Workload& workload) {
  ATUNE_RETURN_IF_ERROR(space_.ValidateConfiguration(config));
  size_t jobs = NumUnits(workload);
  ExecutionResult total;
  for (size_t j = 0; j < jobs; ++j) {
    ExecutionResult r = RunJob(config, workload);
    total.runtime_seconds += r.runtime_seconds;
    for (const auto& [k, v] : r.metrics) total.metrics[k] += v;
    if (r.failed) {
      total.failed = true;
      total.failure_reason = r.failure_reason;
      break;
    }
  }
  Rng run_rng(DeriveSeed(seed_, run_index_++));
  if (noise_sigma_ > 0.0 && !total.failed) {
    double noise = std::exp(run_rng.Normal(0.0, noise_sigma_));
    if (run_rng.Bernoulli(0.03)) noise *= 1.3;  // straggler hiccup
    total.runtime_seconds *= noise;
  }
  return total;
}

std::unique_ptr<TunableSystem> SimulatedMapReduce::Clone(
    uint64_t runs_ahead) const {
  auto clone = std::make_unique<SimulatedMapReduce>(cluster_, seed_);
  clone->noise_sigma_ = noise_sigma_;
  clone->run_index_ = run_index_ + runs_ahead;
  return clone;
}

ExecutionResult SimulatedMapReduce::RunJob(const Configuration& config,
                                           const Workload& workload) const {
  ExecutionResult r;
  const double input_mb =
      workload.PropertyOr("input_mb", 10240.0) * workload.scale;
  const double map_selectivity = workload.PropertyOr("map_selectivity", 1.0);
  const double map_cpu = workload.PropertyOr("map_cpu_s_per_mb", 0.004);
  const double reduce_cpu = workload.PropertyOr("reduce_cpu_s_per_mb", 0.003);
  const double combiner_reduction =
      workload.PropertyOr("combiner_reduction", 1.0);
  const double reducer_skew = workload.PropertyOr("reducer_skew", 1.2);
  const double reduce_selectivity =
      workload.PropertyOr("reduce_selectivity", 1.0);

  const int64_t block_mb = config.IntOr("dfs_block_mb", 64);
  const int64_t map_slots = config.IntOr("map_slots_per_node", 2);
  const int64_t reduce_slots = config.IntOr("reduce_slots_per_node", 2);
  const int64_t reducers = config.IntOr("num_reducers", 1);
  const int64_t io_sort_mb = config.IntOr("io_sort_mb", 100);
  const double spill_pct = config.DoubleOr("io_sort_spill_percent", 0.8);
  const int64_t io_sort_factor = config.IntOr("io_sort_factor", 10);
  const bool compress = config.BoolOr("compress_map_output", false);
  const std::string codec_name = config.StringOr("compress_codec", "zlib");
  const bool combiner = config.BoolOr("combiner", false);
  const double slowstart = config.DoubleOr("slowstart", 0.05);
  const bool jvm_reuse = config.BoolOr("jvm_reuse", false);
  const int64_t copies = config.IntOr("shuffle_parallel_copies", 5);
  const int64_t task_mem = config.IntOr("task_memory_mb", 512);

  const size_t nodes = std::max<size_t>(cluster_.num_nodes(), 1);
  const NodeSpec mean = cluster_.MeanNode();
  const double cpu_speed = mean.cpu_speed;

  // --- hard failure cliffs --------------------------------------------
  const double mem_per_node =
      static_cast<double>((map_slots + reduce_slots) * task_mem);
  r.metrics["mem_per_node_mb"] = mem_per_node;
  if (mem_per_node > mean.ram_mb * 1.1) {
    r.failed = true;
    r.failure_reason = StrFormat(
        "task slots oversubscribe node memory: %.0f MB heap on %.0f MB nodes",
        mem_per_node, mean.ram_mb);
    r.runtime_seconds = kFailedRunWallClockSec /
        std::max(1.0, workload.PropertyOr("num_jobs", 1.0));
    return r;
  }
  if (static_cast<double>(io_sort_mb) > static_cast<double>(task_mem) * 0.8) {
    r.failed = true;
    r.failure_reason = StrFormat(
        "io.sort.mb (%lld MB) exceeds task heap budget (%lld MB)",
        static_cast<long long>(io_sort_mb), static_cast<long long>(task_mem));
    r.runtime_seconds = kFailedRunWallClockSec /
        std::max(1.0, workload.PropertyOr("num_jobs", 1.0));
    return r;
  }

  // --- map phase --------------------------------------------------------
  const double maps =
      std::max(1.0, std::ceil(input_mb / static_cast<double>(block_mb)));
  const double map_slot_total =
      static_cast<double>(map_slots) * static_cast<double>(nodes);
  const double map_waves = Waves(maps, map_slot_total);

  double map_out_mb_per_task = static_cast<double>(block_mb) * map_selectivity;
  double combine_cpu_s = 0.0;
  if (combiner && combiner_reduction < 1.0) {
    combine_cpu_s = map_out_mb_per_task * 0.002 / cpu_speed;
    map_out_mb_per_task *= combiner_reduction;
  }
  const CompressionProfile codec =
      compress ? GetCompressionProfile(codec_name) : CompressionProfile{};
  const double disk_out_per_task = map_out_mb_per_task * codec.ratio;
  double compress_cpu_s =
      compress ? map_out_mb_per_task * codec.compress_cpu_s_per_mb : 0.0;

  const SpillProfile spill =
      ComputeMapSpill(disk_out_per_task, static_cast<double>(io_sort_mb),
                      spill_pct, io_sort_factor);

  // Per-node disk bandwidth is shared by the slots running on that node.
  const double disk_per_slot =
      mean.disk_mbps / std::max(1.0, static_cast<double>(map_slots));
  const double startup =
      jvm_reuse ? kReusedStartupSec : kTaskStartupSec;
  const double map_task_time =
      startup + kSchedulingOverheadSec +
      static_cast<double>(block_mb) / disk_per_slot +  // read split
      static_cast<double>(block_mb) * map_cpu / cpu_speed +  // map function
      combine_cpu_s + compress_cpu_s +
      (spill.disk_write_mb + spill.disk_read_mb) / disk_per_slot;
  // Heterogeneity tax: with a single wave the slowest node gates the
  // phase; with many waves fast nodes simply absorb more tasks and the
  // imbalance averages out.
  const double straggler_raw =
      std::pow(cluster_.SlowestNodeFactor(), nodes > 1 ? 0.8 : 0.0);
  auto phase_straggler = [straggler_raw](double waves) {
    return 1.0 + (straggler_raw - 1.0) / std::sqrt(std::max(waves, 1.0));
  };
  const double straggler = phase_straggler(map_waves);
  // First wave always pays full JVM startup even with reuse.
  const double first_wave_extra =
      jvm_reuse ? (kTaskStartupSec - kReusedStartupSec) : 0.0;
  const double map_phase_s =
      (map_waves * map_task_time + first_wave_extra) * straggler;

  // --- shuffle phase ------------------------------------------------------
  const double shuffle_mb = disk_out_per_task * maps;
  const double shuffle_bw = ShuffleThroughputMbps(
      cluster_.TotalNetworkMbps(), static_cast<double>(reducers), copies);
  double shuffle_s = shuffle_mb / shuffle_bw;
  const double decompress_cpu_total =
      compress ? map_out_mb_per_task * maps * codec.decompress_cpu_s_per_mb
               : 0.0;
  // Early-started reducers overlap fetch with remaining map waves.
  const double overlap = (1.0 - std::clamp(slowstart, 0.0, 1.0)) *
                         map_phase_s * (1.0 - 1.0 / std::max(1.0, map_waves));
  shuffle_s = std::max(shuffle_s - overlap, shuffle_mb / shuffle_bw * 0.15);

  // --- reduce phase ---------------------------------------------------
  const double reduce_slot_total =
      static_cast<double>(reduce_slots) * static_cast<double>(nodes);
  const double reduce_waves =
      Waves(static_cast<double>(reducers), reduce_slot_total);
  // Skew: the largest reducer gets `reducer_skew` times the mean share.
  const double mean_reduce_mb =
      map_out_mb_per_task * maps / static_cast<double>(reducers);
  const double max_reduce_mb = mean_reduce_mb * reducer_skew;
  const SpillProfile rmerge = ComputeReduceMerge(
      max_reduce_mb, static_cast<double>(task_mem) * 0.6, io_sort_factor);
  const double disk_per_rslot =
      mean.disk_mbps / std::max(1.0, static_cast<double>(reduce_slots));
  const double output_mb = mean_reduce_mb * reduce_selectivity;
  const double reduce_task_time =
      startup + kSchedulingOverheadSec +
      (rmerge.disk_write_mb + rmerge.disk_read_mb) / disk_per_rslot +
      max_reduce_mb * reduce_cpu / cpu_speed +
      output_mb * reducer_skew * kReplication / disk_per_rslot;
  const double reduce_phase_s = reduce_waves * reduce_task_time *
                                    phase_straggler(reduce_waves) +
                                decompress_cpu_total /
                                    std::max(1.0, reduce_slot_total) / cpu_speed;

  double runtime = map_phase_s + shuffle_s + reduce_phase_s + 3.0;  // job setup

  r.runtime_seconds = runtime;
  r.metrics["map_time_s"] = map_phase_s;
  r.metrics["shuffle_time_s"] = shuffle_s;
  r.metrics["reduce_time_s"] = reduce_phase_s;
  r.metrics["startup_s"] = startup * (maps + static_cast<double>(reducers));
  r.metrics["map_tasks"] = maps;
  r.metrics["map_waves"] = map_waves;
  r.metrics["reduce_waves"] = reduce_waves;
  r.metrics["spill_count"] = spill.spill_count * maps;
  r.metrics["spill_io_mb"] =
      (spill.disk_write_mb + spill.disk_read_mb) * maps +
      (rmerge.disk_write_mb + rmerge.disk_read_mb) *
          static_cast<double>(reducers);
  r.metrics["shuffle_mb"] = shuffle_mb;
  r.metrics["output_mb"] = output_mb * static_cast<double>(reducers);
  r.metrics["straggler_factor"] = straggler;
  r.metrics["cpu_time_s"] =
      input_mb * map_cpu / cpu_speed +
      map_out_mb_per_task * maps * reduce_cpu / cpu_speed +
      (combine_cpu_s + compress_cpu_s) * maps + decompress_cpu_total;
  // Per-phase user-function CPU, as Hadoop task counters report it
  // (profilers like Starfish build job profiles from these).
  r.metrics["map_func_cpu_s"] = input_mb * map_cpu / cpu_speed;
  r.metrics["reduce_func_cpu_s"] =
      map_out_mb_per_task * maps * reduce_cpu / cpu_speed;
  r.metrics["reducer_skew_measured"] = reducer_skew;
  return r;
}

}  // namespace atune
