#ifndef ATUNE_SYSTEMS_DRIFTING_WORKLOAD_H_
#define ATUNE_SYSTEMS_DRIFTING_WORKLOAD_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/system.h"

namespace atune {

/// Deterministic time-varying workload schedule: how the workload a system
/// actually sees changes as a pure function of the drift clock (the run
/// index). Real deployments tune moving targets — the load grows, the query
/// mix flips at a release boundary, traffic follows the sun — and every one
/// of those families is representable here:
///
///   kRamp       gradual load growth: the scale factor ramps linearly from
///               1x to ramp_factor over ramp_runs executions, then holds.
///   kPhaseShift sudden regime change: at execution shift_at_run the scale
///               jumps by shift_factor, the workload kind optionally flips
///               (e.g. oltp -> olap), and shift_properties overlay the
///               declared properties. Before the shift, a pass-through.
///   kDiurnal    cyclic load: scale is modulated by
///               1 + amplitude * sin(2*pi * run / period).
///
/// An optional multiplicative scale jitter is drawn per run from an Rng
/// seeded with DeriveSeed(seed, run_index), mirroring the simulators' noise
/// indexing — so the jittered schedule is still a pure function of
/// (schedule, run index), independent of threading and of the wrapped
/// system's own noise stream. kNone (the default) is an exact pass-through.
struct DriftSchedule {
  enum class Kind { kNone, kRamp, kPhaseShift, kDiurnal };

  Kind kind = Kind::kNone;

  /// kRamp: final scale multiplier and the number of runs the ramp spans.
  double ramp_factor = 2.0;
  uint64_t ramp_runs = 40;

  /// kPhaseShift: first run index the shifted regime applies to, the scale
  /// multiplier it applies, the workload kind it switches to ("" = keep),
  /// and properties overlaid onto the declared ones.
  uint64_t shift_at_run = 25;
  double shift_factor = 1.6;
  std::string shift_kind;
  std::map<std::string, double> shift_properties;

  /// kDiurnal: relative amplitude in [0,1) and cycle length in runs.
  double diurnal_amplitude = 0.4;
  uint64_t diurnal_period = 32;

  /// Multiplicative per-run scale jitter: scale *= 1 + U(-j, +j) drawn from
  /// Rng(DeriveSeed(seed, run_index)). 0 = off.
  double scale_jitter = 0.0;
  uint64_t seed = 0xD21F7;

  static DriftSchedule Ramp(double factor, uint64_t runs);
  static DriftSchedule PhaseShift(uint64_t at_run, double factor,
                                  std::string kind = "");
  static DriftSchedule Diurnal(double amplitude, uint64_t period);

  /// Parses the CLI spec `name[:key=value,...]`:
  ///   ramp[:factor=2.0,runs=40]
  ///   shift[:at=25,factor=1.6,kind=olap]
  ///   diurnal[:amplitude=0.4,period=32]
  /// plus the cross-cutting keys jitter= and seed= for any kind.
  static Result<DriftSchedule> Parse(const std::string& spec);

  /// The workload the system sees at drift-clock position `run_index`.
  /// Pure: same (schedule, base, run_index) -> bitwise-identical workload.
  Workload Apply(const Workload& base, uint64_t run_index) const;

  std::string ToString() const;
};

/// Decorator that makes any TunableSystem's workload drift over time. It
/// honors the Clone(runs_ahead)/SkipRuns determinism contract of DESIGN.md
/// §6 exactly like FaultInjectingSystem: the decorator keeps its own drift
/// clock (run index), offsets it in clones, and advances it alongside the
/// inner system's noise cursor — so batched evaluation over clones commits
/// exactly the runs a serial loop would produce, and composition under
/// FaultInjectingSystem (in either nesting order) stays bit-identical.
///
/// Every execution — full run or unit run — advances the drift clock by one
/// step, mirroring the fault injector's per-execution fault stream. Unit
/// runs therefore drift *within* a composite run, which is precisely the
/// moving target adaptive tuners exist for.
///
/// Does not own the inner system unless constructed from a unique_ptr.
class DriftingWorkload : public IterativeSystem {
 public:
  DriftingWorkload(TunableSystem* inner, DriftSchedule schedule);
  DriftingWorkload(std::unique_ptr<TunableSystem> inner,
                   DriftSchedule schedule);

  std::string name() const override { return inner_->name(); }
  const ParameterSpace& space() const override { return inner_->space(); }
  Result<ExecutionResult> Execute(const Configuration& config,
                                  const Workload& workload) override;
  std::map<std::string, double> Descriptors() const override {
    return inner_->Descriptors();
  }
  std::vector<std::string> MetricNames() const override {
    return inner_->MetricNames();
  }

  std::unique_ptr<TunableSystem> Clone(uint64_t runs_ahead) const override;
  void SkipRuns(uint64_t n) override {
    run_index_ += n;
    inner_->SkipRuns(n);
  }

  /// Iterative only when the wrapped system is; unit runs then drift too.
  IterativeSystem* AsIterative() override {
    return inner_->AsIterative() != nullptr ? this : nullptr;
  }
  size_t NumUnits(const Workload& workload) const override;
  Result<ExecutionResult> ExecuteUnit(const Configuration& config,
                                      const Workload& workload,
                                      size_t unit_index) override;
  double ReconfigurationCost() const override;

  const DriftSchedule& schedule() const { return schedule_; }
  uint64_t run_index() const { return run_index_; }
  TunableSystem* inner() { return inner_; }

 private:
  std::unique_ptr<TunableSystem> owned_;
  TunableSystem* inner_;
  DriftSchedule schedule_;
  /// Drift clock: executions so far. The workload seen by execution i
  /// depends only on (schedule_, i), mirroring the simulators' noise
  /// indexing — which is what keeps Clone/SkipRuns bit-identical.
  uint64_t run_index_ = 0;
};

}  // namespace atune

#endif  // ATUNE_SYSTEMS_DRIFTING_WORKLOAD_H_
