#include "systems/dbms/dbms_model.h"

#include <algorithm>
#include <cmath>

namespace atune {

double BufferHitRatio(double pool_mb, double working_set_mb, double skew) {
  if (working_set_mb <= 0.0) return 1.0;
  double coverage = std::clamp(pool_mb / working_set_mb, 0.0, 1.0);
  // Skewed access concentrates hits on a small hot set: raising the miss
  // curve exponent makes early megabytes of cache much more valuable.
  double exponent = 1.0 + 3.0 * std::max(0.0, skew);
  return 1.0 - std::pow(1.0 - coverage, exponent);
}

double EffectiveScanBandwidthMbps(const ClusterSpec& cluster,
                                  double seq_fraction, int64_t io_concurrency,
                                  int64_t prefetch_depth) {
  seq_fraction = std::clamp(seq_fraction, 0.0, 1.0);
  double total = 0.0;
  for (const NodeSpec& node : cluster.nodes()) {
    double seq_bw = node.disk_mbps;
    // Random reads move 8KB per IOP; prefetching converts some random
    // latency into overlapped transfers (log-diminishing benefit, up to 4x).
    double prefetch_boost =
        1.0 + std::min(3.0, 0.75 * std::log2(1.0 + static_cast<double>(
                                                       prefetch_depth)));
    double rand_bw = node.disk_iops * (8.0 / 1024.0) * prefetch_boost;
    // io_concurrency raises utilization toward the device limit; one
    // outstanding request leaves the disk idle half the time.
    double util = 1.0 - 0.5 / std::max<double>(1.0, static_cast<double>(
                                                        io_concurrency));
    total += util * (seq_fraction * seq_bw + (1.0 - seq_fraction) * rand_bw);
  }
  return std::max(total, 1e-3);
}

CompressionProfile GetCompressionProfile(const std::string& codec) {
  if (codec == "lz4") {
    return CompressionProfile{0.60, 0.0008, 0.0004};
  }
  if (codec == "zlib") {
    return CompressionProfile{0.42, 0.0060, 0.0015};
  }
  return CompressionProfile{};  // none
}

double SpillExtraIoMb(double need_mb, double work_mem_mb,
                      int64_t merge_fanin) {
  if (need_mb <= work_mem_mb || work_mem_mb <= 0.0) return 0.0;
  double fanin = std::max<double>(2.0, static_cast<double>(merge_fanin));
  // External merge sort: initial runs of size work_mem, then
  // ceil(log_fanin(runs)) merge passes, each rewriting the data once.
  double runs = need_mb / work_mem_mb;
  double passes = std::ceil(std::log(runs) / std::log(fanin));
  passes = std::max(passes, 1.0);
  // Every pass writes + reads the full operand.
  return 2.0 * need_mb * passes;
}

double ParallelSpeedup(double workers, double cores, double serial_fraction) {
  double w = std::clamp(workers, 1.0, std::max(1.0, cores));
  serial_fraction = std::clamp(serial_fraction, 0.0, 1.0);
  return 1.0 / (serial_fraction + (1.0 - serial_fraction) / w);
}

LockOutcome ComputeLockOutcome(double clients, double skew,
                               double deadlock_timeout_ms, double txns) {
  LockOutcome out;
  if (txns <= 0.0 || clients <= 1.0) return out;
  // Probability a transaction hits a held lock grows with concurrency and
  // skew (hot rows).
  double conflict_prob =
      std::clamp(0.002 * (clients - 1.0) * (0.5 + 2.0 * skew), 0.0, 0.8);
  // Typical time the blocker still holds the lock.
  double hold_ms = 4.0 * (1.0 + clients / 32.0);
  // A waiter either gets the lock when the holder commits or is aborted by
  // the deadlock timeout firing first.
  double wait_ms = std::min(deadlock_timeout_ms, hold_ms * 3.0);
  // Timeouts shorter than typical hold times abort innocent waiters; the
  // probability is conditional on having hit a conflict at all.
  double cond_abort = std::exp(-deadlock_timeout_ms / (hold_ms * 2.0));
  out.abort_fraction = conflict_prob * cond_abort;
  // Aborted waiters retry: each extra attempt redoes the transaction's
  // work and, after a backoff of ~2 timeouts (to avoid an immediate
  // re-collision), waits on the same hot lock again.
  double extra_attempts = std::min(5.0, cond_abort / (1.0 - cond_abort));
  out.extra_work_fraction = conflict_prob * extra_attempts;
  double retry_wait_ms = extra_attempts * deadlock_timeout_ms * 3.0;
  // Genuine deadlocks are rare and quadratic in contention; each one stalls
  // a victim for the full timeout before detection.
  double deadlock_prob = 0.15 * conflict_prob * conflict_prob;
  out.deadlocks = deadlock_prob * txns;
  double per_txn_wait_ms = conflict_prob * (wait_ms + retry_wait_ms) +
                           deadlock_prob * deadlock_timeout_ms;
  out.total_wait_s = txns * per_txn_wait_ms / 1000.0;
  return out;
}

double SwapPenalty(double reserved_mb, double ram_mb) {
  if (ram_mb <= 0.0) return 1.0;
  double over = reserved_mb / ram_mb - 1.0;
  if (over <= 0.0) return 1.0;
  return 1.0 + 25.0 * over * over + 5.0 * over;
}

bool OutOfMemory(double reserved_mb, double ram_mb) {
  return reserved_mb > 1.25 * ram_mb;
}

double PlanQualityMultiplier(double stats_target, double join_complexity) {
  // With sparse statistics the optimizer mis-estimates cardinalities and
  // picks plans that do up to (1 + 0.5*complexity)x the necessary work.
  double ignorance = std::exp(-stats_target / 150.0);
  return 1.0 + 0.5 * std::clamp(join_complexity, 0.0, 1.0) * ignorance;
}

}  // namespace atune
