#ifndef ATUNE_SYSTEMS_DBMS_DBMS_MODEL_H_
#define ATUNE_SYSTEMS_DBMS_DBMS_MODEL_H_

#include <string>

#include "systems/hardware.h"

namespace atune {

/// Analytical sub-models of DBMS behavior used by SimulatedDbms. They are
/// deliberately simple closed forms, but each reproduces the qualitative
/// response shape of the real mechanism (concavity, cliffs, U-shapes,
/// interactions) — which is what parameter-tuning algorithms actually see.

/// Fraction of page requests served from the buffer pool.
///
/// Concave and increasing in pool size; access skew (Zipf-like theta in
/// [0,1.2]) makes small pools disproportionately effective, mirroring a
/// Mattson stack-distance curve.
double BufferHitRatio(double pool_mb, double working_set_mb, double skew);

/// Aggregate effective read bandwidth (MB/s) of the cluster for a scan mix
/// with `seq_fraction` sequential accesses. Prefetching hides random-read
/// latency with diminishing returns; io_concurrency lifts utilization of
/// parallel disks up to the hardware limit.
double EffectiveScanBandwidthMbps(const ClusterSpec& cluster,
                                  double seq_fraction, int64_t io_concurrency,
                                  int64_t prefetch_depth);

/// Page/stream compression cost model.
struct CompressionProfile {
  double ratio = 1.0;           ///< compressed size / raw size
  double compress_cpu_s_per_mb = 0.0;
  double decompress_cpu_s_per_mb = 0.0;
};

/// Profile for codec in {"none", "lz4", "zlib"}; unknown names map to none.
CompressionProfile GetCompressionProfile(const std::string& codec);

/// Extra disk traffic (MB, read+write combined) caused by external
/// sort/hash spilling when an operator needing `need_mb` runs with
/// `work_mem_mb` of memory; multi-pass merges use fan-in `merge_fanin`.
/// Zero when the operator fits in memory.
double SpillExtraIoMb(double need_mb, double work_mem_mb,
                      int64_t merge_fanin = 16);

/// Amdahl speedup with `workers` over a workload with the given serial
/// fraction, capped by available cores.
double ParallelSpeedup(double workers, double cores, double serial_fraction);

/// Lock-contention outcome for an OLTP run.
struct LockOutcome {
  double total_wait_s = 0.0;      ///< sum of lock waits across txns
  double abort_fraction = 0.0;    ///< fraction of txns aborted+retried
  double deadlocks = 0.0;         ///< expected deadlock count
  /// Extra work (fraction of the whole run's work) redone by retries of
  /// timeout-aborted transactions.
  double extra_work_fraction = 0.0;
};

/// Models the deadlock_timeout tradeoff: short timeouts abort transactions
/// that were merely waiting (retry storms), long timeouts make genuine
/// deadlocks expensive. U-shaped total cost in the timeout.
LockOutcome ComputeLockOutcome(double clients, double skew,
                               double deadlock_timeout_ms, double txns);

/// Memory-pressure multiplier for I/O when total reservations exceed RAM
/// (swap thrash). 1.0 when within RAM; grows quadratically past it.
double SwapPenalty(double reserved_mb, double ram_mb);

/// True when reservations exceed RAM by enough that the OS OOM-kills the
/// server (hard failure threshold: 125% of RAM).
bool OutOfMemory(double reserved_mb, double ram_mb);

/// Query-plan quality factor from optimizer statistics detail
/// (`stats_target` knob): multiplier >= 1 on work done by complex queries;
/// approaches 1 as statistics improve, with diminishing returns.
double PlanQualityMultiplier(double stats_target, double join_complexity);

}  // namespace atune

#endif  // ATUNE_SYSTEMS_DBMS_DBMS_MODEL_H_
