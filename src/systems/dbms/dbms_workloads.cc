#include "systems/dbms/dbms_workloads.h"

namespace atune {

Workload MakeDbmsOltpWorkload(double scale, double clients, double skew) {
  Workload w;
  w.name = "tpcc-like";
  w.kind = "oltp";
  w.scale = scale;
  w.properties = {
      {"txns", 200000.0}, {"clients", clients},        {"read_ratio", 0.8},
      {"skew", skew},     {"working_set_mb", 2048.0},  {"segments", 8.0},
  };
  return w;
}

Workload MakeDbmsOlapWorkload(double scale, double clients) {
  Workload w;
  w.name = "tpch-like";
  w.kind = "olap";
  w.scale = scale;
  w.properties = {
      {"data_mb", 8192.0},    {"queries", 20.0},      {"clients", clients},
      {"selectivity", 0.4},   {"seq_fraction", 0.8},  {"sort_frac", 0.25},
      {"join_complexity", 0.6}, {"skew", 0.2},        {"segments", 8.0},
  };
  return w;
}

Workload MakeDbmsMixedWorkload(double scale) {
  Workload w;
  w.name = "htap-mix";
  w.kind = "mixed";
  w.scale = scale;
  w.properties = {
      {"txns", 100000.0},     {"clients", 16.0},      {"read_ratio", 0.8},
      {"skew", 0.5},          {"working_set_mb", 2048.0},
      {"data_mb", 4096.0},    {"queries", 10.0},      {"selectivity", 0.4},
      {"seq_fraction", 0.7},  {"sort_frac", 0.25},    {"join_complexity", 0.6},
      {"segments", 8.0},
  };
  return w;
}

Workload MakeDbmsAnalyticalTask(const std::string& op, double data_mb) {
  Workload w;
  w.name = "analytical-" + op;
  w.kind = op;  // "scan" | "aggregate" | "join"
  w.scale = 1.0;
  w.properties = {
      {"data_mb", data_mb},  {"queries", 1.0},       {"clients", 1.0},
      {"selectivity", 1.0},  {"seq_fraction", 0.95}, {"sort_frac", 0.3},
      {"skew", 0.0},         {"segments", 4.0},
  };
  return w;
}

}  // namespace atune
