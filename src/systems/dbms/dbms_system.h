#ifndef ATUNE_SYSTEMS_DBMS_DBMS_SYSTEM_H_
#define ATUNE_SYSTEMS_DBMS_DBMS_SYSTEM_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "core/system.h"
#include "systems/hardware.h"

namespace atune {

/// Simulated relational DBMS with 12 tunable knobs modeled after the
/// PostgreSQL/DB2/Oracle parameters the surveyed tuning papers target
/// (buffer pool, work memory, parallel workers, WAL/commit policy,
/// checkpointing, deadlock timeout, compression, optimizer statistics).
///
/// The simulator is an analytical bottleneck model (CPU / disk / locks /
/// commit path) with explicit parameter interactions and failure cliffs:
///  * buffer_pool + clients*workers*work_mem oversubscription -> swap, OOM
///  * work_mem below operator need -> external sort/hash spill passes
///  * tiny deadlock_timeout + high contention -> abort storms (failed runs)
///  * compression trades CPU for I/O; pays off only when I/O-bound
///  * checkpoint interval has a U-shaped cost
///
/// Workload kinds: "oltp", "olap", "mixed", and single-operator analytical
/// kinds "scan" | "aggregate" | "join" (used by the Hadoop-vs-DBMS bench).
/// See MakeDbms*Workload() in dbms_workloads.h.
///
/// Runs are deterministic given (construction seed, run index): each Execute
/// draws measurement noise from the instance's seeded stream.
class SimulatedDbms : public IterativeSystem {
 public:
  /// `cluster`: hardware to run on (a single node models a centralized
  /// DBMS; several nodes model a shared-nothing parallel DBMS).
  SimulatedDbms(ClusterSpec cluster, uint64_t seed);

  std::string name() const override { return "simulated-dbms"; }
  const ParameterSpace& space() const override { return space_; }
  Result<ExecutionResult> Execute(const Configuration& config,
                                  const Workload& workload) override;
  std::map<std::string, double> Descriptors() const override;
  std::vector<std::string> MetricNames() const override;

  size_t NumUnits(const Workload& workload) const override;
  Result<ExecutionResult> ExecuteUnit(const Configuration& config,
                                      const Workload& workload,
                                      size_t unit_index) override;
  double ReconfigurationCost() const override { return 0.05; }

  std::unique_ptr<TunableSystem> Clone(uint64_t runs_ahead) const override;
  void SkipRuns(uint64_t n) override { run_index_ += n; }

  /// Noise level (lognormal sigma) of measured runtimes; tests set 0.
  void set_noise_sigma(double sigma) { noise_sigma_ = sigma; }

  const ClusterSpec& cluster() const { return cluster_; }

 private:
  /// Deterministic model evaluation (no noise), shared by Execute and the
  /// unit-level path. `fraction` scales the workload volume.
  ExecutionResult Run(const Configuration& config, const Workload& workload,
                      double fraction);

  ExecutionResult RunOlap(const Configuration& config,
                          const Workload& workload, double fraction) const;
  ExecutionResult RunOltp(const Configuration& config,
                          const Workload& workload, double fraction) const;

  ClusterSpec cluster_;
  ParameterSpace space_;
  uint64_t seed_;
  /// Executions performed so far. Run i's measurement noise comes from an
  /// Rng seeded with DeriveSeed(seed_, i), so it depends only on (seed_, i)
  /// — never on how much entropy earlier runs consumed. Clones at run index
  /// i therefore reproduce the parent's i-th run exactly.
  uint64_t run_index_ = 0;
  double noise_sigma_ = 0.02;
};

}  // namespace atune

#endif  // ATUNE_SYSTEMS_DBMS_DBMS_SYSTEM_H_
