#ifndef ATUNE_SYSTEMS_DBMS_DBMS_WORKLOADS_H_
#define ATUNE_SYSTEMS_DBMS_DBMS_WORKLOADS_H_

#include "core/system.h"

namespace atune {

/// Prebuilt DBMS workloads mirroring the benchmark families the surveyed
/// papers tune against. `scale` multiplies data volume / transaction count.

/// TPC-C-like transactional mix: short read-write transactions, hot-row
/// skew, many concurrent clients. Stresses buffer pool, commit path,
/// checkpointing and deadlock timeout.
Workload MakeDbmsOltpWorkload(double scale = 1.0, double clients = 32.0,
                              double skew = 0.6);

/// TPC-H-like analytical batch: large scans, sorts and joins from a few
/// concurrent sessions. Stresses work_mem, parallelism, I/O and statistics.
Workload MakeDbmsOlapWorkload(double scale = 1.0, double clients = 4.0);

/// Mixed HTAP workload (both of the above interleaved).
Workload MakeDbmsMixedWorkload(double scale = 1.0);

/// Single-operator analytical tasks used by the Hadoop-vs-DBMS comparison
/// (Pavlo et al. [18] style): full scan, grouped aggregation, two-table join
/// over `data_mb` of input.
Workload MakeDbmsAnalyticalTask(const std::string& op, double data_mb);

}  // namespace atune

#endif  // ATUNE_SYSTEMS_DBMS_DBMS_WORKLOADS_H_
