#include "systems/dbms/dbms_system.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "systems/dbms/dbms_model.h"

namespace atune {

namespace {
// Fixed model constants (not tunable): per-MB CPU costs, transaction shapes.
constexpr double kScanCpuSecPerMb = 0.0015;
constexpr double kQueryStartupSec = 0.05;
constexpr double kTxnCpuMs = 0.25;
constexpr double kPageMb = 8.0 / 1024.0;  // 8 KB pages
constexpr double kWalMbPerTxn = 0.002;
constexpr double kFsyncMs = 2.0;
constexpr double kSerialFraction = 0.12;
}  // namespace

SimulatedDbms::SimulatedDbms(ClusterSpec cluster, uint64_t seed)
    : cluster_(std::move(cluster)), seed_(seed) {
  double ram = cluster_.MeanNode().ram_mb;
  int64_t bp_max = static_cast<int64_t>(std::max(1024.0, ram * 0.9));
  auto add = [this](ParameterDef def) {
    Status s = space_.Add(std::move(def));
    (void)s;  // names are unique by construction
  };
  add(ParameterDef::Int("buffer_pool_mb", 64, bp_max, 512,
                        "shared buffer pool size", /*log_scale=*/true, "MB"));
  add(ParameterDef::Int("work_mem_mb", 1, 2048, 4,
                        "per-operator sort/hash memory", true, "MB"));
  add(ParameterDef::Int("max_workers", 1, 64, 2,
                        "parallel workers per query"));
  add(ParameterDef::Int("io_concurrency", 1, 64, 4,
                        "outstanding async I/O requests", true));
  add(ParameterDef::Int("prefetch_depth", 0, 64, 8,
                        "pages prefetched ahead of a scan"));
  add(ParameterDef::Int("checkpoint_interval_s", 30, 3600, 300,
                        "seconds between checkpoints", true, "s"));
  add(ParameterDef::Int("wal_buffer_mb", 1, 256, 16,
                        "write-ahead-log buffer", true, "MB"));
  add(ParameterDef::Categorical("log_flush", {"immediate", "group", "async"},
                                0, "commit durability policy"));
  add(ParameterDef::Int("deadlock_timeout_ms", 10, 10000, 1000,
                        "lock wait before deadlock check", true, "ms"));
  add(ParameterDef::Categorical("page_compression", {"none", "lz4", "zlib"},
                                0, "table page compression codec"));
  add(ParameterDef::Int("stats_target", 10, 1000, 100,
                        "optimizer statistics detail", true));
  add(ParameterDef::Bool("temp_compression", false,
                         "compress sort/hash spill files"));
}

std::map<std::string, double> SimulatedDbms::Descriptors() const {
  NodeSpec mean = cluster_.MeanNode();
  return {
      {"num_nodes", static_cast<double>(cluster_.num_nodes())},
      {"total_ram_mb", cluster_.TotalRamMb()},
      {"node_ram_mb", mean.ram_mb},
      {"total_cores", cluster_.TotalCores()},
      {"cores_per_node", mean.cores},
      {"disk_mbps", mean.disk_mbps},
      {"disk_iops", mean.disk_iops},
      {"network_mbps", mean.network_mbps},
  };
}

std::vector<std::string> SimulatedDbms::MetricNames() const {
  return {"cpu_time_s",     "io_time_s",       "io_read_mb",
          "io_write_mb",    "spill_mb",        "buffer_hit_ratio",
          "lock_wait_s",    "commit_wait_s",   "checkpoint_io_mb",
          "wal_mb",         "mem_reserved_mb", "swap_penalty",
          "abort_fraction", "deadlocks",       "plan_multiplier"};
}

size_t SimulatedDbms::NumUnits(const Workload& workload) const {
  return static_cast<size_t>(workload.PropertyOr("segments", 8.0));
}

Result<ExecutionResult> SimulatedDbms::ExecuteUnit(const Configuration& config,
                                                   const Workload& workload,
                                                   size_t unit_index) {
  ATUNE_RETURN_IF_ERROR(space_.ValidateConfiguration(config));
  size_t units = std::max<size_t>(NumUnits(workload), 1);
  double fraction = 1.0 / static_cast<double>(units);
  // Optional diurnal load pattern: client concurrency swings by
  // +-diurnal_amplitude over one pass of the units (day/night cycle).
  // Full-run Execute() sees the average; only unit-level callers (adaptive
  // tuners) observe — and can react to — the swing.
  double amplitude = workload.PropertyOr("diurnal_amplitude", 0.0);
  if (amplitude <= 0.0) return Run(config, workload, fraction);
  Workload shifted = workload;
  double phase = 2.0 * 3.14159265358979 * static_cast<double>(unit_index) /
                 static_cast<double>(units);
  double factor = 1.0 + amplitude * std::sin(phase);
  shifted.properties["clients"] =
      std::max(1.0, workload.PropertyOr("clients", 16.0) * factor);
  shifted.properties["txns"] =
      workload.PropertyOr("txns", 200000.0) * factor;
  shifted.properties["queries"] =
      workload.PropertyOr("queries", 20.0) * factor;
  return Run(config, shifted, fraction);
}

Result<ExecutionResult> SimulatedDbms::Execute(const Configuration& config,
                                               const Workload& workload) {
  ATUNE_RETURN_IF_ERROR(space_.ValidateConfiguration(config));
  return Run(config, workload, 1.0);
}

ExecutionResult SimulatedDbms::Run(const Configuration& config,
                                   const Workload& workload, double fraction) {
  ExecutionResult result;
  const std::string& kind = workload.kind;
  if (kind == "oltp") {
    result = RunOltp(config, workload, fraction);
  } else if (kind == "olap" || kind == "scan" || kind == "aggregate" ||
             kind == "join") {
    result = RunOlap(config, workload, fraction);
  } else if (kind == "mixed") {
    ExecutionResult olap = RunOlap(config, workload, fraction * 0.5);
    ExecutionResult oltp = RunOltp(config, workload, fraction * 0.5);
    // Interleaved execution: bottleneck resources add, the shorter side
    // partially hides behind the longer one.
    result.runtime_seconds =
        std::max(olap.runtime_seconds, oltp.runtime_seconds) +
        0.5 * std::min(olap.runtime_seconds, oltp.runtime_seconds);
    result.failed = olap.failed || oltp.failed;
    result.failure_reason =
        olap.failed ? olap.failure_reason : oltp.failure_reason;
    for (const auto& [k, v] : olap.metrics) result.metrics[k] = v;
    for (const auto& [k, v] : oltp.metrics) result.metrics[k] += v;
    // Ratio-style metrics must not be summed across the two halves.
    result.metrics["buffer_hit_ratio"] =
        0.5 * (olap.MetricOr("buffer_hit_ratio", 1.0) +
               oltp.MetricOr("buffer_hit_ratio", 1.0));
    result.metrics["swap_penalty"] = std::max(
        olap.MetricOr("swap_penalty", 1.0), oltp.MetricOr("swap_penalty", 1.0));
    result.metrics["abort_fraction"] = oltp.MetricOr("abort_fraction", 0.0);
    result.metrics["plan_multiplier"] = olap.MetricOr("plan_multiplier", 1.0);
  } else {
    // Unknown kinds behave like a small OLAP batch rather than erroring, so
    // ad-hoc workloads remain runnable.
    result = RunOlap(config, workload, fraction);
  }
  // Seeded measurement noise (real systems never measure twice the same).
  // Each run draws from its own (seed, run-index)-derived stream so that
  // clones can replay exactly the noise of any future run (see Clone()).
  Rng run_rng(DeriveSeed(seed_, run_index_++));
  if (noise_sigma_ > 0.0 && !result.failed) {
    double noise = std::exp(run_rng.Normal(0.0, noise_sigma_));
    if (run_rng.Bernoulli(0.02)) noise *= 1.25;  // occasional hiccup
    result.runtime_seconds *= noise;
  }
  return result;
}

std::unique_ptr<TunableSystem> SimulatedDbms::Clone(uint64_t runs_ahead) const {
  auto clone = std::make_unique<SimulatedDbms>(cluster_, seed_);
  clone->noise_sigma_ = noise_sigma_;
  clone->run_index_ = run_index_ + runs_ahead;
  return clone;
}

ExecutionResult SimulatedDbms::RunOlap(const Configuration& config,
                                       const Workload& workload,
                                       double fraction) const {
  ExecutionResult r;
  const double scale = workload.scale * fraction;
  const double data_mb = workload.PropertyOr("data_mb", 4096.0) *
                         workload.scale;  // dataset doesn't shrink per unit
  const double queries = std::max(1.0, workload.PropertyOr("queries", 20.0) *
                                           scale / workload.scale);
  const double clients = std::max(1.0, workload.PropertyOr("clients", 4.0));
  const double selectivity =
      std::clamp(workload.PropertyOr("selectivity", 0.4), 0.01, 1.0);
  const double seq_fraction = workload.PropertyOr("seq_fraction", 0.8);
  const double sort_frac = workload.PropertyOr("sort_frac", 0.25);
  double join_complexity = workload.PropertyOr("join_complexity", 0.5);
  const double skew = workload.PropertyOr("skew", 0.2);
  if (workload.kind == "scan") join_complexity = 0.0;
  if (workload.kind == "aggregate") join_complexity = 0.2;
  if (workload.kind == "join") join_complexity = 1.0;

  const int64_t buffer_pool = config.IntOr("buffer_pool_mb", 512);
  const int64_t work_mem = config.IntOr("work_mem_mb", 4);
  const int64_t workers = config.IntOr("max_workers", 2);
  const int64_t io_conc = config.IntOr("io_concurrency", 4);
  const int64_t prefetch = config.IntOr("prefetch_depth", 8);
  const int64_t wal_buffer = config.IntOr("wal_buffer_mb", 16);
  const int64_t stats_target = config.IntOr("stats_target", 100);
  const std::string codec = config.StringOr("page_compression", "none");
  const bool temp_compress = config.BoolOr("temp_compression", false);

  const double ram = cluster_.TotalRamMb();
  const double cores = cluster_.TotalCores();
  const double cpu_speed = cluster_.MeanNode().cpu_speed;

  // Memory reservations and the swap/OOM cliff. Concurrent queries each get
  // `workers` workers, each worker its own work_mem.
  const double reserved = static_cast<double>(buffer_pool) +
                          clients * static_cast<double>(workers * work_mem) +
                          static_cast<double>(wal_buffer) + 256.0;
  if (OutOfMemory(reserved, ram)) {
    r.failed = true;
    r.failure_reason = StrFormat(
        "out of memory: reserved %.0f MB of %.0f MB RAM", reserved, ram);
    r.runtime_seconds = kFailedRunWallClockSec * fraction;
    r.metrics["mem_reserved_mb"] = reserved;
    return r;
  }
  const double swap = SwapPenalty(reserved, ram);

  // Plan quality: poor optimizer statistics inflate work on complex queries.
  const double plan_mult =
      PlanQualityMultiplier(static_cast<double>(stats_target),
                            join_complexity);

  // Logical page traffic.
  const double scan_mb = queries * selectivity * data_mb * plan_mult;
  const double hot_set_mb = std::max(selectivity * data_mb, 64.0);
  const double hit = BufferHitRatio(static_cast<double>(buffer_pool),
                                    hot_set_mb, skew);
  double read_mb = scan_mb * (1.0 - hit);

  // Page compression shrinks disk traffic, costs CPU per logical MB.
  const CompressionProfile comp = GetCompressionProfile(codec);
  double disk_read_mb = read_mb * comp.ratio;
  double comp_cpu_s = read_mb * comp.decompress_cpu_s_per_mb;

  const double scan_bw =
      EffectiveScanBandwidthMbps(cluster_, seq_fraction, io_conc, prefetch);
  double io_time = disk_read_mb / scan_bw * swap;

  // Sort/hash spill: each query has an operator needing sort_frac of its
  // input; insufficient work_mem causes multi-pass external runs.
  const double need_mb = sort_frac * selectivity * data_mb * plan_mult;
  double spill_mb = SpillExtraIoMb(need_mb, static_cast<double>(work_mem));
  double spill_cpu_s = 0.0;
  if (temp_compress && spill_mb > 0.0) {
    const CompressionProfile lz = GetCompressionProfile("lz4");
    spill_cpu_s = queries * spill_mb *
                  (lz.compress_cpu_s_per_mb + lz.decompress_cpu_s_per_mb) / 2.0;
    spill_mb *= lz.ratio;
  }
  const double total_spill_mb = queries * spill_mb;
  const double seq_bw = std::max(cluster_.TotalDiskMbps(), 1e-3);
  const double spill_time = total_spill_mb / seq_bw * swap;

  // CPU: scan + operator work, parallelized with Amdahl diminishing returns.
  double cpu_core_s = scan_mb * kScanCpuSecPerMb / cpu_speed +
                      queries * kQueryStartupSec + comp_cpu_s + spill_cpu_s;
  const double par = std::min(static_cast<double>(workers) * clients, cores);
  const double speedup = ParallelSpeedup(par, cores, kSerialFraction);
  double cpu_time = cpu_core_s / speedup;

  // Heterogeneous clusters: parallel scans finish with the slowest node.
  const double straggler = std::pow(cluster_.SlowestNodeFactor(),
                                    cluster_.num_nodes() > 1 ? 0.7 : 0.0);

  double runtime = (std::max(io_time + spill_time, cpu_time) +
                    0.3 * std::min(io_time + spill_time, cpu_time)) *
                   straggler;
  runtime = std::max(runtime, queries * 0.01);

  r.runtime_seconds = runtime;
  r.metrics["cpu_time_s"] = cpu_time;
  r.metrics["io_time_s"] = io_time + spill_time;
  r.metrics["io_read_mb"] = disk_read_mb;
  r.metrics["io_write_mb"] = total_spill_mb / 2.0;
  r.metrics["spill_mb"] = total_spill_mb;
  r.metrics["buffer_hit_ratio"] = hit;
  r.metrics["lock_wait_s"] = 0.0;
  r.metrics["commit_wait_s"] = 0.0;
  r.metrics["checkpoint_io_mb"] = 0.0;
  r.metrics["wal_mb"] = 0.0;
  r.metrics["mem_reserved_mb"] = reserved;
  r.metrics["swap_penalty"] = swap;
  r.metrics["abort_fraction"] = 0.0;
  r.metrics["deadlocks"] = 0.0;
  r.metrics["plan_multiplier"] = plan_mult;
  return r;
}

ExecutionResult SimulatedDbms::RunOltp(const Configuration& config,
                                       const Workload& workload,
                                       double fraction) const {
  ExecutionResult r;
  const double txns =
      workload.PropertyOr("txns", 200000.0) * workload.scale * fraction;
  const double clients = std::max(1.0, workload.PropertyOr("clients", 32.0));
  const double read_ratio =
      std::clamp(workload.PropertyOr("read_ratio", 0.8), 0.0, 1.0);
  const double skew = workload.PropertyOr("skew", 0.6);
  const double working_set_mb =
      workload.PropertyOr("working_set_mb", 2048.0) * workload.scale;

  const int64_t buffer_pool = config.IntOr("buffer_pool_mb", 512);
  const int64_t work_mem = config.IntOr("work_mem_mb", 4);
  const int64_t io_conc = config.IntOr("io_concurrency", 4);
  const int64_t prefetch = config.IntOr("prefetch_depth", 8);
  const int64_t checkpoint_s = config.IntOr("checkpoint_interval_s", 300);
  const int64_t wal_buffer = config.IntOr("wal_buffer_mb", 16);
  const int64_t timeout_ms = config.IntOr("deadlock_timeout_ms", 1000);
  const std::string log_flush = config.StringOr("log_flush", "immediate");
  const std::string codec = config.StringOr("page_compression", "none");

  const double ram = cluster_.TotalRamMb();
  const double cores = cluster_.TotalCores();
  const double cpu_speed = cluster_.MeanNode().cpu_speed;

  const double reserved = static_cast<double>(buffer_pool) +
                          clients * static_cast<double>(work_mem) +
                          static_cast<double>(wal_buffer) + 256.0;
  if (OutOfMemory(reserved, ram)) {
    r.failed = true;
    r.failure_reason = StrFormat(
        "out of memory: reserved %.0f MB of %.0f MB RAM", reserved, ram);
    r.runtime_seconds = kFailedRunWallClockSec * fraction;
    r.metrics["mem_reserved_mb"] = reserved;
    return r;
  }
  const double swap = SwapPenalty(reserved, ram);

  // Locks and aborts.
  const LockOutcome locks =
      ComputeLockOutcome(clients, skew, static_cast<double>(timeout_ms), txns);
  // A sustained double-digit abort rate is a production incident: retries
  // cascade into more conflicts and throughput collapses.
  if (locks.abort_fraction > 0.15) {
    r.failed = true;
    r.failure_reason = StrFormat(
        "abort storm: %.0f%% of transactions aborted by deadlock timeout",
        locks.abort_fraction * 100.0);
    r.runtime_seconds = kFailedRunWallClockSec * fraction;
    r.metrics["abort_fraction"] = locks.abort_fraction;
    return r;
  }
  // Retried transactions redo their reads/writes/logging in full.
  const double retry_mult =
      std::min(4.0, 1.0 + locks.extra_work_fraction);

  // Random page reads.
  const double reads_per_txn = 1.0 + 4.0 * read_ratio;
  const double writes_per_txn = 0.5 + 2.0 * (1.0 - read_ratio);
  const double hit = BufferHitRatio(static_cast<double>(buffer_pool),
                                    working_set_mb, skew);
  const CompressionProfile comp = GetCompressionProfile(codec);
  const double miss_mb =
      txns * reads_per_txn * kPageMb * (1.0 - hit) * retry_mult;
  const double rand_bw =
      EffectiveScanBandwidthMbps(cluster_, 0.05, io_conc, prefetch);
  double io_time = miss_mb * comp.ratio / rand_bw * swap;
  double comp_cpu_s = miss_mb * comp.decompress_cpu_s_per_mb +
                      txns * writes_per_txn * kPageMb *
                          comp.compress_cpu_s_per_mb;

  // WAL and commit path.
  const double wal_mb = txns * kWalMbPerTxn * retry_mult;
  const double seq_bw = std::max(cluster_.TotalDiskMbps(), 1e-3);
  double wal_write_time = wal_mb / seq_bw;
  double commit_wait_s = 0.0;
  if (log_flush == "immediate") {
    // One fsync per commit, overlapped across clients.
    commit_wait_s = txns * (kFsyncMs / 1000.0) / clients;
    // An undersized WAL buffer serializes commits behind buffer flushes.
    if (static_cast<double>(wal_buffer) < clients * 0.25) {
      commit_wait_s *= 1.0 + (clients * 0.25 -
                              static_cast<double>(wal_buffer)) /
                                 std::max(1.0, static_cast<double>(wal_buffer));
    }
  } else if (log_flush == "group") {
    const double group = std::min(clients, 8.0);
    commit_wait_s = txns * (kFsyncMs / 1000.0) / clients / group;
  } else {  // async: flush when the buffer fills
    commit_wait_s = (wal_mb / std::max<double>(1.0, static_cast<double>(
                                                        wal_buffer))) *
                    (kFsyncMs / 1000.0);
  }

  // Dirty-page writeback at checkpoints (U-shaped in the interval): frequent
  // checkpoints rewrite hot pages over and over; rare checkpoints accumulate
  // large bursts that stall foreground I/O.
  const double dirty_mb =
      std::min(static_cast<double>(buffer_pool),
               working_set_mb * (1.0 - read_ratio)) *
      0.4;
  // First-pass runtime estimate (for checkpoint count) without checkpoints.
  const double txn_cpu_core_s =
      txns * (kTxnCpuMs / 1000.0) * retry_mult / cpu_speed + comp_cpu_s;
  const double cpu_time =
      txn_cpu_core_s / ParallelSpeedup(clients, cores, kSerialFraction);
  double base_rt = std::max({cpu_time, io_time, wal_write_time}) +
                   commit_wait_s + locks.total_wait_s / clients;
  const double num_checkpoints =
      std::max(1.0, base_rt / static_cast<double>(checkpoint_s));
  // Each checkpoint flushes the dirty set; hot pages re-dirty in between.
  const double checkpoint_io_mb = num_checkpoints * dirty_mb;
  double checkpoint_time = checkpoint_io_mb / seq_bw * 0.6;  // partly hidden
  // Burst stall when a huge dirty set lands at once.
  checkpoint_time +=
      num_checkpoints * std::max(0.0, dirty_mb - 1024.0) / seq_bw * 0.4;

  double runtime = base_rt + checkpoint_time;
  runtime = std::max(runtime, txns * 1e-5);

  r.runtime_seconds = runtime;
  r.metrics["cpu_time_s"] = cpu_time;
  r.metrics["io_time_s"] = io_time;
  r.metrics["io_read_mb"] = miss_mb * comp.ratio;
  r.metrics["io_write_mb"] = checkpoint_io_mb + wal_mb;
  r.metrics["spill_mb"] = 0.0;
  r.metrics["buffer_hit_ratio"] = hit;
  r.metrics["lock_wait_s"] = locks.total_wait_s;
  r.metrics["commit_wait_s"] = commit_wait_s;
  r.metrics["checkpoint_io_mb"] = checkpoint_io_mb;
  r.metrics["wal_mb"] = wal_mb;
  r.metrics["mem_reserved_mb"] = reserved;
  r.metrics["swap_penalty"] = swap;
  r.metrics["abort_fraction"] = locks.abort_fraction;
  r.metrics["deadlocks"] = locks.deadlocks;
  r.metrics["plan_multiplier"] = 1.0;
  return r;
}

}  // namespace atune
