#ifndef ATUNE_SYSTEMS_MULTI_TENANT_H_
#define ATUNE_SYSTEMS_MULTI_TENANT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/objective.h"
#include "core/system.h"

namespace atune {

/// One tenant of a shared system: a workload plus its latency SLO.
struct Tenant {
  std::string name;
  Workload workload;
  /// Service-level objective: the tenant is satisfied when its share of the
  /// run finishes within this many (simulated) seconds.
  double slo_seconds = 0.0;
};

/// A multi-tenant wrapper around any TunableSystem: one *shared*
/// configuration serves every tenant's workload (the Tempo [Tan & Babu,
/// PVLDB'16] setting — a multi-tenant parallel database where tuning for
/// one tenant can starve another).
///
/// Execute runs each tenant's workload under the shared configuration on
/// the wrapped system and reports:
///   runtime_seconds          — sum over tenants (total busy time)
///   tenant_<i>_runtime_s     — per-tenant runtime
///   tenant_<i>_slo_ratio     — runtime / SLO (<= 1 means satisfied)
///   worst_slo_ratio          — max over tenants
///   slo_violations           — number of unsatisfied tenants
/// A failure for any tenant fails the run.
class MultiTenantSystem : public TunableSystem {
 public:
  /// Does not take ownership of `base`.
  MultiTenantSystem(TunableSystem* base, std::vector<Tenant> tenants);

  std::string name() const override { return name_; }
  const ParameterSpace& space() const override { return base_->space(); }
  Result<ExecutionResult> Execute(const Configuration& config,
                                  const Workload& workload) override;
  std::map<std::string, double> Descriptors() const override {
    return base_->Descriptors();
  }
  std::vector<std::string> MetricNames() const override;

  /// One wrapper Execute() runs the base system once per tenant, so the
  /// wrapper's noise accounting is k base runs per wrapper run: a clone
  /// `runs_ahead` wrapper-executions ahead clones the base
  /// `runs_ahead * tenants()` base-executions ahead (and the clone owns its
  /// cloned base). Without this multiplier, parallel batches and journal
  /// resume would silently diverge from serial execution.
  std::unique_ptr<TunableSystem> Clone(uint64_t runs_ahead) const override;
  void SkipRuns(uint64_t n) override;

  const std::vector<Tenant>& tenants() const { return tenants_; }

 private:
  TunableSystem* base_;
  std::vector<Tenant> tenants_;
  std::string name_;
  /// Set only on clones: keeps the cloned base alive for the wrapper's
  /// lifetime (the public constructor borrows, Clone() must own).
  std::unique_ptr<TunableSystem> owned_base_;
};

/// A neutral workload to pass to MultiTenantSystem::Execute (the wrapper
/// runs its tenants' workloads; the argument only carries the scale).
Workload MakeMultiTenantWorkload(double scale = 1.0);

/// Tempo-style robust objective over a MultiTenantSystem's results:
/// minimize the worst tenant's SLO ratio (minimax fairness), with total
/// time as a tie-breaker. A configuration that satisfies every SLO scores
/// below 1; the tuner then shaves total cost without breaking anyone.
ObjectiveFunction MakeRobustSloObjective(double total_time_weight = 1e-4);

}  // namespace atune

#endif  // ATUNE_SYSTEMS_MULTI_TENANT_H_
