#ifndef ATUNE_ML_KMEANS_H_
#define ATUNE_ML_KMEANS_H_

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "math/matrix.h"

namespace atune {

/// Result of a k-means clustering run.
struct KMeansResult {
  std::vector<Vec> centroids;
  std::vector<size_t> assignments;  ///< cluster index per input point
  double inertia = 0.0;             ///< sum of squared distances to centroids
  size_t iterations = 0;
};

/// k-means with k-means++ seeding; used by OtterTune-style workload mapping
/// to group workloads with similar metric signatures.
///
/// Runs Lloyd's algorithm until assignment fixpoint or max_iters.
Result<KMeansResult> KMeans(const std::vector<Vec>& points, size_t k, Rng* rng,
                            size_t max_iters = 100);

/// Picks k by minimizing a simple BIC-like score over k in [1, k_max]
/// (OtterTune uses a model-selection criterion for the number of workload
/// clusters). Returns the chosen clustering.
Result<KMeansResult> KMeansAutoK(const std::vector<Vec>& points, size_t k_max,
                                 Rng* rng);

/// Index of the nearest centroid to x.
size_t NearestCentroid(const std::vector<Vec>& centroids, const Vec& x);

}  // namespace atune

#endif  // ATUNE_ML_KMEANS_H_
