#ifndef ATUNE_ML_ACQUISITION_H_
#define ATUNE_ML_ACQUISITION_H_

#include "ml/gaussian_process.h"

namespace atune {

/// Acquisition functions for GP-based tuning (iTuned-style Bayesian
/// optimization). All assume *minimization* of the objective: `best` is the
/// lowest observed objective value so far and larger acquisition values mean
/// more promising candidates.

/// Expected Improvement: E[max(best - Y, 0)] under the posterior.
double ExpectedImprovement(const GpPrediction& pred, double best,
                           double xi = 0.0);

/// Probability of Improvement: P(Y < best - xi).
double ProbabilityOfImprovement(const GpPrediction& pred, double best,
                                double xi = 0.0);

/// Lower Confidence Bound expressed as an acquisition value:
/// -(mean - beta * stddev); larger is better.
double LowerConfidenceBound(const GpPrediction& pred, double beta = 2.0);

/// Batched variants over a PredictBatch result: (*out)[i] is bit-identical
/// to the scalar function applied to preds[i] (the loop *is* the scalar
/// function, in index order). `*out` is resized; capacity persists so a
/// caller scanning candidate batches reuses the same storage.
void ExpectedImprovementBatch(const std::vector<GpPrediction>& preds,
                              double best, double xi, Vec* out);
void ProbabilityOfImprovementBatch(const std::vector<GpPrediction>& preds,
                                   double best, double xi, Vec* out);
void LowerConfidenceBoundBatch(const std::vector<GpPrediction>& preds,
                               double beta, Vec* out);

/// Standard normal PDF/CDF helpers (exposed for tests).
double NormalPdf(double z);
double NormalCdf(double z);

}  // namespace atune

#endif  // ATUNE_ML_ACQUISITION_H_
