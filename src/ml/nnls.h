#ifndef ATUNE_ML_NNLS_H_
#define ATUNE_ML_NNLS_H_

#include "common/status.h"
#include "math/matrix.h"

namespace atune {

/// Solves the non-negative least squares problem
///   min_{x >= 0} ||A x - b||^2
/// by projected gradient descent with an optimal-ish fixed step (1/L where L
/// is a power-iteration estimate of ||A^T A||).
///
/// Ernest [Venkataraman et al., NSDI'16] fits its performance-vs-scale model
/// (serial + per-machine + communication terms) with NNLS so that every term
/// keeps a physical (non-negative) interpretation.
Result<Vec> SolveNnls(const Matrix& a, const Vec& b, size_t max_iters = 5000,
                      double tol = 1e-10);

}  // namespace atune

#endif  // ATUNE_ML_NNLS_H_
