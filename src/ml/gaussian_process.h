#ifndef ATUNE_ML_GAUSSIAN_PROCESS_H_
#define ATUNE_ML_GAUSSIAN_PROCESS_H_

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "math/matrix.h"

namespace atune {

/// Kernel families supported by the GP.
enum class KernelType {
  kSquaredExponential,  ///< k(r) = s^2 exp(-r^2/2), ARD lengthscales
  kMatern52,            ///< Matérn 5/2, ARD lengthscales
};

/// GP hyperparameters. Lengthscales are per input dimension (ARD).
struct GpHyperParams {
  KernelType kernel = KernelType::kMatern52;
  std::vector<double> lengthscales;  ///< one per dim; empty = 1.0 each
  double signal_variance = 1.0;      ///< s^2
  double noise_variance = 1e-4;      ///< observation noise
};

/// Posterior prediction at one point.
struct GpPrediction {
  double mean = 0.0;
  double variance = 0.0;  ///< posterior variance (>= 0)
};

/// Gaussian-process regression, the surrogate model behind iTuned [9] and
/// OtterTune [24]. Inputs are expected normalized to [0,1]^d; targets are
/// internally centered on their mean.
///
/// Usage:
///   GaussianProcess gp;
///   ATUNE_RETURN_IF_ERROR(gp.Fit(xs, ys));         // fixed hyperparameters
///   // or gp.FitWithHyperSearch(xs, ys, &rng);      // random-search ML-II
///   GpPrediction p = gp.Predict(x);
class GaussianProcess {
 public:
  GaussianProcess() = default;
  explicit GaussianProcess(GpHyperParams params) : params_(std::move(params)) {}

  /// Fits the posterior for the given data with the current hyperparameters.
  /// Adds jitter to the kernel diagonal as needed for stability.
  Status Fit(const std::vector<Vec>& xs, const Vec& ys);

  /// Fits hyperparameters by maximizing the log marginal likelihood over a
  /// random search of `budget` candidate hyperparameter settings, then fits
  /// the posterior with the winner.
  Status FitWithHyperSearch(const std::vector<Vec>& xs, const Vec& ys,
                            size_t budget, Rng* rng);

  /// Posterior mean/variance at x. Requires a successful Fit.
  GpPrediction Predict(const Vec& x) const;

  /// Log marginal likelihood of the fitted model.
  double LogMarginalLikelihood() const { return log_marginal_likelihood_; }

  bool fitted() const { return fitted_; }
  const GpHyperParams& params() const { return params_; }
  size_t num_points() const { return xs_.size(); }

 private:
  double KernelValue(const Vec& a, const Vec& b) const;

  GpHyperParams params_;
  std::vector<Vec> xs_;
  Vec alpha_;        // K^{-1} (y - mean)
  Matrix chol_;      // lower Cholesky factor of K + noise I
  double y_mean_ = 0.0;
  double log_marginal_likelihood_ = 0.0;
  bool fitted_ = false;
};

}  // namespace atune

#endif  // ATUNE_ML_GAUSSIAN_PROCESS_H_
