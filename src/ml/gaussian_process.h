#ifndef ATUNE_ML_GAUSSIAN_PROCESS_H_
#define ATUNE_ML_GAUSSIAN_PROCESS_H_

#include <cstddef>
#include <vector>

#include "common/arena.h"
#include "common/random.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "math/matrix.h"

namespace atune {

/// Kernel families supported by the GP.
enum class KernelType {
  kSquaredExponential,  ///< k(r) = s^2 exp(-r^2/2), ARD lengthscales
  kMatern52,            ///< Matérn 5/2, ARD lengthscales
};

/// GP hyperparameters. Lengthscales are per input dimension (ARD).
struct GpHyperParams {
  KernelType kernel = KernelType::kMatern52;
  std::vector<double> lengthscales;  ///< one per dim; empty = 1.0 each
  double signal_variance = 1.0;      ///< s^2
  double noise_variance = 1e-4;      ///< observation noise
  /// Inducing-point sparse approximation (DTC/SoR). 0 (the default) keeps
  /// the exact GP: that code path's arithmetic is completely untouched, so
  /// disabling the approximation is bit-identical by construction. When
  /// > 0 and the training set exceeds it, Fit selects this many inducing
  /// points by a deterministic farthest-point traversal and fits the DTC
  /// posterior instead — O(n m²) rather than O(n³), which keeps surrogates
  /// tractable as the knowledge repository grows past 10⁴ observations.
  /// With the inducing set equal to the training set the DTC predictive
  /// equals the exact GP, which is the accuracy contract tests pin down.
  size_t max_exact_points = 0;
};

/// Posterior prediction at one point.
struct GpPrediction {
  double mean = 0.0;
  double variance = 0.0;  ///< posterior variance (>= 0)
};

/// Reusable scratch for GaussianProcess::PredictBatch. Owns the arena the
/// batched kernels carve their candidate-transpose and kernel-row panels
/// from; after the first batch at a given (n, d) it is in steady state and
/// a PredictBatch call performs zero heap allocations. One scratch per
/// thread — it is not synchronized.
class GpScratch {
 public:
  GpScratch() = default;
  GpScratch(const GpScratch&) = delete;
  GpScratch& operator=(const GpScratch&) = delete;

 private:
  friend class GaussianProcess;
  ScratchArena arena_;
};

/// Gaussian-process regression, the surrogate model behind iTuned [9] and
/// OtterTune [24]. Inputs are expected normalized to [0,1]^d; targets are
/// internally centered on their mean.
///
/// Usage:
///   GaussianProcess gp;
///   ATUNE_RETURN_IF_ERROR(gp.Fit(xs, ys));         // fixed hyperparameters
///   // or gp.FitWithHyperSearch(xs, ys, &rng);      // random-search ML-II
///   GpPrediction p = gp.Predict(x);
class GaussianProcess {
 public:
  GaussianProcess() = default;
  explicit GaussianProcess(GpHyperParams params) : params_(std::move(params)) {}

  /// Fits the posterior for the given data with the current hyperparameters.
  /// Adds jitter to the kernel diagonal as needed for stability.
  Status Fit(const std::vector<Vec>& xs, const Vec& ys);

  /// Incrementally absorbs one observation into a fitted model. Appends a
  /// row to the cached Cholesky factor (Matrix::CholeskyAppendRow) and
  /// redoes only the O(n²) triangular solves, so growing the model by one
  /// point costs O(n²) instead of the O(n³) full refit — the per-iteration
  /// hot path of Bayesian optimization. The resulting posterior is
  /// bit-identical to Fit() on the extended data with the same
  /// hyperparameters (it performs the same arithmetic); if the append is
  /// numerically degenerate (e.g. a duplicate point), falls back to a full
  /// refit with jitter escalation. On an unfitted model, equivalent to
  /// Fit({x}, {y}).
  Status AddObservation(const Vec& x, double y);

  /// Observation eviction for drift adaptation (DESIGN.md §15): drops the
  /// oldest observations — insertion order of Fit/AddObservation — keeping
  /// the most recent `keep_last`, and refits the posterior on the retained
  /// window with the current hyperparameters. After a workload regime
  /// change, stale observations mislead the surrogate more than they
  /// inform it; evicting them is the cheapest rung of the re-tune
  /// degradation ladder. Returns the number of points evicted (0 when the
  /// model already holds <= keep_last points — then nothing is touched,
  /// so calling this on an untouched model is bit-identical to never
  /// calling it). keep_last == 0 resets the model to unfitted. If the
  /// refit on the retained window fails (degenerate kernel), the model is
  /// left unfitted rather than stale — the PR 5 honesty contract.
  size_t EvictOldest(size_t keep_last);

  /// Fits hyperparameters by maximizing the log marginal likelihood over a
  /// random search of `budget` candidate hyperparameter settings, then fits
  /// the posterior with the winner. With a non-null `pool`, candidate fits
  /// are evaluated concurrently on it; candidates are pre-drawn from `rng`
  /// and ties broken by candidate index, so the winner — and therefore the
  /// fitted model — is identical to the serial search.
  Status FitWithHyperSearch(const std::vector<Vec>& xs, const Vec& ys,
                            size_t budget, Rng* rng,
                            ThreadPool* pool = nullptr);

  /// Posterior mean/variance at x. Requires a successful Fit.
  GpPrediction Predict(const Vec& x) const;

  /// Batched Predict over a whole candidate matrix (one candidate per row,
  /// candidates.cols() == input dims). (*out)[r] is bit-identical to
  /// Predict(candidates.Row(r)) — same per-element operation order — but the
  /// kernel rows are built eight candidates at a time over the contiguous
  /// training-point cache and the eight triangular solves share the factor's
  /// memory traffic (internal::ForwardSolvePanel), which is where the
  /// acquisition-scan speedup gated by bench_hotpath comes from. `scratch`
  /// provides the panel storage and is reused across calls; `out` is
  /// resized (capacity persists for the caller's reuse).
  void PredictBatch(const Matrix& candidates, GpScratch* scratch,
                    std::vector<GpPrediction>* out) const;

  /// Batched kernel-row builder: rows->At(r, i) = k(candidates row r, x_i)
  /// for every training point i, bit-identical to the per-point KernelValue
  /// loop. `*rows` is caller-provided and only reallocated when its shape
  /// changes, so a caller looping over batches reuses the same storage.
  void BuildKernelRows(const Matrix& candidates, Matrix* rows) const;

  /// Log marginal likelihood of the fitted model.
  double LogMarginalLikelihood() const { return log_marginal_likelihood_; }

  bool fitted() const { return fitted_; }
  const GpHyperParams& params() const { return params_; }
  size_t num_points() const { return xs_.size(); }
  /// True when the last fit used the inducing-point approximation.
  bool sparse() const { return sparse_; }
  size_t num_inducing() const { return inducing_.size(); }

 private:
  double KernelValue(const Vec& a, const Vec& b) const;
  /// Shared scratch-free kernel-row builder over the flat training cache:
  /// out[i - begin] = k(x, x_i) for i in [begin, end), bit-identical to
  /// KernelValue(x, xs_[i]) (same per-dimension accumulation order, with
  /// the lengthscale clamp and kernel-type switch hoisted out of the loop).
  /// Requires flat_ok_ and x spanning clamped_ls_.size() doubles. Routes
  /// Predict's kstar, AddObservation's bordered row, Fit's kernel matrix,
  /// and BuildKernelRows.
  void KernelRowRangeInto(const double* x, size_t begin, size_t end,
                          double* out) const;
  /// Rebuilds xs_flat_/clamped_ls_ from xs_ and params_ (flat_ok_ = false
  /// when xs_ is ragged; every fast path then falls back to KernelValue).
  void RebuildFlatCache();
  /// k(x, x) for any x: both kernels evaluate to the signal variance at
  /// distance zero, so the self-kernel is a cached constant rather than a
  /// per-point distance computation.
  double SelfKernel() const { return params_.signal_variance; }
  /// Recomputes y_mean_/alpha_/LML from xs_, ys_ and the current chol_
  /// (two O(n²) triangular solves); shared by Fit and AddObservation.
  void RecomputePosterior();
  /// DTC inducing-point fit (Fit dispatches here past max_exact_points).
  /// A degenerate inducing set — non-finite kernel entries or a factor
  /// that stays indefinite through jitter escalation — returns kInternal
  /// and leaves the model unfitted (never a NaN posterior), per the PR 5
  /// honesty contract.
  Status SparseFit(const std::vector<Vec>& xs, const Vec& ys);
  GpPrediction SparsePredict(const Vec& x) const;

  GpHyperParams params_;
  std::vector<Vec> xs_;
  Vec xs_flat_;      // xs_ flattened row-major (n x d) for the batched paths
  Vec clamped_ls_;   // per-dim lengthscales with ScaledDistance's clamp baked in
  bool flat_ok_ = false;
  Vec ys_;           // raw targets (kept for recentering and refits)
  Vec alpha_;        // K^{-1} (y - mean)
  Matrix chol_;      // lower Cholesky factor of K + jitter I
  double y_mean_ = 0.0;
  double jitter_ = 0.0;  // diagonal jitter chol_ was computed with
  double log_marginal_likelihood_ = 0.0;
  bool fitted_ = false;

  // Inducing-point (DTC) state; meaningful only while sparse_ is true.
  // chol_/alpha_ are not maintained in sparse mode — every consumer
  // dispatches on sparse_ first.
  bool sparse_ = false;
  std::vector<Vec> inducing_;  // Z, the m selected inducing points
  Matrix kzz_chol_;            // chol(Kzz + jitter I)
  Matrix a_chol_;              // chol(Kzz + sigma^-2 Kzf Kfz + jitter I)
  Vec sparse_alpha_;           // sigma^-2 A^{-1} Kzf (y - mean)
};

}  // namespace atune

#endif  // ATUNE_ML_GAUSSIAN_PROCESS_H_
