#include "ml/neural_net.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace atune {

namespace {
constexpr double kAdamBeta1 = 0.9;
constexpr double kAdamBeta2 = 0.999;
constexpr double kAdamEps = 1e-8;
}  // namespace

Vec Mlp::Forward(const Vec& x, std::vector<Vec>* activations,
                 std::vector<Vec>* pre_activations) const {
  Vec a = x;
  if (activations != nullptr) activations->push_back(a);
  for (size_t li = 0; li < layers_.size(); ++li) {
    const Layer& layer = layers_[li];
    Vec z = layer.w.MultiplyVec(a);
    for (size_t i = 0; i < z.size(); ++i) z[i] += layer.b[i];
    if (pre_activations != nullptr) pre_activations->push_back(z);
    bool is_output = li + 1 == layers_.size();
    if (!is_output) {
      for (double& v : z) v = std::tanh(v);
    }
    a = std::move(z);
    if (activations != nullptr) activations->push_back(a);
  }
  return a;
}

Status Mlp::Fit(const std::vector<Vec>& xs, const Vec& ys) {
  if (xs.empty() || xs.size() != ys.size()) {
    return Status::InvalidArgument("Mlp::Fit: bad training data");
  }
  size_t n = xs.size();
  size_t in_dim = xs[0].size();

  x_scaler_.Fit(xs);
  std::vector<Vec> zs = x_scaler_.TransformAll(xs);
  y_mean_ = 0.0;
  for (double y : ys) y_mean_ += y;
  y_mean_ /= static_cast<double>(n);
  double var = 0.0;
  for (double y : ys) var += (y - y_mean_) * (y - y_mean_);
  y_std_ = std::sqrt(var / static_cast<double>(n));
  if (y_std_ < 1e-12) y_std_ = 1.0;
  Vec ty(n);
  for (size_t i = 0; i < n; ++i) ty[i] = (ys[i] - y_mean_) / y_std_;

  // Build layers: in -> hidden... -> 1.
  Rng rng(options_.seed);
  layers_.clear();
  std::vector<size_t> sizes;
  sizes.push_back(in_dim);
  for (size_t h : options_.hidden_layers) sizes.push_back(h);
  sizes.push_back(1);
  for (size_t li = 0; li + 1 < sizes.size(); ++li) {
    Layer layer;
    size_t fan_in = sizes[li];
    size_t fan_out = sizes[li + 1];
    double scale = std::sqrt(2.0 / static_cast<double>(fan_in + fan_out));
    layer.w = Matrix(fan_out, fan_in);
    for (size_t r = 0; r < fan_out; ++r) {
      for (size_t c = 0; c < fan_in; ++c) {
        layer.w.At(r, c) = rng.Normal(0.0, scale);
      }
    }
    layer.b.assign(fan_out, 0.0);
    layer.mw = Matrix(fan_out, fan_in);
    layer.vw = Matrix(fan_out, fan_in);
    layer.mb.assign(fan_out, 0.0);
    layer.vb.assign(fan_out, 0.0);
    layers_.push_back(std::move(layer));
  }

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  size_t step = 0;
  double last_epoch_loss = 0.0;
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng.engine());
    double epoch_loss = 0.0;
    for (size_t start = 0; start < n; start += options_.batch_size) {
      size_t end = std::min(start + options_.batch_size, n);
      size_t bs = end - start;
      // Accumulate gradients over the batch.
      std::vector<Matrix> gw;
      std::vector<Vec> gb;
      for (const Layer& layer : layers_) {
        gw.emplace_back(layer.w.rows(), layer.w.cols());
        gb.emplace_back(layer.b.size(), 0.0);
      }
      for (size_t bi = start; bi < end; ++bi) {
        size_t i = order[bi];
        std::vector<Vec> acts, pre;
        Vec out = Forward(zs[i], &acts, &pre);
        double err = out[0] - ty[i];
        epoch_loss += err * err;
        // Backprop. delta starts at output layer.
        Vec delta{2.0 * err / static_cast<double>(bs)};
        for (size_t li = layers_.size(); li-- > 0;) {
          const Vec& input = acts[li];
          for (size_t r = 0; r < layers_[li].w.rows(); ++r) {
            gb[li][r] += delta[r];
            for (size_t c = 0; c < layers_[li].w.cols(); ++c) {
              gw[li].At(r, c) += delta[r] * input[c];
            }
          }
          if (li == 0) break;
          // Propagate to previous layer through w and tanh'.
          Vec prev_delta(layers_[li].w.cols(), 0.0);
          for (size_t c = 0; c < layers_[li].w.cols(); ++c) {
            double acc = 0.0;
            for (size_t r = 0; r < layers_[li].w.rows(); ++r) {
              acc += layers_[li].w.At(r, c) * delta[r];
            }
            double a = acts[li][c];  // tanh output of layer li-1
            prev_delta[c] = acc * (1.0 - a * a);
          }
          delta = std::move(prev_delta);
        }
      }
      // Adam update.
      ++step;
      double bc1 = 1.0 - std::pow(kAdamBeta1, static_cast<double>(step));
      double bc2 = 1.0 - std::pow(kAdamBeta2, static_cast<double>(step));
      for (size_t li = 0; li < layers_.size(); ++li) {
        Layer& layer = layers_[li];
        for (size_t r = 0; r < layer.w.rows(); ++r) {
          for (size_t c = 0; c < layer.w.cols(); ++c) {
            double g = gw[li].At(r, c) + options_.weight_decay * layer.w.At(r, c);
            double& m = layer.mw.At(r, c);
            double& v = layer.vw.At(r, c);
            m = kAdamBeta1 * m + (1.0 - kAdamBeta1) * g;
            v = kAdamBeta2 * v + (1.0 - kAdamBeta2) * g * g;
            layer.w.At(r, c) -= options_.learning_rate * (m / bc1) /
                                (std::sqrt(v / bc2) + kAdamEps);
          }
          double g = gb[li][r];
          double& m = layer.mb[r];
          double& v = layer.vb[r];
          m = kAdamBeta1 * m + (1.0 - kAdamBeta1) * g;
          v = kAdamBeta2 * v + (1.0 - kAdamBeta2) * g * g;
          layer.b[r] -= options_.learning_rate * (m / bc1) /
                        (std::sqrt(v / bc2) + kAdamEps);
        }
      }
    }
    last_epoch_loss = epoch_loss / static_cast<double>(n);
  }
  final_loss_ = last_epoch_loss;
  fitted_ = true;
  return Status::OK();
}

double Mlp::Predict(const Vec& x) const {
  if (!fitted_) return 0.0;
  Vec z = x_scaler_.Transform(x);
  Vec out = Forward(z, nullptr, nullptr);
  return out[0] * y_std_ + y_mean_;
}

}  // namespace atune
