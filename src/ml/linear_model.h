#ifndef ATUNE_ML_LINEAR_MODEL_H_
#define ATUNE_ML_LINEAR_MODEL_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "math/matrix.h"

namespace atune {

/// Feature standardizer: z = (x - mean) / std per column.
/// Columns with zero variance map to 0.
class StandardScaler {
 public:
  /// Learns per-column means and stds from the rows of `xs`.
  void Fit(const std::vector<Vec>& xs);
  Vec Transform(const Vec& x) const;
  std::vector<Vec> TransformAll(const std::vector<Vec>& xs) const;
  Vec InverseTransform(const Vec& z) const;

  bool fitted() const { return !means_.empty(); }
  const Vec& means() const { return means_; }
  const Vec& stds() const { return stds_; }

 private:
  Vec means_;
  Vec stds_;
};

/// Ridge regression y ~ w.x + b, closed form via regularized normal
/// equations. The intercept is not penalized (handled by centering).
class RidgeRegression {
 public:
  explicit RidgeRegression(double lambda = 1e-3) : lambda_(lambda) {}

  Status Fit(const std::vector<Vec>& xs, const Vec& ys);
  double Predict(const Vec& x) const;

  const Vec& weights() const { return weights_; }
  double intercept() const { return intercept_; }
  bool fitted() const { return fitted_; }

 private:
  double lambda_;
  Vec weights_;
  double intercept_ = 0.0;
  bool fitted_ = false;
};

/// Lasso (L1) regression solved by cyclic coordinate descent on standardized
/// features. OtterTune [24] uses Lasso path ordering to rank configuration
/// knobs by importance; `weights()` magnitude gives that ranking.
class LassoRegression {
 public:
  explicit LassoRegression(double lambda = 0.1, size_t max_iters = 1000,
                           double tol = 1e-7)
      : lambda_(lambda), max_iters_(max_iters), tol_(tol) {}

  Status Fit(const std::vector<Vec>& xs, const Vec& ys);
  double Predict(const Vec& x) const;

  /// Weights in the standardized feature space (sparsity pattern is what
  /// matters for ranking).
  const Vec& weights() const { return weights_; }
  double intercept() const { return intercept_; }
  size_t NumNonZero(double eps = 1e-9) const;
  bool fitted() const { return fitted_; }

 private:
  double lambda_;
  size_t max_iters_;
  double tol_;
  StandardScaler scaler_;
  Vec weights_;       // in standardized space
  double intercept_ = 0.0;  // in original y units
  bool fitted_ = false;
};

/// Computes the Lasso regularization path: fits a sequence of decreasing
/// lambdas and records the order in which features first become non-zero.
/// Earlier activation = more important feature. Returns feature indices in
/// importance order (most important first); features that never activate are
/// appended in index order.
Result<std::vector<size_t>> LassoPathRanking(const std::vector<Vec>& xs,
                                             const Vec& ys,
                                             size_t num_lambdas = 30);

}  // namespace atune

#endif  // ATUNE_ML_LINEAR_MODEL_H_
