#include "ml/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace atune {

size_t NearestCentroid(const std::vector<Vec>& centroids, const Vec& x) {
  size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centroids.size(); ++c) {
    double d = SquaredDistance(centroids[c], x);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

Result<KMeansResult> KMeans(const std::vector<Vec>& points, size_t k, Rng* rng,
                            size_t max_iters) {
  if (points.empty()) {
    return Status::InvalidArgument("KMeans: no points");
  }
  if (k == 0 || k > points.size()) {
    return Status::InvalidArgument("KMeans: k must be in [1, n]");
  }
  size_t n = points.size();
  size_t dims = points[0].size();

  // k-means++ seeding.
  KMeansResult result;
  result.centroids.reserve(k);
  result.centroids.push_back(
      points[static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(n) - 1))]);
  std::vector<double> d2(n, 0.0);
  while (result.centroids.size() < k) {
    for (size_t i = 0; i < n; ++i) {
      d2[i] = SquaredDistance(points[i],
                              result.centroids[NearestCentroid(
                                  result.centroids, points[i])]);
    }
    size_t pick = rng->Categorical(d2);
    result.centroids.push_back(points[pick]);
  }

  result.assignments.assign(n, 0);
  for (size_t iter = 0; iter < max_iters; ++iter) {
    ++result.iterations;
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      size_t c = NearestCentroid(result.centroids, points[i]);
      if (c != result.assignments[i]) {
        result.assignments[i] = c;
        changed = true;
      }
    }
    // Recompute centroids.
    std::vector<Vec> sums(k, Vec(dims, 0.0));
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      size_t c = result.assignments[i];
      ++counts[c];
      for (size_t d = 0; d < dims; ++d) sums[c][d] += points[i][d];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // keep empty cluster's old centroid
      for (size_t d = 0; d < dims; ++d) {
        result.centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
    if (!changed && iter > 0) break;
  }

  result.inertia = 0.0;
  for (size_t i = 0; i < n; ++i) {
    result.inertia +=
        SquaredDistance(points[i], result.centroids[result.assignments[i]]);
  }
  return result;
}

Result<KMeansResult> KMeansAutoK(const std::vector<Vec>& points, size_t k_max,
                                 Rng* rng) {
  if (points.empty()) {
    return Status::InvalidArgument("KMeansAutoK: no points");
  }
  size_t n = points.size();
  size_t dims = points[0].size();
  (void)dims;
  k_max = std::min(k_max, n);
  // Elbow criterion: grow k while the next cluster still at least halves
  // the inertia; genuine extra clusters collapse it by far more, while
  // splitting noise inside one cluster only shaves it marginally.
  ATUNE_ASSIGN_OR_RETURN(KMeansResult best, KMeans(points, 1, rng));
  for (size_t k = 2; k <= k_max; ++k) {
    if (best.inertia <= 1e-9 * static_cast<double>(n)) break;
    ATUNE_ASSIGN_OR_RETURN(KMeansResult next, KMeans(points, k, rng));
    if (next.inertia > 0.5 * best.inertia) break;
    best = std::move(next);
  }
  return best;
}

}  // namespace atune
