#include "ml/nnls.h"

#include <algorithm>
#include <cmath>

namespace atune {

Result<Vec> SolveNnls(const Matrix& a, const Vec& b, size_t max_iters,
                      double tol) {
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("SolveNnls: A rows must match b size");
  }
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("SolveNnls: empty system");
  }
  Matrix at = a.Transpose();
  Matrix ata = at.Multiply(a);
  Vec atb = at.MultiplyVec(b);
  size_t dims = a.cols();

  // Power iteration for the Lipschitz constant L = lambda_max(A^T A).
  Vec v(dims, 1.0 / std::sqrt(static_cast<double>(dims)));
  double lambda = 1.0;
  for (int it = 0; it < 50; ++it) {
    Vec w = ata.MultiplyVec(v);
    double norm = Norm2(w);
    if (norm < 1e-15) break;
    lambda = norm;
    for (size_t i = 0; i < dims; ++i) v[i] = w[i] / norm;
  }
  double step = 1.0 / std::max(lambda, 1e-12);

  Vec x(dims, 0.0);
  for (size_t iter = 0; iter < max_iters; ++iter) {
    // gradient = A^T A x - A^T b
    Vec grad = ata.MultiplyVec(x);
    for (size_t i = 0; i < dims; ++i) grad[i] -= atb[i];
    double max_move = 0.0;
    for (size_t i = 0; i < dims; ++i) {
      double nx = std::max(0.0, x[i] - step * grad[i]);
      max_move = std::max(max_move, std::abs(nx - x[i]));
      x[i] = nx;
    }
    if (max_move < tol) break;
  }
  return x;
}

}  // namespace atune
