#include "ml/acquisition.h"

#include <cmath>

namespace atune {

namespace {
constexpr double kInvSqrt2Pi = 0.3989422804014327;
constexpr double kInvSqrt2 = 0.7071067811865475;
}  // namespace

double NormalPdf(double z) { return kInvSqrt2Pi * std::exp(-0.5 * z * z); }

double NormalCdf(double z) { return 0.5 * std::erfc(-z * kInvSqrt2); }

double ExpectedImprovement(const GpPrediction& pred, double best, double xi) {
  double sigma = std::sqrt(pred.variance);
  double improvement = best - xi - pred.mean;
  if (sigma < 1e-12) return improvement > 0.0 ? improvement : 0.0;
  double z = improvement / sigma;
  return improvement * NormalCdf(z) + sigma * NormalPdf(z);
}

double ProbabilityOfImprovement(const GpPrediction& pred, double best,
                                double xi) {
  double sigma = std::sqrt(pred.variance);
  if (sigma < 1e-12) return pred.mean < best - xi ? 1.0 : 0.0;
  return NormalCdf((best - xi - pred.mean) / sigma);
}

double LowerConfidenceBound(const GpPrediction& pred, double beta) {
  return -(pred.mean - beta * std::sqrt(pred.variance));
}

void ExpectedImprovementBatch(const std::vector<GpPrediction>& preds,
                              double best, double xi, Vec* out) {
  out->resize(preds.size());
  for (size_t i = 0; i < preds.size(); ++i) {
    (*out)[i] = ExpectedImprovement(preds[i], best, xi);
  }
}

void ProbabilityOfImprovementBatch(const std::vector<GpPrediction>& preds,
                                   double best, double xi, Vec* out) {
  out->resize(preds.size());
  for (size_t i = 0; i < preds.size(); ++i) {
    (*out)[i] = ProbabilityOfImprovement(preds[i], best, xi);
  }
}

void LowerConfidenceBoundBatch(const std::vector<GpPrediction>& preds,
                               double beta, Vec* out) {
  out->resize(preds.size());
  for (size_t i = 0; i < preds.size(); ++i) {
    (*out)[i] = LowerConfidenceBound(preds[i], beta);
  }
}

}  // namespace atune
