#include "ml/gaussian_process.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#if defined(__SSE2__) || defined(_M_X64)
#include <emmintrin.h>
#define ATUNE_HAVE_SSE2 1
#endif

namespace atune {

namespace {
constexpr double kTwoPi = 6.283185307179586;

double ScaledDistance(const Vec& a, const Vec& b,
                      const std::vector<double>& ls) {
  // Guard ragged inputs: only the overlapping dimensions contribute (a
  // mismatched caller gets a sane distance instead of an out-of-bounds
  // read of the shorter vector).
  size_t dims = std::min(a.size(), b.size());
  double acc = 0.0;
  for (size_t i = 0; i < dims; ++i) {
    double l = i < ls.size() ? ls[i] : 1.0;
    double d = (a[i] - b[i]) / (l > 1e-12 ? l : 1e-12);
    acc += d * d;
  }
  return std::sqrt(acc);
}
}  // namespace

double GaussianProcess::KernelValue(const Vec& a, const Vec& b) const {
  double r = ScaledDistance(a, b, params_.lengthscales);
  switch (params_.kernel) {
    case KernelType::kSquaredExponential:
      return params_.signal_variance * std::exp(-0.5 * r * r);
    case KernelType::kMatern52: {
      double s = std::sqrt(5.0) * r;
      return params_.signal_variance * (1.0 + s + s * s / 3.0) * std::exp(-s);
    }
  }
  return 0.0;
}

void GaussianProcess::RebuildFlatCache() {
  size_t n = xs_.size();
  size_t d = n > 0 ? xs_[0].size() : 0;
  flat_ok_ = d > 0;
  for (const Vec& x : xs_) {
    if (x.size() != d) {
      flat_ok_ = false;
      break;
    }
  }
  clamped_ls_.resize(d);
  const std::vector<double>& ls = params_.lengthscales;
  for (size_t j = 0; j < d; ++j) {
    double l = j < ls.size() ? ls[j] : 1.0;
    clamped_ls_[j] = l > 1e-12 ? l : 1e-12;
  }
  if (!flat_ok_) {
    xs_flat_.clear();
    return;
  }
  xs_flat_.resize(n * d);
  for (size_t i = 0; i < n; ++i) {
    std::copy(xs_[i].begin(), xs_[i].end(), xs_flat_.begin() + i * d);
  }
}

void GaussianProcess::KernelRowRangeInto(const double* x, size_t begin,
                                         size_t end, double* out) const {
  size_t d = clamped_ls_.size();
  const double* ls = clamped_ls_.data();
  // ScaledDistance's per-element clamp is baked into clamped_ls_ and the
  // kernel switch is hoisted; the accumulation (candidate minus point, per
  // dimension, ascending) and the sqrt→kernel round trip are exactly
  // KernelValue's, so each output is bit-identical.
  bool se = params_.kernel == KernelType::kSquaredExponential;
  double sv = params_.signal_variance;
  for (size_t i = begin; i < end; ++i) {
    const double* xi = xs_flat_.data() + i * d;
    double acc = 0.0;
    for (size_t j = 0; j < d; ++j) {
      double diff = (x[j] - xi[j]) / ls[j];
      acc += diff * diff;
    }
    double r = std::sqrt(acc);
    if (se) {
      out[i - begin] = sv * std::exp(-0.5 * r * r);
    } else {
      double s = std::sqrt(5.0) * r;
      out[i - begin] = sv * (1.0 + s + s * s / 3.0) * std::exp(-s);
    }
  }
}

Status GaussianProcess::Fit(const std::vector<Vec>& xs, const Vec& ys) {
  if (xs.empty() || xs.size() != ys.size()) {
    return Status::InvalidArgument("GP Fit: empty data or size mismatch");
  }
  size_t n = xs.size();
  size_t dims = xs[0].size();
  if (params_.lengthscales.empty()) {
    params_.lengthscales.assign(dims, 0.3);
  }
  if (params_.max_exact_points > 0 && n > params_.max_exact_points) {
    return SparseFit(xs, ys);
  }

  xs_ = xs;
  ys_ = ys;
  sparse_ = false;  // mode bookkeeping only; the exact arithmetic below is
                    // untouched by the sparse path's existence
  RebuildFlatCache();

  Matrix k(n, n);
  if (flat_ok_ && !ScalarKernelsForTesting()) {
    // Upper triangle row by row through the shared kernel-row builder
    // (contiguous spans, hoisted clamp/switch), then mirror — the values
    // are bit-identical to the per-pair KernelValue loop below.
    for (size_t i = 0; i < n; ++i) {
      k.At(i, i) = SelfKernel();
      KernelRowRangeInto(xs_flat_.data() + i * dims, i + 1, n,
                         k.RowPtr(i) + i + 1);
    }
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) k.At(j, i) = k.At(i, j);
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      k.At(i, i) = SelfKernel();
      for (size_t j = i + 1; j < n; ++j) {
        double v = KernelValue(xs[i], xs[j]);
        k.At(i, j) = v;
        k.At(j, i) = v;
      }
    }
  }
  double jitter = params_.noise_variance;
  Result<Matrix> chol = Status::Internal("unset");
  for (int attempt = 0; attempt < 6; ++attempt) {
    Matrix kj = k;
    kj.AddDiagonal(jitter);
    chol = kj.Cholesky();
    if (chol.ok()) break;
    jitter = std::max(jitter * 10.0, 1e-10);
  }
  if (!chol.ok()) {
    return Status::Internal("GP Fit: kernel matrix not positive definite");
  }
  chol_ = std::move(chol).value();
  jitter_ = jitter;
  RecomputePosterior();
  return Status::OK();
}

void GaussianProcess::RecomputePosterior() {
  size_t n = xs_.size();
  y_mean_ = 0.0;
  for (double y : ys_) y_mean_ += y;
  y_mean_ /= static_cast<double>(n);
  // Thread-local buffers + the *Into solves keep the per-refit triangular
  // pass allocation-free in steady state (each thread's buffers grow to the
  // session's high-water n and stay there).
  static thread_local Vec centered;
  static thread_local Vec y1;
  centered.resize(n);
  y1.resize(n);
  for (size_t i = 0; i < n; ++i) centered[i] = ys_[i] - y_mean_;
  Matrix::ForwardSolveInto(chol_, centered.data(), y1.data());
  alpha_.resize(n);
  Matrix::BackwardSolveTransposeInto(chol_, y1.data(), alpha_.data());

  // log p(y) = -1/2 y^T alpha - 1/2 log|K| - n/2 log(2 pi)
  double fit_term = -0.5 * Dot(centered, alpha_);
  double det_term = -0.5 * Matrix::LogDetFromCholesky(chol_);
  double const_term = -0.5 * static_cast<double>(n) * std::log(kTwoPi);
  log_marginal_likelihood_ = fit_term + det_term + const_term;
  fitted_ = true;
}

Status GaussianProcess::AddObservation(const Vec& x, double y) {
  if (!fitted_) return Fit({x}, Vec{y});
  if (x.size() != xs_[0].size()) {
    return Status::InvalidArgument(
        "GP AddObservation: dimension mismatch with fitted data");
  }
  if (sparse_ || (params_.max_exact_points > 0 &&
                  xs_.size() + 1 > params_.max_exact_points)) {
    // Sparse mode has no incremental factor to border, and an exact model
    // crossing the threshold must switch modes: refit, re-selecting the
    // inducing set over the extended data. Copy out — Fit overwrites the
    // members it reads from.
    std::vector<Vec> xs = xs_;
    xs.push_back(x);
    Vec ys = ys_;
    ys.push_back(y);
    return Fit(xs, ys);
  }
  ScopedSpan span(CurrentTracer(), "gp_fit");
  if (span.active()) {
    span.AddArg("mode", "incremental");
    span.AddArg("n", std::to_string(xs_.size() + 1));
  }
  size_t n = xs_.size();
  // The bordered kernel row goes through the shared builder over the flat
  // cache — no per-observation Vec, same bits as the KernelValue loop.
  static thread_local Vec row;
  row.resize(n + 1);
  if (flat_ok_ && !ScalarKernelsForTesting() && x.size() == clamped_ls_.size()) {
    KernelRowRangeInto(x.data(), 0, n, row.data());
  } else {
    for (size_t i = 0; i < n; ++i) row[i] = KernelValue(x, xs_[i]);
  }
  row[n] = SelfKernel() + jitter_;
  Status appended = chol_.CholeskyAppendRow(row);
  xs_.push_back(x);
  ys_.push_back(y);
  if (flat_ok_ && x.size() == clamped_ls_.size()) {
    xs_flat_.insert(xs_flat_.end(), x.begin(), x.end());
  } else {
    RebuildFlatCache();
  }
  if (!appended.ok()) {
    // Degenerate append (duplicate/near-duplicate point): rebuild from
    // scratch, letting Fit escalate the jitter. Copy out first — Fit
    // overwrites the members it reads from.
    if (MetricsRegistry* metrics = CurrentMetrics()) {
      metrics->GetCounter("gp.incremental_fallbacks")->Increment();
    }
    std::vector<Vec> xs = xs_;
    Vec ys = ys_;
    return Fit(xs, ys);
  }
  if (MetricsRegistry* metrics = CurrentMetrics()) {
    metrics->GetCounter("gp.incremental_refits")->Increment();
  }
  RecomputePosterior();
  return Status::OK();
}

size_t GaussianProcess::EvictOldest(size_t keep_last) {
  const size_t n = xs_.size();
  if (n <= keep_last) return 0;
  const size_t evicted = n - keep_last;
  if (MetricsRegistry* metrics = CurrentMetrics()) {
    metrics->GetCounter("gp.evicted_observations")->Increment(evicted);
  }
  if (keep_last == 0) {
    xs_.clear();
    ys_.clear();
    fitted_ = false;
    sparse_ = false;
    RebuildFlatCache();
    return evicted;
  }
  // Copy the retained tail out first — Fit overwrites the members it reads
  // from (the AddObservation fallback discipline above).
  std::vector<Vec> xs(xs_.end() - static_cast<ptrdiff_t>(keep_last),
                      xs_.end());
  Vec ys(ys_.end() - static_cast<ptrdiff_t>(keep_last), ys_.end());
  if (!Fit(xs, ys).ok()) {
    // Honesty over staleness: a window too degenerate to refit leaves the
    // model unfitted, never silently serving the pre-eviction posterior.
    fitted_ = false;
    sparse_ = false;
  }
  return evicted;
}

Status GaussianProcess::FitWithHyperSearch(const std::vector<Vec>& xs,
                                           const Vec& ys, size_t budget,
                                           Rng* rng, ThreadPool* pool) {
  if (xs.empty() || xs.size() != ys.size()) {
    return Status::InvalidArgument("GP Fit: empty data or size mismatch");
  }
  ScopedSpan span(CurrentTracer(), "gp_fit");
  if (span.active()) {
    span.AddArg("mode", "hyper_search");
    span.AddArg("n", std::to_string(xs.size()));
    span.AddArg("budget", std::to_string(budget));
  }
  if (MetricsRegistry* metrics = CurrentMetrics()) {
    metrics->GetCounter("gp.hyper_searches")->Increment();
  }
  size_t dims = xs[0].size();
  double y_var = 0.0;
  {
    double m = 0.0;
    for (double y : ys) m += y;
    m /= static_cast<double>(ys.size());
    for (double y : ys) y_var += (y - m) * (y - m);
    y_var /= std::max<size_t>(ys.size() - 1, 1);
    if (y_var <= 0.0) y_var = 1.0;
  }

  // Candidates are drawn up front — the same rng sequence whether they are
  // then scored serially or on the pool, keeping the search deterministic.
  std::vector<GpHyperParams> candidates(std::max<size_t>(budget, 1));
  for (GpHyperParams& cand : candidates) {
    cand.kernel = params_.kernel;
    // The approximation setting rides along: probes past the threshold fit
    // (and score) sparsely, and the winning candidate must not silently
    // reset the mode when it is assigned back into params_.
    cand.max_exact_points = params_.max_exact_points;
    cand.lengthscales.resize(dims);
    for (double& l : cand.lengthscales) {
      // Log-uniform lengthscales over [0.05, 2] of the unit cube.
      l = std::exp(rng->Uniform(std::log(0.05), std::log(2.0)));
    }
    cand.signal_variance = y_var * std::exp(rng->Uniform(std::log(0.2),
                                                         std::log(5.0)));
    cand.noise_variance =
        y_var * std::exp(rng->Uniform(std::log(1e-6), std::log(1e-1)));
  }

  // Score each candidate's log marginal likelihood (NaN = failed fit).
  std::vector<double> lml(candidates.size());
  auto score = [&xs, &ys](const GpHyperParams& cand) -> double {
    GaussianProcess probe(cand);
    if (!probe.Fit(xs, ys).ok()) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    return probe.LogMarginalLikelihood();
  };
  if (pool != nullptr && candidates.size() > 1) {
    std::vector<std::future<double>> futures;
    futures.reserve(candidates.size());
    for (const GpHyperParams& cand : candidates) {
      futures.push_back(pool->Submit([&score, &cand]() { return score(cand); }));
    }
    for (size_t i = 0; i < futures.size(); ++i) lml[i] = futures[i].get();
  } else {
    for (size_t i = 0; i < candidates.size(); ++i) lml[i] = score(candidates[i]);
  }

  // First strictly-better candidate wins — index order breaks ties exactly
  // like the serial loop did.
  GpHyperParams best;
  double best_lml = -std::numeric_limits<double>::infinity();
  bool found = false;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (std::isnan(lml[i])) continue;
    if (lml[i] > best_lml) {
      best_lml = lml[i];
      best = candidates[i];
      found = true;
    }
  }
  if (!found) {
    // Every candidate produced a non-finite log marginal likelihood: the
    // design is degenerate (duplicated points, non-finite targets). Fitting
    // defaults anyway would hand callers a model built on garbage; surface
    // kInternal so a supervision layer can fail over instead.
    return Status::Internal(StrFormat(
        "GP hyper search: all %zu candidates produced a non-finite log "
        "marginal likelihood (degenerate design of %zu points)",
        candidates.size(), xs.size()));
  }
  params_ = best;
  return Fit(xs, ys);
}

GpPrediction GaussianProcess::Predict(const Vec& x) const {
  GpPrediction out;
  if (!fitted_) return out;
  if (sparse_) return SparsePredict(x);
  size_t n = xs_.size();
  if (ScalarKernelsForTesting() || !flat_ok_ || x.size() != clamped_ls_.size()) {
    // Pre-speed-layer path, kept verbatim: the scalar half of the
    // bench_hotpath A/B, and the fallback for ragged inputs. Bit-identical
    // to the fast path below.
    Vec kstar(n);
    for (size_t i = 0; i < n; ++i) kstar[i] = KernelValue(x, xs_[i]);
    out.mean = y_mean_ + Dot(kstar, alpha_);
    Vec v = Matrix::ForwardSolve(chol_, kstar);
    double var = SelfKernel() - Dot(v, v);
    out.variance = std::max(var, 0.0);
    return out;
  }
  // The kstar Vec the old loop rebuilt per candidate is gone: thread-local
  // buffers reach steady state after the first call at a given n.
  static thread_local Vec kstar;
  static thread_local Vec v;
  kstar.resize(n);
  v.resize(n);
  KernelRowRangeInto(x.data(), 0, n, kstar.data());
  out.mean = y_mean_ + DotSpan(kstar.data(), alpha_.data(), n);
  Matrix::ForwardSolveInto(chol_, kstar.data(), v.data());
  double var = SelfKernel() - DotSpan(v.data(), v.data(), n);
  out.variance = std::max(var, 0.0);
  return out;
}

void GaussianProcess::PredictBatch(const Matrix& candidates, GpScratch* scratch,
                                   std::vector<GpPrediction>* out) const {
  size_t m = candidates.rows();
  out->assign(m, GpPrediction{});
  if (!fitted_ || m == 0) return;
  if (sparse_) {
    // The sparse posterior has a single (scalar) evaluation path, so the
    // batched call is just the per-row loop — no fast/scalar split to keep
    // bit-identical.
    for (size_t r = 0; r < m; ++r) (*out)[r] = SparsePredict(candidates.Row(r));
    return;
  }
  size_t n = xs_.size();
  size_t d = clamped_ls_.size();
  if (ScalarKernelsForTesting() || !flat_ok_ || candidates.cols() != d ||
      scratch == nullptr) {
    // Scalar A/B half (and ragged fallback): one Predict per row.
    for (size_t r = 0; r < m; ++r) (*out)[r] = Predict(candidates.Row(r));
    return;
  }
  // 16 lanes: the panel solve streams the whole Cholesky factor once per
  // chunk, so wider chunks halve the dominant memory traffic versus 8.
  constexpr size_t kLanes = 16;
  ScratchArena& arena = scratch->arena_;
  arena.Reset();
  double* ct = arena.AllocateArray<double>(d * kLanes);
  double* panel = arena.AllocateArray<double>(n * kLanes);
  bool se = params_.kernel == KernelType::kSquaredExponential;
  double sv = params_.signal_variance;
  const double* ls = clamped_ls_.data();
  for (size_t c0 = 0; c0 < m; c0 += kLanes) {
    size_t w = std::min(kLanes, m - c0);
    // Transpose the candidate chunk to d x kLanes so the per-dimension loop
    // below is lane-contiguous; dead lanes repeat the last real candidate
    // (finite arithmetic, results discarded).
    for (size_t j = 0; j < d; ++j) {
      double* cj = ct + j * kLanes;
      for (size_t c = 0; c < kLanes; ++c) {
        cj[c] = candidates.At(c0 + (c < w ? c : w - 1), j);
      }
    }
    // Kernel-row panel: panel[i][c] = k(candidate c, x_i). Per (i, c) the
    // accumulation order and sqrt→kernel round trip are exactly
    // KernelRowRangeInto's, so each lane matches Predict bit for bit.
    for (size_t i = 0; i < n; ++i) {
      const double* xi = xs_flat_.data() + i * d;
      double acc[kLanes] = {};
#if defined(ATUNE_HAVE_SSE2)
      // Hand-vectorized per-lane chains (GCC's auto-vectorizer interleaves
      // the array-accumulator form into shuffle-bound code). Each lane's
      // add/divide order is unchanged, so bits match the scalar loop.
      for (size_t h = 0; h < kLanes; h += 8) {
        __m128d a0 = _mm_setzero_pd(), a1 = _mm_setzero_pd();
        __m128d a2 = _mm_setzero_pd(), a3 = _mm_setzero_pd();
        for (size_t j = 0; j < d; ++j) {
          const __m128d xij = _mm_set1_pd(xi[j]);
          const __m128d lj = _mm_set1_pd(ls[j]);
          const double* cj = ct + j * kLanes + h;
          __m128d d0 = _mm_div_pd(_mm_sub_pd(_mm_loadu_pd(cj + 0), xij), lj);
          __m128d d1 = _mm_div_pd(_mm_sub_pd(_mm_loadu_pd(cj + 2), xij), lj);
          __m128d d2 = _mm_div_pd(_mm_sub_pd(_mm_loadu_pd(cj + 4), xij), lj);
          __m128d d3 = _mm_div_pd(_mm_sub_pd(_mm_loadu_pd(cj + 6), xij), lj);
          a0 = _mm_add_pd(a0, _mm_mul_pd(d0, d0));
          a1 = _mm_add_pd(a1, _mm_mul_pd(d1, d1));
          a2 = _mm_add_pd(a2, _mm_mul_pd(d2, d2));
          a3 = _mm_add_pd(a3, _mm_mul_pd(d3, d3));
        }
        _mm_storeu_pd(acc + h + 0, a0);
        _mm_storeu_pd(acc + h + 2, a1);
        _mm_storeu_pd(acc + h + 4, a2);
        _mm_storeu_pd(acc + h + 6, a3);
      }
#else
      for (size_t j = 0; j < d; ++j) {
        double xij = xi[j];
        double lj = ls[j];
        const double* cj = ct + j * kLanes;
        for (size_t c = 0; c < kLanes; ++c) {
          double diff = (cj[c] - xij) / lj;
          acc[c] += diff * diff;
        }
      }
#endif
      double* pi = panel + i * kLanes;
      if (se) {
        for (size_t c = 0; c < kLanes; ++c) {
          double r = std::sqrt(acc[c]);
          pi[c] = sv * std::exp(-0.5 * r * r);
        }
      } else {
        for (size_t c = 0; c < kLanes; ++c) {
          double s = std::sqrt(5.0) * std::sqrt(acc[c]);
          pi[c] = sv * (1.0 + s + s * s / 3.0) * std::exp(-s);
        }
      }
    }
    // Means before the in-place solve consumes the panel (ascending i, the
    // same order as Dot(kstar, alpha_)).
    double mean_acc[kLanes] = {};
    double var_acc[kLanes] = {};
#if defined(ATUNE_HAVE_SSE2)
    for (size_t h = 0; h < kLanes; h += 8) {
      __m128d m0 = _mm_setzero_pd(), m1 = _mm_setzero_pd();
      __m128d m2 = _mm_setzero_pd(), m3 = _mm_setzero_pd();
      for (size_t i = 0; i < n; ++i) {
        const __m128d ai = _mm_set1_pd(alpha_[i]);
        const double* pi = panel + i * kLanes + h;
        m0 = _mm_add_pd(m0, _mm_mul_pd(_mm_loadu_pd(pi + 0), ai));
        m1 = _mm_add_pd(m1, _mm_mul_pd(_mm_loadu_pd(pi + 2), ai));
        m2 = _mm_add_pd(m2, _mm_mul_pd(_mm_loadu_pd(pi + 4), ai));
        m3 = _mm_add_pd(m3, _mm_mul_pd(_mm_loadu_pd(pi + 6), ai));
      }
      _mm_storeu_pd(mean_acc + h + 0, m0);
      _mm_storeu_pd(mean_acc + h + 2, m1);
      _mm_storeu_pd(mean_acc + h + 4, m2);
      _mm_storeu_pd(mean_acc + h + 6, m3);
    }
    internal::ForwardSolvePanel(chol_, panel, kLanes, kLanes);
    for (size_t h = 0; h < kLanes; h += 8) {
      __m128d v0 = _mm_setzero_pd(), v1 = _mm_setzero_pd();
      __m128d v2 = _mm_setzero_pd(), v3 = _mm_setzero_pd();
      for (size_t i = 0; i < n; ++i) {
        const double* pi = panel + i * kLanes + h;
        const __m128d r0 = _mm_loadu_pd(pi + 0);
        const __m128d r1 = _mm_loadu_pd(pi + 2);
        const __m128d r2 = _mm_loadu_pd(pi + 4);
        const __m128d r3 = _mm_loadu_pd(pi + 6);
        v0 = _mm_add_pd(v0, _mm_mul_pd(r0, r0));
        v1 = _mm_add_pd(v1, _mm_mul_pd(r1, r1));
        v2 = _mm_add_pd(v2, _mm_mul_pd(r2, r2));
        v3 = _mm_add_pd(v3, _mm_mul_pd(r3, r3));
      }
      _mm_storeu_pd(var_acc + h + 0, v0);
      _mm_storeu_pd(var_acc + h + 2, v1);
      _mm_storeu_pd(var_acc + h + 4, v2);
      _mm_storeu_pd(var_acc + h + 6, v3);
    }
#else
    for (size_t i = 0; i < n; ++i) {
      double ai = alpha_[i];
      const double* pi = panel + i * kLanes;
      for (size_t c = 0; c < kLanes; ++c) mean_acc[c] += pi[c] * ai;
    }
    internal::ForwardSolvePanel(chol_, panel, kLanes, kLanes);
    for (size_t i = 0; i < n; ++i) {
      const double* pi = panel + i * kLanes;
      for (size_t c = 0; c < kLanes; ++c) var_acc[c] += pi[c] * pi[c];
    }
#endif
    for (size_t c = 0; c < w; ++c) {
      GpPrediction& p = (*out)[c0 + c];
      p.mean = y_mean_ + mean_acc[c];
      p.variance = std::max(SelfKernel() - var_acc[c], 0.0);
    }
  }
}

void GaussianProcess::BuildKernelRows(const Matrix& candidates,
                                      Matrix* rows) const {
  size_t m = candidates.rows();
  size_t n = xs_.size();
  if (rows->rows() != m || rows->cols() != n) *rows = Matrix(m, n);
  if (!fitted_) return;
  if (ScalarKernelsForTesting() || !flat_ok_ ||
      candidates.cols() != clamped_ls_.size()) {
    for (size_t r = 0; r < m; ++r) {
      Vec cand = candidates.Row(r);
      double* out_row = rows->RowPtr(r);
      for (size_t i = 0; i < n; ++i) out_row[i] = KernelValue(cand, xs_[i]);
    }
    return;
  }
  for (size_t r = 0; r < m; ++r) {
    KernelRowRangeInto(candidates.RowPtr(r), 0, n, rows->RowPtr(r));
  }
}

Status GaussianProcess::SparseFit(const std::vector<Vec>& xs, const Vec& ys) {
  size_t n = xs.size();
  size_t m = std::min(params_.max_exact_points, n);
  ScopedSpan span(CurrentTracer(), "gp_fit");
  if (span.active()) {
    span.AddArg("mode", "sparse");
    span.AddArg("n", std::to_string(n));
  }
  if (MetricsRegistry* metrics = CurrentMetrics()) {
    metrics->GetCounter("gp.sparse_fits")->Increment();
  }
  xs_ = xs;
  ys_ = ys;
  RebuildFlatCache();
  fitted_ = false;
  sparse_ = false;

  // Deterministic farthest-point (k-center greedy) inducing selection in
  // the lengthscale-scaled metric, seeded at the first point; ties go to
  // the lowest index. Stops early when every remaining point duplicates a
  // selected one — the inducing set never carries duplicate rows.
  std::vector<size_t> sel;
  sel.reserve(m);
  sel.push_back(0);
  Vec mind(n);
  for (size_t i = 0; i < n; ++i) {
    mind[i] = ScaledDistance(xs[i], xs[0], params_.lengthscales);
  }
  while (sel.size() < m) {
    size_t best = 0;
    for (size_t i = 1; i < n; ++i) {
      if (mind[i] > mind[best]) best = i;
    }
    if (!(mind[best] > 1e-12)) break;  // NaN distances also stop here
    sel.push_back(best);
    for (size_t i = 0; i < n; ++i) {
      mind[i] = std::min(mind[i], ScaledDistance(xs[i], xs[best],
                                                 params_.lengthscales));
    }
  }
  inducing_.clear();
  for (size_t idx : sel) inducing_.push_back(xs[idx]);
  m = inducing_.size();

  // Kzz (m x m) and Kzf (m x n). The sparse posterior has one evaluation
  // path (plain KernelValue), so there is no fast/scalar split to keep
  // bit-identical here.
  Matrix kzz(m, m);
  for (size_t i = 0; i < m; ++i) {
    kzz.At(i, i) = SelfKernel();
    for (size_t j = i + 1; j < m; ++j) {
      double v = KernelValue(inducing_[i], inducing_[j]);
      kzz.At(i, j) = v;
      kzz.At(j, i) = v;
    }
  }
  Matrix kzf(m, n);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      kzf.At(i, j) = KernelValue(inducing_[i], xs[j]);
    }
  }
  for (double v : kzz.data()) {
    if (!std::isfinite(v)) {
      return Status::Internal(
          "GP sparse fit: degenerate inducing set (non-finite Kzz)");
    }
  }
  for (double v : kzf.data()) {
    if (!std::isfinite(v)) {
      return Status::Internal(
          "GP sparse fit: degenerate inducing set (non-finite Kzf)");
    }
  }

  // A = Kzz + sigma^-2 Kzf Kfz; jitter escalates on both factors together
  // so the predictive's two quadratic terms stay consistent.
  double sigma2 = std::max(params_.noise_variance, 1e-10);
  Matrix a(m, m);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i; j < m; ++j) {
      double acc = 0.0;
      const double* ri = kzf.RowPtr(i);
      const double* rj = kzf.RowPtr(j);
      for (size_t t = 0; t < n; ++t) acc += ri[t] * rj[t];
      double v = kzz.At(i, j) + acc / sigma2;
      a.At(i, j) = v;
      a.At(j, i) = v;
    }
  }
  double jitter = 1e-10;
  Result<Matrix> kzz_chol = Status::Internal("unset");
  Result<Matrix> a_chol = Status::Internal("unset");
  for (int attempt = 0; attempt < 6; ++attempt) {
    Matrix kzz_j = kzz;
    kzz_j.AddDiagonal(jitter);
    kzz_chol = kzz_j.Cholesky();
    Matrix a_j = a;
    a_j.AddDiagonal(jitter);
    a_chol = a_j.Cholesky();
    if (kzz_chol.ok() && a_chol.ok()) break;
    jitter *= 10.0;
  }
  if (!kzz_chol.ok() || !a_chol.ok()) {
    return Status::Internal(
        "GP sparse fit: degenerate inducing set (factorization failed "
        "through jitter escalation)");
  }
  kzz_chol_ = std::move(kzz_chol).value();
  a_chol_ = std::move(a_chol).value();
  jitter_ = jitter;

  y_mean_ = 0.0;
  for (double y : ys_) y_mean_ += y;
  y_mean_ /= static_cast<double>(n);
  Vec centered(n);
  for (size_t i = 0; i < n; ++i) centered[i] = ys_[i] - y_mean_;
  Vec b(m);
  for (size_t i = 0; i < m; ++i) {
    double acc = 0.0;
    const double* ri = kzf.RowPtr(i);
    for (size_t t = 0; t < n; ++t) acc += ri[t] * centered[t];
    b[i] = acc;
  }
  Vec y1 = Matrix::ForwardSolve(a_chol_, b);
  Vec ainv_b = Matrix::BackwardSolveTranspose(a_chol_, y1);
  sparse_alpha_.resize(m);
  for (size_t i = 0; i < m; ++i) sparse_alpha_[i] = ainv_b[i] / sigma2;

  // DTC log marginal likelihood of y ~ N(mean, Qff + sigma^2 I) via the
  // Woodbury/determinant lemmas:
  //   y^T (.)^-1 y = sigma^-2 yc^T yc - sigma^-2 b^T alpha
  //   log|.|       = log|A| - log|Kzz| + n log sigma^2
  double yty = 0.0;
  for (double v : centered) yty += v * v;
  double fit_term = -0.5 * (yty / sigma2 - Dot(b, sparse_alpha_) / sigma2);
  double det_term = -0.5 * (Matrix::LogDetFromCholesky(a_chol_) -
                            Matrix::LogDetFromCholesky(kzz_chol_) +
                            static_cast<double>(n) * std::log(sigma2));
  double const_term = -0.5 * static_cast<double>(n) * std::log(kTwoPi);
  log_marginal_likelihood_ = fit_term + det_term + const_term;
  if (!std::isfinite(log_marginal_likelihood_) ||
      !std::isfinite(Dot(sparse_alpha_, sparse_alpha_))) {
    return Status::Internal(
        "GP sparse fit: degenerate inducing set (non-finite posterior)");
  }
  sparse_ = true;
  fitted_ = true;
  return Status::OK();
}

GpPrediction GaussianProcess::SparsePredict(const Vec& x) const {
  // DTC predictive: mean = kz^T alpha, var = k** - kz^T Kzz^-1 kz
  // + kz^T A^-1 kz. A >= Kzz in the PSD order, so the variance never
  // exceeds the prior and the clamp below only absorbs rounding.
  GpPrediction out;
  size_t m = inducing_.size();
  Vec kz(m);
  for (size_t i = 0; i < m; ++i) kz[i] = KernelValue(x, inducing_[i]);
  out.mean = y_mean_ + Dot(kz, sparse_alpha_);
  Vec v = Matrix::ForwardSolve(kzz_chol_, kz);
  Vec w = Matrix::ForwardSolve(a_chol_, kz);
  double var = SelfKernel() - Dot(v, v) + Dot(w, w);
  out.variance = std::max(var, 0.0);
  return out;
}

}  // namespace atune
