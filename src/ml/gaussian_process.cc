#include "ml/gaussian_process.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace atune {

namespace {
constexpr double kTwoPi = 6.283185307179586;

double ScaledDistance(const Vec& a, const Vec& b,
                      const std::vector<double>& ls) {
  // Guard ragged inputs: only the overlapping dimensions contribute (a
  // mismatched caller gets a sane distance instead of an out-of-bounds
  // read of the shorter vector).
  size_t dims = std::min(a.size(), b.size());
  double acc = 0.0;
  for (size_t i = 0; i < dims; ++i) {
    double l = i < ls.size() ? ls[i] : 1.0;
    double d = (a[i] - b[i]) / (l > 1e-12 ? l : 1e-12);
    acc += d * d;
  }
  return std::sqrt(acc);
}
}  // namespace

double GaussianProcess::KernelValue(const Vec& a, const Vec& b) const {
  double r = ScaledDistance(a, b, params_.lengthscales);
  switch (params_.kernel) {
    case KernelType::kSquaredExponential:
      return params_.signal_variance * std::exp(-0.5 * r * r);
    case KernelType::kMatern52: {
      double s = std::sqrt(5.0) * r;
      return params_.signal_variance * (1.0 + s + s * s / 3.0) * std::exp(-s);
    }
  }
  return 0.0;
}

Status GaussianProcess::Fit(const std::vector<Vec>& xs, const Vec& ys) {
  if (xs.empty() || xs.size() != ys.size()) {
    return Status::InvalidArgument("GP Fit: empty data or size mismatch");
  }
  size_t n = xs.size();
  size_t dims = xs[0].size();
  if (params_.lengthscales.empty()) {
    params_.lengthscales.assign(dims, 0.3);
  }

  xs_ = xs;
  ys_ = ys;

  Matrix k(n, n);
  for (size_t i = 0; i < n; ++i) {
    k.At(i, i) = SelfKernel();
    for (size_t j = i + 1; j < n; ++j) {
      double v = KernelValue(xs[i], xs[j]);
      k.At(i, j) = v;
      k.At(j, i) = v;
    }
  }
  double jitter = params_.noise_variance;
  Result<Matrix> chol = Status::Internal("unset");
  for (int attempt = 0; attempt < 6; ++attempt) {
    Matrix kj = k;
    kj.AddDiagonal(jitter);
    chol = kj.Cholesky();
    if (chol.ok()) break;
    jitter = std::max(jitter * 10.0, 1e-10);
  }
  if (!chol.ok()) {
    return Status::Internal("GP Fit: kernel matrix not positive definite");
  }
  chol_ = std::move(chol).value();
  jitter_ = jitter;
  RecomputePosterior();
  return Status::OK();
}

void GaussianProcess::RecomputePosterior() {
  size_t n = xs_.size();
  y_mean_ = 0.0;
  for (double y : ys_) y_mean_ += y;
  y_mean_ /= static_cast<double>(n);
  Vec centered(n);
  for (size_t i = 0; i < n; ++i) centered[i] = ys_[i] - y_mean_;
  Vec y1 = Matrix::ForwardSolve(chol_, centered);
  alpha_ = Matrix::BackwardSolveTranspose(chol_, y1);

  // log p(y) = -1/2 y^T alpha - 1/2 log|K| - n/2 log(2 pi)
  double fit_term = -0.5 * Dot(centered, alpha_);
  double det_term = -0.5 * Matrix::LogDetFromCholesky(chol_);
  double const_term = -0.5 * static_cast<double>(n) * std::log(kTwoPi);
  log_marginal_likelihood_ = fit_term + det_term + const_term;
  fitted_ = true;
}

Status GaussianProcess::AddObservation(const Vec& x, double y) {
  if (!fitted_) return Fit({x}, Vec{y});
  if (x.size() != xs_[0].size()) {
    return Status::InvalidArgument(
        "GP AddObservation: dimension mismatch with fitted data");
  }
  ScopedSpan span(CurrentTracer(), "gp_fit");
  if (span.active()) {
    span.AddArg("mode", "incremental");
    span.AddArg("n", std::to_string(xs_.size() + 1));
  }
  size_t n = xs_.size();
  Vec row(n + 1);
  for (size_t i = 0; i < n; ++i) row[i] = KernelValue(x, xs_[i]);
  row[n] = SelfKernel() + jitter_;
  Status appended = chol_.CholeskyAppendRow(row);
  xs_.push_back(x);
  ys_.push_back(y);
  if (!appended.ok()) {
    // Degenerate append (duplicate/near-duplicate point): rebuild from
    // scratch, letting Fit escalate the jitter. Copy out first — Fit
    // overwrites the members it reads from.
    if (MetricsRegistry* metrics = CurrentMetrics()) {
      metrics->GetCounter("gp.incremental_fallbacks")->Increment();
    }
    std::vector<Vec> xs = xs_;
    Vec ys = ys_;
    return Fit(xs, ys);
  }
  if (MetricsRegistry* metrics = CurrentMetrics()) {
    metrics->GetCounter("gp.incremental_refits")->Increment();
  }
  RecomputePosterior();
  return Status::OK();
}

Status GaussianProcess::FitWithHyperSearch(const std::vector<Vec>& xs,
                                           const Vec& ys, size_t budget,
                                           Rng* rng, ThreadPool* pool) {
  if (xs.empty() || xs.size() != ys.size()) {
    return Status::InvalidArgument("GP Fit: empty data or size mismatch");
  }
  ScopedSpan span(CurrentTracer(), "gp_fit");
  if (span.active()) {
    span.AddArg("mode", "hyper_search");
    span.AddArg("n", std::to_string(xs.size()));
    span.AddArg("budget", std::to_string(budget));
  }
  if (MetricsRegistry* metrics = CurrentMetrics()) {
    metrics->GetCounter("gp.hyper_searches")->Increment();
  }
  size_t dims = xs[0].size();
  double y_var = 0.0;
  {
    double m = 0.0;
    for (double y : ys) m += y;
    m /= static_cast<double>(ys.size());
    for (double y : ys) y_var += (y - m) * (y - m);
    y_var /= std::max<size_t>(ys.size() - 1, 1);
    if (y_var <= 0.0) y_var = 1.0;
  }

  // Candidates are drawn up front — the same rng sequence whether they are
  // then scored serially or on the pool, keeping the search deterministic.
  std::vector<GpHyperParams> candidates(std::max<size_t>(budget, 1));
  for (GpHyperParams& cand : candidates) {
    cand.kernel = params_.kernel;
    cand.lengthscales.resize(dims);
    for (double& l : cand.lengthscales) {
      // Log-uniform lengthscales over [0.05, 2] of the unit cube.
      l = std::exp(rng->Uniform(std::log(0.05), std::log(2.0)));
    }
    cand.signal_variance = y_var * std::exp(rng->Uniform(std::log(0.2),
                                                         std::log(5.0)));
    cand.noise_variance =
        y_var * std::exp(rng->Uniform(std::log(1e-6), std::log(1e-1)));
  }

  // Score each candidate's log marginal likelihood (NaN = failed fit).
  std::vector<double> lml(candidates.size());
  auto score = [&xs, &ys](const GpHyperParams& cand) -> double {
    GaussianProcess probe(cand);
    if (!probe.Fit(xs, ys).ok()) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    return probe.LogMarginalLikelihood();
  };
  if (pool != nullptr && candidates.size() > 1) {
    std::vector<std::future<double>> futures;
    futures.reserve(candidates.size());
    for (const GpHyperParams& cand : candidates) {
      futures.push_back(pool->Submit([&score, &cand]() { return score(cand); }));
    }
    for (size_t i = 0; i < futures.size(); ++i) lml[i] = futures[i].get();
  } else {
    for (size_t i = 0; i < candidates.size(); ++i) lml[i] = score(candidates[i]);
  }

  // First strictly-better candidate wins — index order breaks ties exactly
  // like the serial loop did.
  GpHyperParams best;
  double best_lml = -std::numeric_limits<double>::infinity();
  bool found = false;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (std::isnan(lml[i])) continue;
    if (lml[i] > best_lml) {
      best_lml = lml[i];
      best = candidates[i];
      found = true;
    }
  }
  if (!found) {
    // Every candidate produced a non-finite log marginal likelihood: the
    // design is degenerate (duplicated points, non-finite targets). Fitting
    // defaults anyway would hand callers a model built on garbage; surface
    // kInternal so a supervision layer can fail over instead.
    return Status::Internal(StrFormat(
        "GP hyper search: all %zu candidates produced a non-finite log "
        "marginal likelihood (degenerate design of %zu points)",
        candidates.size(), xs.size()));
  }
  params_ = best;
  return Fit(xs, ys);
}

GpPrediction GaussianProcess::Predict(const Vec& x) const {
  GpPrediction out;
  if (!fitted_) return out;
  size_t n = xs_.size();
  Vec kstar(n);
  for (size_t i = 0; i < n; ++i) kstar[i] = KernelValue(x, xs_[i]);
  out.mean = y_mean_ + Dot(kstar, alpha_);
  Vec v = Matrix::ForwardSolve(chol_, kstar);
  double var = SelfKernel() - Dot(v, v);
  out.variance = std::max(var, 0.0);
  return out;
}

}  // namespace atune
