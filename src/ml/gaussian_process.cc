#include "ml/gaussian_process.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace atune {

namespace {
constexpr double kTwoPi = 6.283185307179586;

double ScaledDistance(const Vec& a, const Vec& b,
                      const std::vector<double>& ls) {
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double l = i < ls.size() ? ls[i] : 1.0;
    double d = (a[i] - b[i]) / (l > 1e-12 ? l : 1e-12);
    acc += d * d;
  }
  return std::sqrt(acc);
}
}  // namespace

double GaussianProcess::KernelValue(const Vec& a, const Vec& b) const {
  double r = ScaledDistance(a, b, params_.lengthscales);
  switch (params_.kernel) {
    case KernelType::kSquaredExponential:
      return params_.signal_variance * std::exp(-0.5 * r * r);
    case KernelType::kMatern52: {
      double s = std::sqrt(5.0) * r;
      return params_.signal_variance * (1.0 + s + s * s / 3.0) * std::exp(-s);
    }
  }
  return 0.0;
}

Status GaussianProcess::Fit(const std::vector<Vec>& xs, const Vec& ys) {
  if (xs.empty() || xs.size() != ys.size()) {
    return Status::InvalidArgument("GP Fit: empty data or size mismatch");
  }
  size_t n = xs.size();
  size_t dims = xs[0].size();
  if (params_.lengthscales.empty()) {
    params_.lengthscales.assign(dims, 0.3);
  }

  xs_ = xs;
  y_mean_ = 0.0;
  for (double y : ys) y_mean_ += y;
  y_mean_ /= static_cast<double>(n);
  Vec centered(n);
  for (size_t i = 0; i < n; ++i) centered[i] = ys[i] - y_mean_;

  Matrix k(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      double v = KernelValue(xs[i], xs[j]);
      k.At(i, j) = v;
      k.At(j, i) = v;
    }
  }
  double jitter = params_.noise_variance;
  Result<Matrix> chol = Status::Internal("unset");
  for (int attempt = 0; attempt < 6; ++attempt) {
    Matrix kj = k;
    kj.AddDiagonal(jitter);
    chol = kj.Cholesky();
    if (chol.ok()) break;
    jitter = std::max(jitter * 10.0, 1e-10);
  }
  if (!chol.ok()) {
    return Status::Internal("GP Fit: kernel matrix not positive definite");
  }
  chol_ = std::move(chol).value();
  Vec y1 = Matrix::ForwardSolve(chol_, centered);
  alpha_ = Matrix::BackwardSolveTranspose(chol_, y1);

  // log p(y) = -1/2 y^T alpha - 1/2 log|K| - n/2 log(2 pi)
  double fit_term = -0.5 * Dot(centered, alpha_);
  double det_term = -0.5 * Matrix::LogDetFromCholesky(chol_);
  double const_term = -0.5 * static_cast<double>(n) * std::log(kTwoPi);
  log_marginal_likelihood_ = fit_term + det_term + const_term;
  fitted_ = true;
  return Status::OK();
}

Status GaussianProcess::FitWithHyperSearch(const std::vector<Vec>& xs,
                                           const Vec& ys, size_t budget,
                                           Rng* rng) {
  if (xs.empty() || xs.size() != ys.size()) {
    return Status::InvalidArgument("GP Fit: empty data or size mismatch");
  }
  size_t dims = xs[0].size();
  double y_var = 0.0;
  {
    double m = 0.0;
    for (double y : ys) m += y;
    m /= static_cast<double>(ys.size());
    for (double y : ys) y_var += (y - m) * (y - m);
    y_var /= std::max<size_t>(ys.size() - 1, 1);
    if (y_var <= 0.0) y_var = 1.0;
  }

  GpHyperParams best;
  double best_lml = -std::numeric_limits<double>::infinity();
  bool found = false;
  for (size_t trial = 0; trial < std::max<size_t>(budget, 1); ++trial) {
    GpHyperParams cand;
    cand.kernel = params_.kernel;
    cand.lengthscales.resize(dims);
    for (double& l : cand.lengthscales) {
      // Log-uniform lengthscales over [0.05, 2] of the unit cube.
      l = std::exp(rng->Uniform(std::log(0.05), std::log(2.0)));
    }
    cand.signal_variance = y_var * std::exp(rng->Uniform(std::log(0.2),
                                                         std::log(5.0)));
    cand.noise_variance =
        y_var * std::exp(rng->Uniform(std::log(1e-6), std::log(1e-1)));
    GaussianProcess probe(cand);
    if (!probe.Fit(xs, ys).ok()) continue;
    if (probe.LogMarginalLikelihood() > best_lml) {
      best_lml = probe.LogMarginalLikelihood();
      best = cand;
      found = true;
    }
  }
  if (!found) {
    // Fall back to defaults if every candidate failed (degenerate data).
    params_.lengthscales.assign(dims, 0.3);
    params_.signal_variance = y_var;
    params_.noise_variance = 1e-4 * y_var;
    return Fit(xs, ys);
  }
  params_ = best;
  return Fit(xs, ys);
}

GpPrediction GaussianProcess::Predict(const Vec& x) const {
  GpPrediction out;
  if (!fitted_) return out;
  size_t n = xs_.size();
  Vec kstar(n);
  for (size_t i = 0; i < n; ++i) kstar[i] = KernelValue(x, xs_[i]);
  out.mean = y_mean_ + Dot(kstar, alpha_);
  Vec v = Matrix::ForwardSolve(chol_, kstar);
  double var = KernelValue(x, x) - Dot(v, v);
  out.variance = std::max(var, 0.0);
  return out;
}

}  // namespace atune
