#ifndef ATUNE_ML_NEURAL_NET_H_
#define ATUNE_ML_NEURAL_NET_H_

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "math/matrix.h"
#include "ml/linear_model.h"

namespace atune {

/// Training options for the MLP.
struct MlpOptions {
  std::vector<size_t> hidden_layers = {16, 16};
  size_t epochs = 500;
  size_t batch_size = 16;
  double learning_rate = 1e-2;  ///< Adam step size
  double weight_decay = 1e-5;   ///< L2 penalty
  uint64_t seed = 42;
};

/// Small multi-layer perceptron regressor (tanh hidden activations, linear
/// output, Adam optimizer, MSE loss). This is the performance model behind
/// the Rodd neural-network tuner [19]; inputs/targets are standardized
/// internally.
class Mlp {
 public:
  explicit Mlp(MlpOptions options = {}) : options_(std::move(options)) {}

  /// Trains on (xs, ys). Returns final training MSE in standardized units
  /// via `final_loss()` after a successful fit.
  Status Fit(const std::vector<Vec>& xs, const Vec& ys);

  double Predict(const Vec& x) const;

  double final_loss() const { return final_loss_; }
  bool fitted() const { return fitted_; }
  const MlpOptions& options() const { return options_; }

 private:
  struct Layer {
    Matrix w;  // out x in
    Vec b;
    // Adam state:
    Matrix mw, vw;
    Vec mb, vb;
  };

  Vec Forward(const Vec& x, std::vector<Vec>* activations,
              std::vector<Vec>* pre_activations) const;

  MlpOptions options_;
  std::vector<Layer> layers_;
  StandardScaler x_scaler_;
  double y_mean_ = 0.0;
  double y_std_ = 1.0;
  double final_loss_ = 0.0;
  bool fitted_ = false;
};

}  // namespace atune

#endif  // ATUNE_ML_NEURAL_NET_H_
