#include "ml/linear_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace atune {

void StandardScaler::Fit(const std::vector<Vec>& xs) {
  means_.clear();
  stds_.clear();
  if (xs.empty()) return;
  size_t dims = xs[0].size();
  means_.assign(dims, 0.0);
  stds_.assign(dims, 0.0);
  for (const Vec& x : xs) {
    for (size_t d = 0; d < dims; ++d) means_[d] += x[d];
  }
  for (double& m : means_) m /= static_cast<double>(xs.size());
  for (const Vec& x : xs) {
    for (size_t d = 0; d < dims; ++d) {
      double diff = x[d] - means_[d];
      stds_[d] += diff * diff;
    }
  }
  for (double& s : stds_) {
    s = std::sqrt(s / static_cast<double>(xs.size()));
    if (s < 1e-12) s = 0.0;
  }
}

Vec StandardScaler::Transform(const Vec& x) const {
  Vec z(x.size(), 0.0);
  for (size_t d = 0; d < x.size() && d < means_.size(); ++d) {
    z[d] = stds_[d] > 0.0 ? (x[d] - means_[d]) / stds_[d] : 0.0;
  }
  return z;
}

std::vector<Vec> StandardScaler::TransformAll(const std::vector<Vec>& xs) const {
  std::vector<Vec> out;
  out.reserve(xs.size());
  for (const Vec& x : xs) out.push_back(Transform(x));
  return out;
}

Vec StandardScaler::InverseTransform(const Vec& z) const {
  Vec x(z.size(), 0.0);
  for (size_t d = 0; d < z.size() && d < means_.size(); ++d) {
    x[d] = stds_[d] > 0.0 ? z[d] * stds_[d] + means_[d] : means_[d];
  }
  return x;
}

Status RidgeRegression::Fit(const std::vector<Vec>& xs, const Vec& ys) {
  if (xs.empty() || xs.size() != ys.size()) {
    return Status::InvalidArgument("RidgeRegression: bad training data");
  }
  size_t n = xs.size();
  size_t dims = xs[0].size();
  // Center x and y so the intercept is unpenalized.
  Vec x_mean(dims, 0.0);
  double y_mean = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dims; ++d) x_mean[d] += xs[i][d];
    y_mean += ys[i];
  }
  for (double& m : x_mean) m /= static_cast<double>(n);
  y_mean /= static_cast<double>(n);

  Matrix a(n, dims);
  Vec b(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dims; ++d) a.At(i, d) = xs[i][d] - x_mean[d];
    b[i] = ys[i] - y_mean;
  }
  ATUNE_ASSIGN_OR_RETURN(weights_, Matrix::LeastSquares(a, b, lambda_));
  intercept_ = y_mean - Dot(weights_, x_mean);
  fitted_ = true;
  return Status::OK();
}

double RidgeRegression::Predict(const Vec& x) const {
  if (!fitted_) return 0.0;
  return intercept_ + Dot(weights_, x);
}

namespace {
double SoftThreshold(double value, double threshold) {
  if (value > threshold) return value - threshold;
  if (value < -threshold) return value + threshold;
  return 0.0;
}
}  // namespace

Status LassoRegression::Fit(const std::vector<Vec>& xs, const Vec& ys) {
  if (xs.empty() || xs.size() != ys.size()) {
    return Status::InvalidArgument("LassoRegression: bad training data");
  }
  size_t n = xs.size();
  size_t dims = xs[0].size();
  scaler_.Fit(xs);
  std::vector<Vec> zs = scaler_.TransformAll(xs);

  double y_mean = 0.0;
  for (double y : ys) y_mean += y;
  y_mean /= static_cast<double>(n);
  Vec r(n);  // residuals given current weights (start at w = 0)
  for (size_t i = 0; i < n; ++i) r[i] = ys[i] - y_mean;

  weights_.assign(dims, 0.0);
  // Per-feature squared norms (columns are standardized: approx n each, but
  // compute exactly; zero-variance columns give 0 and are skipped).
  Vec col_sq(dims, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dims; ++d) col_sq[d] += zs[i][d] * zs[i][d];
  }

  double nf = static_cast<double>(n);
  for (size_t iter = 0; iter < max_iters_; ++iter) {
    double max_delta = 0.0;
    for (size_t d = 0; d < dims; ++d) {
      if (col_sq[d] <= 0.0) continue;
      // rho = (1/n) sum_i z_id * (r_i + w_d z_id)
      double rho = 0.0;
      for (size_t i = 0; i < n; ++i) {
        rho += zs[i][d] * (r[i] + weights_[d] * zs[i][d]);
      }
      rho /= nf;
      double denom = col_sq[d] / nf;
      double new_w = SoftThreshold(rho, lambda_) / denom;
      double delta = new_w - weights_[d];
      if (delta != 0.0) {
        for (size_t i = 0; i < n; ++i) r[i] -= delta * zs[i][d];
        weights_[d] = new_w;
        max_delta = std::max(max_delta, std::abs(delta));
      }
    }
    if (max_delta < tol_) break;
  }
  intercept_ = y_mean;
  fitted_ = true;
  return Status::OK();
}

double LassoRegression::Predict(const Vec& x) const {
  if (!fitted_) return 0.0;
  Vec z = scaler_.Transform(x);
  return intercept_ + Dot(weights_, z);
}

size_t LassoRegression::NumNonZero(double eps) const {
  size_t count = 0;
  for (double w : weights_) {
    if (std::abs(w) > eps) ++count;
  }
  return count;
}

Result<std::vector<size_t>> LassoPathRanking(const std::vector<Vec>& xs,
                                             const Vec& ys,
                                             size_t num_lambdas) {
  if (xs.empty() || xs.size() != ys.size()) {
    return Status::InvalidArgument("LassoPathRanking: bad training data");
  }
  size_t dims = xs[0].size();
  size_t n = xs.size();

  // lambda_max: smallest lambda for which all weights are zero =
  // max_d |(1/n) <z_d, y - mean(y)>| on standardized features.
  StandardScaler scaler;
  scaler.Fit(xs);
  std::vector<Vec> zs = scaler.TransformAll(xs);
  double y_mean = 0.0;
  for (double y : ys) y_mean += y;
  y_mean /= static_cast<double>(n);
  double lambda_max = 0.0;
  for (size_t d = 0; d < dims; ++d) {
    double corr = 0.0;
    for (size_t i = 0; i < n; ++i) corr += zs[i][d] * (ys[i] - y_mean);
    lambda_max = std::max(lambda_max, std::abs(corr) / static_cast<double>(n));
  }
  if (lambda_max <= 0.0) lambda_max = 1.0;

  std::vector<size_t> activation_order;
  std::vector<bool> active(dims, false);
  for (size_t k = 0; k < num_lambdas; ++k) {
    // Geometric path from just-below lambda_max down to lambda_max * 1e-3.
    double frac = static_cast<double>(k + 1) / static_cast<double>(num_lambdas);
    double lambda = lambda_max * std::pow(1e-3, frac);
    LassoRegression lasso(lambda, 500, 1e-6);
    ATUNE_RETURN_IF_ERROR(lasso.Fit(xs, ys));
    for (size_t d = 0; d < dims; ++d) {
      if (!active[d] && std::abs(lasso.weights()[d]) > 1e-9) {
        active[d] = true;
        activation_order.push_back(d);
      }
    }
  }
  for (size_t d = 0; d < dims; ++d) {
    if (!active[d]) activation_order.push_back(d);
  }
  return activation_order;
}

}  // namespace atune
