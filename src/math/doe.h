#ifndef ATUNE_MATH_DOE_H_
#define ATUNE_MATH_DOE_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace atune {

/// Two-level experimental designs used for parameter screening.
///
/// A design is a matrix of +1/-1 entries: rows are experiment runs, columns
/// are factors (parameters). SARD [Debnath et al., 2008] uses Plackett-Burman
/// designs to rank database knobs by their main effect on performance with a
/// number of runs linear (not exponential) in the number of knobs.

/// A two-level screening design: runs x factors of +/-1 levels.
struct TwoLevelDesign {
  std::vector<std::vector<int>> rows;  ///< each entry is +1 or -1
  size_t num_factors = 0;
};

/// Builds a Plackett-Burman design for at least `num_factors` factors.
/// The run count is the smallest multiple of 4 strictly greater than
/// `num_factors` for which a generator row is known (supported up to 47
/// factors / 48 runs). Extra columns beyond num_factors are dropped.
Result<TwoLevelDesign> PlackettBurman(size_t num_factors);

/// Builds a PB design with fold-over: appends the sign-flipped mirror of
/// every run, doubling the run count but canceling even-order confounding
/// (this is the variant SARD recommends).
Result<TwoLevelDesign> PlackettBurmanFoldover(size_t num_factors);

/// Full 2^k factorial design (use only for small k).
Result<TwoLevelDesign> FullFactorial(size_t num_factors);

/// Main effect of each factor given one response value per design run:
/// effect[j] = mean(response | factor j = +1) - mean(response | factor j = -1).
Result<std::vector<double>> MainEffects(const TwoLevelDesign& design,
                                        const std::vector<double>& responses);

/// Ranks factors by |main effect|, largest first. Returns factor indices.
std::vector<size_t> RankByEffect(const std::vector<double>& effects);

}  // namespace atune

#endif  // ATUNE_MATH_DOE_H_
