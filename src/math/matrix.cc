#include "math/matrix.h"

#include <cassert>
#include <cmath>

namespace atune {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ > 0 ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    assert(row.size() == cols_);
    for (double v : row) data_.push_back(v);
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

Matrix Matrix::ColumnVector(const Vec& v) {
  Matrix m(v.size(), 1);
  for (size_t i = 0; i < v.size(); ++i) m.At(i, 0) = v[i];
  return m;
}

Matrix Matrix::Diagonal(const Vec& v) {
  Matrix m(v.size(), v.size());
  for (size_t i = 0; i < v.size(); ++i) m.At(i, i) = v[i];
  return m;
}

Vec Matrix::Row(size_t r) const {
  Vec out(cols_);
  for (size_t c = 0; c < cols_; ++c) out[c] = At(r, c);
  return out;
}

Vec Matrix::Col(size_t c) const {
  Vec out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = At(r, c);
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) t.At(c, r) = At(r, c);
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      double aik = At(i, k);
      if (aik == 0.0) continue;
      for (size_t j = 0; j < other.cols_; ++j) {
        out.At(i, j) += aik * other.At(k, j);
      }
    }
  }
  return out;
}

Vec Matrix::MultiplyVec(const Vec& v) const {
  assert(v.size() == cols_);
  Vec out(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (size_t j = 0; j < cols_; ++j) acc += At(i, j) * v[j];
    out[i] = acc;
  }
  return out;
}

Matrix Matrix::Add(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Matrix Matrix::Subtract(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix Matrix::Scale(double s) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= s;
  return out;
}

void Matrix::AddDiagonal(double s) {
  size_t n = rows_ < cols_ ? rows_ : cols_;
  for (size_t i = 0; i < n; ++i) At(i, i) += s;
}

Result<Matrix> Matrix::Cholesky() const {
  if (rows_ != cols_) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  size_t n = rows_;
  Matrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = At(i, j);
      for (size_t k = 0; k < j; ++k) sum -= l.At(i, k) * l.At(j, k);
      if (i == j) {
        if (sum <= 0.0) {
          return Status::FailedPrecondition(
              "matrix is not positive definite (Cholesky pivot <= 0)");
        }
        l.At(i, i) = std::sqrt(sum);
      } else {
        l.At(i, j) = sum / l.At(j, j);
      }
    }
  }
  return l;
}

Status Matrix::CholeskyAppendRow(const Vec& row) {
  if (rows_ != cols_) {
    return Status::InvalidArgument(
        "CholeskyAppendRow requires a square factor");
  }
  if (row.size() != rows_ + 1) {
    return Status::InvalidArgument(
        "CholeskyAppendRow: row must have rows()+1 entries");
  }
  size_t n = rows_;
  // New off-diagonal row: forward-substitute L l12 = k12, term order
  // matching Cholesky()'s inner loop so the factor stays bit-identical.
  Vec l12(n);
  for (size_t j = 0; j < n; ++j) {
    double sum = row[j];
    for (size_t k = 0; k < j; ++k) sum -= l12[k] * At(j, k);
    l12[j] = sum / At(j, j);
  }
  double diag = row[n];
  for (size_t k = 0; k < n; ++k) diag -= l12[k] * l12[k];
  if (diag <= 0.0) {
    return Status::FailedPrecondition(
        "matrix is not positive definite (Cholesky pivot <= 0)");
  }
  Matrix grown(n + 1, n + 1);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) grown.At(i, j) = At(i, j);
  }
  for (size_t j = 0; j < n; ++j) grown.At(n, j) = l12[j];
  grown.At(n, n) = std::sqrt(diag);
  *this = std::move(grown);
  return Status::OK();
}

Vec Matrix::ForwardSolve(const Matrix& l, const Vec& b) {
  size_t n = l.rows();
  assert(b.size() == n);
  Vec y(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= l.At(i, k) * y[k];
    y[i] = sum / l.At(i, i);
  }
  return y;
}

Vec Matrix::BackwardSolveTranspose(const Matrix& l, const Vec& y) {
  size_t n = l.rows();
  assert(y.size() == n);
  Vec x(n, 0.0);
  for (size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (size_t k = ii + 1; k < n; ++k) sum -= l.At(k, ii) * x[k];
    x[ii] = sum / l.At(ii, ii);
  }
  return x;
}

Result<Vec> Matrix::SolveSpd(const Vec& b) const {
  ATUNE_ASSIGN_OR_RETURN(Matrix l, Cholesky());
  Vec y = ForwardSolve(l, b);
  return BackwardSolveTranspose(l, y);
}

double Matrix::LogDetFromCholesky(const Matrix& l) {
  double acc = 0.0;
  for (size_t i = 0; i < l.rows(); ++i) acc += std::log(l.At(i, i));
  return 2.0 * acc;
}

Result<Vec> Matrix::LeastSquares(const Matrix& a, const Vec& b,
                                 double lambda) {
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("LeastSquares: A rows must match b size");
  }
  Matrix at = a.Transpose();
  Matrix ata = at.Multiply(a);
  ata.AddDiagonal(lambda);
  Vec atb = at.MultiplyVec(b);
  auto sol = ata.SolveSpd(atb);
  if (!sol.ok() && lambda == 0.0) {
    // Rank-deficient unregularized system: retry with a tiny ridge.
    ata.AddDiagonal(1e-10);
    return ata.SolveSpd(atb);
  }
  return sol;
}

double Dot(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double Norm2(const Vec& v) { return std::sqrt(Dot(v, v)); }

Vec Axpy(const Vec& a, double s, const Vec& b) {
  assert(a.size() == b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + s * b[i];
  return out;
}

double SquaredDistance(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace atune
