#include "math/matrix.h"

#include <atomic>
#include <cassert>
#include <cmath>
#include <cstring>
#include <vector>

#if defined(__SSE2__) || defined(_M_X64)
#include <emmintrin.h>
#define ATUNE_HAVE_SSE2 1
#if defined(__GNUC__) && defined(__x86_64__)
// AVX bodies are compiled per-function via target attributes and picked at
// runtime with __builtin_cpu_supports, so the default build needs no extra
// flags and still runs on plain SSE2 machines.
#include <immintrin.h>
#define ATUNE_HAVE_AVX_DISPATCH 1
#endif
#endif

#include "math/reference_kernels.h"

namespace atune {

namespace {

std::atomic<bool> g_scalar_kernels{false};

/// Blocked forward substitution y = L⁻¹ b over contiguous spans: rows are
/// processed in blocks of four so their independent subtraction chains
/// interleave (ILP), but each element still receives its subtractions in
/// ascending-k order — bit-identical to the naive loop in
/// reference_kernels.cc. `stride` is L's row stride; y == b is allowed.
void BlockedForwardSubstitute(const double* ld, size_t n, size_t stride,
                              const double* b, double* y) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double* r0 = ld + (i + 0) * stride;
    const double* r1 = ld + (i + 1) * stride;
    const double* r2 = ld + (i + 2) * stride;
    const double* r3 = ld + (i + 3) * stride;
    double acc0 = b[i + 0];
    double acc1 = b[i + 1];
    double acc2 = b[i + 2];
    double acc3 = b[i + 3];
    for (size_t k = 0; k < i; ++k) {
      double yk = y[k];
      acc0 -= r0[k] * yk;
      acc1 -= r1[k] * yk;
      acc2 -= r2[k] * yk;
      acc3 -= r3[k] * yk;
    }
    // In-block tail: later rows depend on earlier ones, still ascending k.
    double y0 = acc0 / r0[i + 0];
    y[i + 0] = y0;
    acc1 -= r1[i + 0] * y0;
    double y1 = acc1 / r1[i + 1];
    y[i + 1] = y1;
    acc2 -= r2[i + 0] * y0;
    acc2 -= r2[i + 1] * y1;
    double y2 = acc2 / r2[i + 2];
    y[i + 2] = y2;
    acc3 -= r3[i + 0] * y0;
    acc3 -= r3[i + 1] * y1;
    acc3 -= r3[i + 2] * y2;
    y[i + 3] = acc3 / r3[i + 3];
  }
  for (; i < n; ++i) {
    const double* ri = ld + i * stride;
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= ri[k] * y[k];
    y[i] = sum / ri[i];
  }
}

/// In-place panel forward solve L Y = Y with a compile-time lane count so
/// the accumulators live in registers. Lane c performs exactly
/// ForwardSolve's operations on column c.
template <size_t kLanes>
void SolvePanelFixed(const double* ld, size_t n, size_t stride, double* panel,
                     size_t pstride) {
  for (size_t i = 0; i < n; ++i) {
    const double* li = ld + i * stride;
    double* pi = panel + i * pstride;
    double acc[kLanes];
    for (size_t c = 0; c < kLanes; ++c) acc[c] = pi[c];
    for (size_t k = 0; k < i; ++k) {
      double lik = li[k];
      const double* pk = panel + k * pstride;
      for (size_t c = 0; c < kLanes; ++c) acc[c] -= lik * pk[c];
    }
    double lii = li[i];
    for (size_t c = 0; c < kLanes; ++c) pi[c] = acc[c] / lii;
  }
}

#if defined(ATUNE_HAVE_SSE2)
/// Eight-lane in-place panel forward solve with explicit SSE2 two-lane ops,
/// rows two at a time sharing the panel-row loads. Lane c performs exactly
/// ForwardSolve's operations on column c in the same ascending-k order
/// (row i+1 takes its k = i subtraction after row i's divide, as the
/// sequential solve does), so results are bit-identical. Hand-written
/// because GCC's auto-vectorizer turns the array-accumulator form into
/// shuffle-heavy code slower than scalar.
void SolvePanel8Sse2(const double* ld, size_t n, size_t stride,
                     double* panel, size_t pstride) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const double* li = ld + i * stride;
    const double* mi = ld + (i + 1) * stride;
    double* pi = panel + i * pstride;
    double* qi = panel + (i + 1) * pstride;
    __m128d p0 = _mm_loadu_pd(pi + 0), p1 = _mm_loadu_pd(pi + 2);
    __m128d p2 = _mm_loadu_pd(pi + 4), p3 = _mm_loadu_pd(pi + 6);
    __m128d q0 = _mm_loadu_pd(qi + 0), q1 = _mm_loadu_pd(qi + 2);
    __m128d q2 = _mm_loadu_pd(qi + 4), q3 = _mm_loadu_pd(qi + 6);
    for (size_t k = 0; k < i; ++k) {
      const __m128d lik = _mm_set1_pd(li[k]);
      const __m128d mik = _mm_set1_pd(mi[k]);
      const double* pk = panel + k * pstride;
      const __m128d c0 = _mm_loadu_pd(pk + 0);
      const __m128d c1 = _mm_loadu_pd(pk + 2);
      const __m128d c2 = _mm_loadu_pd(pk + 4);
      const __m128d c3 = _mm_loadu_pd(pk + 6);
      p0 = _mm_sub_pd(p0, _mm_mul_pd(lik, c0));
      p1 = _mm_sub_pd(p1, _mm_mul_pd(lik, c1));
      p2 = _mm_sub_pd(p2, _mm_mul_pd(lik, c2));
      p3 = _mm_sub_pd(p3, _mm_mul_pd(lik, c3));
      q0 = _mm_sub_pd(q0, _mm_mul_pd(mik, c0));
      q1 = _mm_sub_pd(q1, _mm_mul_pd(mik, c1));
      q2 = _mm_sub_pd(q2, _mm_mul_pd(mik, c2));
      q3 = _mm_sub_pd(q3, _mm_mul_pd(mik, c3));
    }
    const __m128d lii = _mm_set1_pd(li[i]);
    p0 = _mm_div_pd(p0, lii);
    p1 = _mm_div_pd(p1, lii);
    p2 = _mm_div_pd(p2, lii);
    p3 = _mm_div_pd(p3, lii);
    _mm_storeu_pd(pi + 0, p0);
    _mm_storeu_pd(pi + 2, p1);
    _mm_storeu_pd(pi + 4, p2);
    _mm_storeu_pd(pi + 6, p3);
    const __m128d mii = _mm_set1_pd(mi[i]);
    q0 = _mm_sub_pd(q0, _mm_mul_pd(mii, p0));
    q1 = _mm_sub_pd(q1, _mm_mul_pd(mii, p1));
    q2 = _mm_sub_pd(q2, _mm_mul_pd(mii, p2));
    q3 = _mm_sub_pd(q3, _mm_mul_pd(mii, p3));
    const __m128d mjj = _mm_set1_pd(mi[i + 1]);
    q0 = _mm_div_pd(q0, mjj);
    q1 = _mm_div_pd(q1, mjj);
    q2 = _mm_div_pd(q2, mjj);
    q3 = _mm_div_pd(q3, mjj);
    _mm_storeu_pd(qi + 0, q0);
    _mm_storeu_pd(qi + 2, q1);
    _mm_storeu_pd(qi + 4, q2);
    _mm_storeu_pd(qi + 6, q3);
  }
  for (; i < n; ++i) {
    const double* li = ld + i * stride;
    double* pi = panel + i * pstride;
    __m128d p0 = _mm_loadu_pd(pi + 0), p1 = _mm_loadu_pd(pi + 2);
    __m128d p2 = _mm_loadu_pd(pi + 4), p3 = _mm_loadu_pd(pi + 6);
    for (size_t k = 0; k < i; ++k) {
      const __m128d lik = _mm_set1_pd(li[k]);
      const double* pk = panel + k * pstride;
      p0 = _mm_sub_pd(p0, _mm_mul_pd(lik, _mm_loadu_pd(pk + 0)));
      p1 = _mm_sub_pd(p1, _mm_mul_pd(lik, _mm_loadu_pd(pk + 2)));
      p2 = _mm_sub_pd(p2, _mm_mul_pd(lik, _mm_loadu_pd(pk + 4)));
      p3 = _mm_sub_pd(p3, _mm_mul_pd(lik, _mm_loadu_pd(pk + 6)));
    }
    const __m128d lii = _mm_set1_pd(li[i]);
    _mm_storeu_pd(pi + 0, _mm_div_pd(p0, lii));
    _mm_storeu_pd(pi + 2, _mm_div_pd(p1, lii));
    _mm_storeu_pd(pi + 4, _mm_div_pd(p2, lii));
    _mm_storeu_pd(pi + 6, _mm_div_pd(p3, lii));
  }
}
/// Sixteen-lane single-row variant: eight in-register accumulators mean no
/// two-row tiling fits, but each streamed factor row li[] now serves twice
/// the lanes, halving the dominant L traffic for wide panels. Same per-lane
/// order as ForwardSolve, so results are bit-identical.
void SolvePanel16Sse2(const double* ld, size_t n, size_t stride,
                      double* panel, size_t pstride) {
  for (size_t i = 0; i < n; ++i) {
    const double* li = ld + i * stride;
    double* pi = panel + i * pstride;
    __m128d a0 = _mm_loadu_pd(pi + 0), a1 = _mm_loadu_pd(pi + 2);
    __m128d a2 = _mm_loadu_pd(pi + 4), a3 = _mm_loadu_pd(pi + 6);
    __m128d a4 = _mm_loadu_pd(pi + 8), a5 = _mm_loadu_pd(pi + 10);
    __m128d a6 = _mm_loadu_pd(pi + 12), a7 = _mm_loadu_pd(pi + 14);
    for (size_t k = 0; k < i; ++k) {
      const __m128d lik = _mm_set1_pd(li[k]);
      const double* pk = panel + k * pstride;
      a0 = _mm_sub_pd(a0, _mm_mul_pd(lik, _mm_loadu_pd(pk + 0)));
      a1 = _mm_sub_pd(a1, _mm_mul_pd(lik, _mm_loadu_pd(pk + 2)));
      a2 = _mm_sub_pd(a2, _mm_mul_pd(lik, _mm_loadu_pd(pk + 4)));
      a3 = _mm_sub_pd(a3, _mm_mul_pd(lik, _mm_loadu_pd(pk + 6)));
      a4 = _mm_sub_pd(a4, _mm_mul_pd(lik, _mm_loadu_pd(pk + 8)));
      a5 = _mm_sub_pd(a5, _mm_mul_pd(lik, _mm_loadu_pd(pk + 10)));
      a6 = _mm_sub_pd(a6, _mm_mul_pd(lik, _mm_loadu_pd(pk + 12)));
      a7 = _mm_sub_pd(a7, _mm_mul_pd(lik, _mm_loadu_pd(pk + 14)));
    }
    const __m128d lii = _mm_set1_pd(li[i]);
    _mm_storeu_pd(pi + 0, _mm_div_pd(a0, lii));
    _mm_storeu_pd(pi + 2, _mm_div_pd(a1, lii));
    _mm_storeu_pd(pi + 4, _mm_div_pd(a2, lii));
    _mm_storeu_pd(pi + 6, _mm_div_pd(a3, lii));
    _mm_storeu_pd(pi + 8, _mm_div_pd(a4, lii));
    _mm_storeu_pd(pi + 10, _mm_div_pd(a5, lii));
    _mm_storeu_pd(pi + 12, _mm_div_pd(a6, lii));
    _mm_storeu_pd(pi + 14, _mm_div_pd(a7, lii));
  }
}
#if defined(ATUNE_HAVE_AVX_DISPATCH)
/// AVX build of the sixteen-lane solve: four 4-wide accumulators per row
/// leave room for two-row tiling, so each factor row and each panel row is
/// loaded once per pair. vmulpd/vsubpd/vdivpd are per-lane IEEE doubles
/// (no FMA — fusing would drop the intermediate rounding and change bits),
/// so lane c still reproduces ForwardSolve's exact operation order.
__attribute__((target("avx"))) void SolvePanel16Avx(const double* ld,
                                                    size_t n, size_t stride,
                                                    double* panel,
                                                    size_t pstride) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const double* li = ld + i * stride;
    const double* mi = ld + (i + 1) * stride;
    double* pi = panel + i * pstride;
    double* qi = panel + (i + 1) * pstride;
    __m256d p0 = _mm256_loadu_pd(pi + 0), p1 = _mm256_loadu_pd(pi + 4);
    __m256d p2 = _mm256_loadu_pd(pi + 8), p3 = _mm256_loadu_pd(pi + 12);
    __m256d q0 = _mm256_loadu_pd(qi + 0), q1 = _mm256_loadu_pd(qi + 4);
    __m256d q2 = _mm256_loadu_pd(qi + 8), q3 = _mm256_loadu_pd(qi + 12);
    for (size_t k = 0; k < i; ++k) {
      const __m256d lik = _mm256_broadcast_sd(li + k);
      const __m256d mik = _mm256_broadcast_sd(mi + k);
      const double* pk = panel + k * pstride;
      const __m256d c0 = _mm256_loadu_pd(pk + 0);
      const __m256d c1 = _mm256_loadu_pd(pk + 4);
      const __m256d c2 = _mm256_loadu_pd(pk + 8);
      const __m256d c3 = _mm256_loadu_pd(pk + 12);
      p0 = _mm256_sub_pd(p0, _mm256_mul_pd(lik, c0));
      p1 = _mm256_sub_pd(p1, _mm256_mul_pd(lik, c1));
      p2 = _mm256_sub_pd(p2, _mm256_mul_pd(lik, c2));
      p3 = _mm256_sub_pd(p3, _mm256_mul_pd(lik, c3));
      q0 = _mm256_sub_pd(q0, _mm256_mul_pd(mik, c0));
      q1 = _mm256_sub_pd(q1, _mm256_mul_pd(mik, c1));
      q2 = _mm256_sub_pd(q2, _mm256_mul_pd(mik, c2));
      q3 = _mm256_sub_pd(q3, _mm256_mul_pd(mik, c3));
    }
    const __m256d lii = _mm256_broadcast_sd(li + i);
    p0 = _mm256_div_pd(p0, lii);
    p1 = _mm256_div_pd(p1, lii);
    p2 = _mm256_div_pd(p2, lii);
    p3 = _mm256_div_pd(p3, lii);
    _mm256_storeu_pd(pi + 0, p0);
    _mm256_storeu_pd(pi + 4, p1);
    _mm256_storeu_pd(pi + 8, p2);
    _mm256_storeu_pd(pi + 12, p3);
    const __m256d mii = _mm256_broadcast_sd(mi + i);
    q0 = _mm256_sub_pd(q0, _mm256_mul_pd(mii, p0));
    q1 = _mm256_sub_pd(q1, _mm256_mul_pd(mii, p1));
    q2 = _mm256_sub_pd(q2, _mm256_mul_pd(mii, p2));
    q3 = _mm256_sub_pd(q3, _mm256_mul_pd(mii, p3));
    const __m256d mjj = _mm256_broadcast_sd(mi + i + 1);
    q0 = _mm256_div_pd(q0, mjj);
    q1 = _mm256_div_pd(q1, mjj);
    q2 = _mm256_div_pd(q2, mjj);
    q3 = _mm256_div_pd(q3, mjj);
    _mm256_storeu_pd(qi + 0, q0);
    _mm256_storeu_pd(qi + 4, q1);
    _mm256_storeu_pd(qi + 8, q2);
    _mm256_storeu_pd(qi + 12, q3);
  }
  for (; i < n; ++i) {
    const double* li = ld + i * stride;
    double* pi = panel + i * pstride;
    __m256d p0 = _mm256_loadu_pd(pi + 0), p1 = _mm256_loadu_pd(pi + 4);
    __m256d p2 = _mm256_loadu_pd(pi + 8), p3 = _mm256_loadu_pd(pi + 12);
    for (size_t k = 0; k < i; ++k) {
      const __m256d lik = _mm256_broadcast_sd(li + k);
      const double* pk = panel + k * pstride;
      p0 = _mm256_sub_pd(p0, _mm256_mul_pd(lik, _mm256_loadu_pd(pk + 0)));
      p1 = _mm256_sub_pd(p1, _mm256_mul_pd(lik, _mm256_loadu_pd(pk + 4)));
      p2 = _mm256_sub_pd(p2, _mm256_mul_pd(lik, _mm256_loadu_pd(pk + 8)));
      p3 = _mm256_sub_pd(p3, _mm256_mul_pd(lik, _mm256_loadu_pd(pk + 12)));
    }
    const __m256d lii = _mm256_broadcast_sd(li + i);
    _mm256_storeu_pd(pi + 0, _mm256_div_pd(p0, lii));
    _mm256_storeu_pd(pi + 4, _mm256_div_pd(p1, lii));
    _mm256_storeu_pd(pi + 8, _mm256_div_pd(p2, lii));
    _mm256_storeu_pd(pi + 12, _mm256_div_pd(p3, lii));
  }
}

bool AvxAvailable() {
  static const bool ok = __builtin_cpu_supports("avx");
  return ok;
}
#endif  // ATUNE_HAVE_AVX_DISPATCH
#endif  // ATUNE_HAVE_SSE2

/// Runtime-lane variant for remainder panels (< 8 columns).
void SolvePanelVar(const double* ld, size_t n, size_t stride, double* panel,
                   size_t pstride, size_t lanes) {
  for (size_t i = 0; i < n; ++i) {
    const double* li = ld + i * stride;
    double* pi = panel + i * pstride;
    for (size_t k = 0; k < i; ++k) {
      double lik = li[k];
      const double* pk = panel + k * pstride;
      for (size_t c = 0; c < lanes; ++c) pi[c] -= lik * pk[c];
    }
    double lii = li[i];
    for (size_t c = 0; c < lanes; ++c) pi[c] /= lii;
  }
}

bool BlockedCholesky4(const double* a, double* ld, size_t n) {
  // Row i, columns blocked by four: four independent subtraction chains
  // over the shared prefix k < j, then a sequential in-block tail. Same
  // ascending-k order per element as reference::Cholesky — bit-identical;
  // the blocking only buys instruction-level parallelism.
  for (size_t i = 0; i < n; ++i) {
    const double* ai = a + i * n;
    double* li = ld + i * n;
    size_t j = 0;
    for (; j + 4 <= i; j += 4) {
      const double* r0 = ld + (j + 0) * n;
      const double* r1 = ld + (j + 1) * n;
      const double* r2 = ld + (j + 2) * n;
      const double* r3 = ld + (j + 3) * n;
      double acc0 = ai[j + 0];
      double acc1 = ai[j + 1];
      double acc2 = ai[j + 2];
      double acc3 = ai[j + 3];
      for (size_t k = 0; k < j; ++k) {
        double lik = li[k];
        acc0 -= lik * r0[k];
        acc1 -= lik * r1[k];
        acc2 -= lik * r2[k];
        acc3 -= lik * r3[k];
      }
      double l0 = acc0 / r0[j + 0];
      li[j + 0] = l0;
      acc1 -= l0 * r1[j + 0];
      double l1 = acc1 / r1[j + 1];
      li[j + 1] = l1;
      acc2 -= l0 * r2[j + 0];
      acc2 -= l1 * r2[j + 1];
      double l2 = acc2 / r2[j + 2];
      li[j + 2] = l2;
      acc3 -= l0 * r3[j + 0];
      acc3 -= l1 * r3[j + 1];
      acc3 -= l2 * r3[j + 2];
      li[j + 3] = acc3 / r3[j + 3];
    }
    for (; j < i; ++j) {
      const double* rj = ld + j * n;
      double sum = ai[j];
      for (size_t k = 0; k < j; ++k) sum -= li[k] * rj[k];
      li[j] = sum / rj[j];
    }
    double sum = ai[i];
    for (size_t k = 0; k < i; ++k) sum -= li[k] * li[k];
    if (sum <= 0.0) return false;
    li[i] = std::sqrt(sum);
  }
  return true;
}

#if defined(ATUNE_HAVE_SSE2)
/// Shared-prefix bulk for one panel row: acc[c] -= sum_{k<j0} li[k]*pt[k*8+c]
/// with each lane an independent ascending-k chain (bit-identical to the
/// scalar loop). `pt` is the panel's transposed prefix buffer.
void PanelBulkRowSse2(const double* pt, size_t j0, const double* li,
                      double* acc) {
  __m128d p0 = _mm_loadu_pd(acc + 0), p1 = _mm_loadu_pd(acc + 2);
  __m128d p2 = _mm_loadu_pd(acc + 4), p3 = _mm_loadu_pd(acc + 6);
  for (size_t k = 0; k < j0; ++k) {
    const __m128d lik = _mm_set1_pd(li[k]);
    const double* ptk = pt + k * 8;
    p0 = _mm_sub_pd(p0, _mm_mul_pd(lik, _mm_loadu_pd(ptk + 0)));
    p1 = _mm_sub_pd(p1, _mm_mul_pd(lik, _mm_loadu_pd(ptk + 2)));
    p2 = _mm_sub_pd(p2, _mm_mul_pd(lik, _mm_loadu_pd(ptk + 4)));
    p3 = _mm_sub_pd(p3, _mm_mul_pd(lik, _mm_loadu_pd(ptk + 6)));
  }
  _mm_storeu_pd(acc + 0, p0);
  _mm_storeu_pd(acc + 2, p1);
  _mm_storeu_pd(acc + 4, p2);
  _mm_storeu_pd(acc + 6, p3);
}

/// Two-row variant sharing the pt column loads.
void PanelBulkPairSse2(const double* pt, size_t j0, const double* li,
                       const double* mi, double* accp, double* accq) {
  __m128d p0 = _mm_loadu_pd(accp + 0), p1 = _mm_loadu_pd(accp + 2);
  __m128d p2 = _mm_loadu_pd(accp + 4), p3 = _mm_loadu_pd(accp + 6);
  __m128d q0 = _mm_loadu_pd(accq + 0), q1 = _mm_loadu_pd(accq + 2);
  __m128d q2 = _mm_loadu_pd(accq + 4), q3 = _mm_loadu_pd(accq + 6);
  for (size_t k = 0; k < j0; ++k) {
    const __m128d lik = _mm_set1_pd(li[k]);
    const __m128d mik = _mm_set1_pd(mi[k]);
    const double* ptk = pt + k * 8;
    const __m128d c0 = _mm_loadu_pd(ptk + 0);
    const __m128d c1 = _mm_loadu_pd(ptk + 2);
    const __m128d c2 = _mm_loadu_pd(ptk + 4);
    const __m128d c3 = _mm_loadu_pd(ptk + 6);
    p0 = _mm_sub_pd(p0, _mm_mul_pd(lik, c0));
    p1 = _mm_sub_pd(p1, _mm_mul_pd(lik, c1));
    p2 = _mm_sub_pd(p2, _mm_mul_pd(lik, c2));
    p3 = _mm_sub_pd(p3, _mm_mul_pd(lik, c3));
    q0 = _mm_sub_pd(q0, _mm_mul_pd(mik, c0));
    q1 = _mm_sub_pd(q1, _mm_mul_pd(mik, c1));
    q2 = _mm_sub_pd(q2, _mm_mul_pd(mik, c2));
    q3 = _mm_sub_pd(q3, _mm_mul_pd(mik, c3));
  }
  _mm_storeu_pd(accp + 0, p0);
  _mm_storeu_pd(accp + 2, p1);
  _mm_storeu_pd(accp + 4, p2);
  _mm_storeu_pd(accp + 6, p3);
  _mm_storeu_pd(accq + 0, q0);
  _mm_storeu_pd(accq + 2, q1);
  _mm_storeu_pd(accq + 4, q2);
  _mm_storeu_pd(accq + 6, q3);
}

#if defined(ATUNE_HAVE_AVX_DISPATCH)
/// AVX builds of the two bulk helpers: same per-lane chains, half the
/// instructions (no FMA — fusing would change bits). Picked at runtime.
__attribute__((target("avx"))) void PanelBulkRowAvx(const double* pt,
                                                    size_t j0,
                                                    const double* li,
                                                    double* acc) {
  __m256d p0 = _mm256_loadu_pd(acc + 0), p1 = _mm256_loadu_pd(acc + 4);
  for (size_t k = 0; k < j0; ++k) {
    const __m256d lik = _mm256_broadcast_sd(li + k);
    const double* ptk = pt + k * 8;
    p0 = _mm256_sub_pd(p0, _mm256_mul_pd(lik, _mm256_loadu_pd(ptk + 0)));
    p1 = _mm256_sub_pd(p1, _mm256_mul_pd(lik, _mm256_loadu_pd(ptk + 4)));
  }
  _mm256_storeu_pd(acc + 0, p0);
  _mm256_storeu_pd(acc + 4, p1);
}

__attribute__((target("avx"))) void PanelBulkPairAvx(
    const double* pt, size_t j0, const double* li, const double* mi,
    double* accp, double* accq) {
  __m256d p0 = _mm256_loadu_pd(accp + 0), p1 = _mm256_loadu_pd(accp + 4);
  __m256d q0 = _mm256_loadu_pd(accq + 0), q1 = _mm256_loadu_pd(accq + 4);
  for (size_t k = 0; k < j0; ++k) {
    const __m256d lik = _mm256_broadcast_sd(li + k);
    const __m256d mik = _mm256_broadcast_sd(mi + k);
    const double* ptk = pt + k * 8;
    const __m256d c0 = _mm256_loadu_pd(ptk + 0);
    const __m256d c1 = _mm256_loadu_pd(ptk + 4);
    p0 = _mm256_sub_pd(p0, _mm256_mul_pd(lik, c0));
    p1 = _mm256_sub_pd(p1, _mm256_mul_pd(lik, c1));
    q0 = _mm256_sub_pd(q0, _mm256_mul_pd(mik, c0));
    q1 = _mm256_sub_pd(q1, _mm256_mul_pd(mik, c1));
  }
  _mm256_storeu_pd(accp + 0, p0);
  _mm256_storeu_pd(accp + 4, p1);
  _mm256_storeu_pd(accq + 0, q0);
  _mm256_storeu_pd(accq + 4, q1);
}
#endif  // ATUNE_HAVE_AVX_DISPATCH

bool PanelCholesky8(const double* a, double* ld, size_t n) {
  // Left-looking, eight columns at a time. For each column panel
  // [j0, j0+8) the prefixes of its eight factor rows (columns < j0, all
  // final by now) are copied once into a small transposed buffer
  // (pt[k*8 + c] = L(j0+c, k), at most 8*n doubles, cache-resident), so the
  // dominant shared-prefix subtraction reads eight contiguous lanes per k;
  // explicit SSE2 two-lane ops process them, and rows below the panel go
  // two at a time sharing the column loads. Every SIMD lane is an
  // independent per-element chain whose subtractions land in the same
  // ascending-k order as reference::Cholesky — bulk prefix k < j0 through
  // the buffer, then the scalar in-block tail k in [j0, j) — so the factor
  // is bit-identical; the panelization and lanes only buy SIMD width and
  // instruction-level parallelism (the naive loop is one serial FMA chain
  // per element). Hand-written intrinsics because GCC's auto-vectorizer
  // turns the same loop into a shuffle storm that is slower than scalar.
  constexpr size_t kPanel = 8;
  std::vector<double> pt(kPanel * n);
#if defined(ATUNE_HAVE_AVX_DISPATCH)
  const bool use_avx = AvxAvailable();
#else
  const bool use_avx = false;
#endif
  for (size_t j0 = 0; j0 < n; j0 += kPanel) {
    const size_t w = std::min(kPanel, n - j0);
    for (size_t k = 0; k < j0; ++k) {
      double* ptk = pt.data() + k * kPanel;
      for (size_t c = 0; c < w; ++c) ptk[c] = ld[(j0 + c) * n + k];
      for (size_t c = w; c < kPanel; ++c) ptk[c] = 0.0;
    }
    // Diagonal-block rows: vector bulk over k < j0, then the scalar
    // in-block tail and this panel's diagonal element.
    for (size_t i = j0; i < j0 + w; ++i) {
      const double* ai = a + i * n;
      double* li = ld + i * n;
      double acc[kPanel] = {};
      for (size_t c = 0; c < w; ++c) acc[c] = ai[j0 + c];
#if defined(ATUNE_HAVE_AVX_DISPATCH)
      if (use_avx) {
        PanelBulkRowAvx(pt.data(), j0, li, acc);
      } else {
        PanelBulkRowSse2(pt.data(), j0, li, acc);
      }
#else
      PanelBulkRowSse2(pt.data(), j0, li, acc);
#endif
      for (size_t j = j0; j < i; ++j) {
        const double* rj = ld + j * n;
        double sum = acc[j - j0];
        for (size_t k = j0; k < j; ++k) sum -= li[k] * rj[k];
        li[j] = sum / rj[j];
      }
      double sum = acc[i - j0];
      for (size_t k = j0; k < i; ++k) sum -= li[k] * li[k];
      if (sum <= 0.0) return false;
      li[i] = std::sqrt(sum);
    }
    // Rows below the panel, two at a time sharing the column loads.
    size_t i = j0 + w;
    for (; i + 2 <= n; i += 2) {
      const double* ai = a + i * n;
      const double* bi = a + (i + 1) * n;
      double* li = ld + i * n;
      double* mi = ld + (i + 1) * n;
      double accp[kPanel], accq[kPanel];
      for (size_t c = 0; c < kPanel; ++c) accp[c] = ai[j0 + c];
      for (size_t c = 0; c < kPanel; ++c) accq[c] = bi[j0 + c];
#if defined(ATUNE_HAVE_AVX_DISPATCH)
      if (use_avx) {
        PanelBulkPairAvx(pt.data(), j0, li, mi, accp, accq);
      } else {
        PanelBulkPairSse2(pt.data(), j0, li, mi, accp, accq);
      }
#else
      PanelBulkPairSse2(pt.data(), j0, li, mi, accp, accq);
#endif
      for (size_t c = 0; c < w; ++c) {
        const size_t j = j0 + c;
        const double* rj = ld + j * n;
        double sum = accp[c];
        for (size_t k = j0; k < j; ++k) sum -= li[k] * rj[k];
        li[j] = sum / rj[j];
      }
      for (size_t c = 0; c < w; ++c) {
        const size_t j = j0 + c;
        const double* rj = ld + j * n;
        double sum = accq[c];
        for (size_t k = j0; k < j; ++k) sum -= mi[k] * rj[k];
        mi[j] = sum / rj[j];
      }
    }
    for (; i < n; ++i) {
      const double* ai = a + i * n;
      double* li = ld + i * n;
      double accp[kPanel];
      for (size_t c = 0; c < kPanel; ++c) accp[c] = ai[j0 + c];
#if defined(ATUNE_HAVE_AVX_DISPATCH)
      if (use_avx) {
        PanelBulkRowAvx(pt.data(), j0, li, accp);
      } else {
        PanelBulkRowSse2(pt.data(), j0, li, accp);
      }
#else
      PanelBulkRowSse2(pt.data(), j0, li, accp);
#endif
      for (size_t c = 0; c < w; ++c) {
        const size_t j = j0 + c;
        const double* rj = ld + j * n;
        double sum = accp[c];
        for (size_t k = j0; k < j; ++k) sum -= li[k] * rj[k];
        li[j] = sum / rj[j];
      }
    }
  }
  return true;
}
#endif  // ATUNE_HAVE_SSE2

}  // namespace

void SetScalarKernelsForTesting(bool scalar) {
  g_scalar_kernels.store(scalar, std::memory_order_release);
}

bool ScalarKernelsForTesting() {
  return g_scalar_kernels.load(std::memory_order_acquire);
}

namespace internal {

void ForwardSolvePanel(const Matrix& l, double* panel, size_t panel_stride,
                       size_t lanes) {
  const double* ld = l.data().data();
  size_t n = l.rows();
  size_t c = 0;
#if defined(ATUNE_HAVE_SSE2)
  for (; c + 16 <= lanes; c += 16) {
#if defined(ATUNE_HAVE_AVX_DISPATCH)
    if (AvxAvailable()) {
      SolvePanel16Avx(ld, n, l.cols(), panel + c, panel_stride);
      continue;
    }
#endif
    SolvePanel16Sse2(ld, n, l.cols(), panel + c, panel_stride);
  }
  for (; c + 8 <= lanes; c += 8) {
    SolvePanel8Sse2(ld, n, l.cols(), panel + c, panel_stride);
  }
#else
  for (; c + 8 <= lanes; c += 8) {
    SolvePanelFixed<8>(ld, n, l.cols(), panel + c, panel_stride);
  }
#endif
  if (c < lanes) {
    SolvePanelVar(ld, n, l.cols(), panel + c, panel_stride, lanes - c);
  }
}

}  // namespace internal

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ > 0 ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    assert(row.size() == cols_);
    for (double v : row) data_.push_back(v);
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

Matrix Matrix::ColumnVector(const Vec& v) {
  Matrix m(v.size(), 1);
  for (size_t i = 0; i < v.size(); ++i) m.At(i, 0) = v[i];
  return m;
}

Matrix Matrix::Diagonal(const Vec& v) {
  Matrix m(v.size(), v.size());
  for (size_t i = 0; i < v.size(); ++i) m.At(i, i) = v[i];
  return m;
}

Vec Matrix::Row(size_t r) const {
  Vec out(cols_);
  for (size_t c = 0; c < cols_; ++c) out[c] = At(r, c);
  return out;
}

Vec Matrix::Col(size_t c) const {
  Vec out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = At(r, c);
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) t.At(c, r) = At(r, c);
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  assert(cols_ == other.rows_);
  if (ScalarKernelsForTesting()) return reference::Multiply(*this, other);
  Matrix out(rows_, other.cols_);
  // i-k-j with the zero-skip, as in reference::Multiply — the skip keeps
  // ±0.0/NaN propagation (and therefore bits) identical. Row spans make the
  // j loop contiguous and vectorizable.
  const size_t m = other.cols_;
  for (size_t i = 0; i < rows_; ++i) {
    const double* ai = RowPtr(i);
    double* oi = out.RowPtr(i);
    for (size_t k = 0; k < cols_; ++k) {
      double aik = ai[k];
      if (aik == 0.0) continue;
      const double* bk = other.RowPtr(k);
      for (size_t j = 0; j < m; ++j) oi[j] += aik * bk[j];
    }
  }
  return out;
}

Vec Matrix::MultiplyVec(const Vec& v) const {
  assert(v.size() == cols_);
  Vec out(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (size_t j = 0; j < cols_; ++j) acc += At(i, j) * v[j];
    out[i] = acc;
  }
  return out;
}

Matrix Matrix::Add(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Matrix Matrix::Subtract(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix Matrix::Scale(double s) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= s;
  return out;
}

void Matrix::AddDiagonal(double s) {
  size_t n = rows_ < cols_ ? rows_ : cols_;
  for (size_t i = 0; i < n; ++i) At(i, i) += s;
}

Result<Matrix> Matrix::Cholesky() const {
  if (rows_ != cols_) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  if (ScalarKernelsForTesting()) return reference::Cholesky(*this);
  size_t n = rows_;
  Matrix l(n, n);
  const double* a = data_.data();
  double* ld = l.data_.data();
  bool pd;
#if defined(ATUNE_HAVE_SSE2)
  // The panel kernel's transpose-buffer setup only pays for itself once the
  // O(n^3) bulk dominates; small factors stay on the block-of-four path.
  pd = n >= 128 ? PanelCholesky8(a, ld, n) : BlockedCholesky4(a, ld, n);
#else
  pd = BlockedCholesky4(a, ld, n);
#endif
  if (!pd) {
    return Status::FailedPrecondition(
        "matrix is not positive definite (Cholesky pivot <= 0)");
  }
  return l;
}

Status Matrix::CholeskyAppendRow(const Vec& row) {
  if (rows_ != cols_) {
    return Status::InvalidArgument(
        "CholeskyAppendRow requires a square factor");
  }
  if (row.size() != rows_ + 1) {
    return Status::InvalidArgument(
        "CholeskyAppendRow: row must have rows()+1 entries");
  }
  if (ScalarKernelsForTesting()) {
    return reference::CholeskyAppendRow(this, row);
  }
  size_t n = rows_;
  // New off-diagonal row: forward-substitute L l12 = k12 (the blocked solve
  // keeps each element's term order matching Cholesky()'s inner loop, so
  // the factor stays bit-identical to refactorizing).
  static thread_local Vec l12;
  l12.resize(n);
  BlockedForwardSubstitute(data_.data(), n, cols_, row.data(), l12.data());
  double diag = row[n];
  for (size_t k = 0; k < n; ++k) diag -= l12[k] * l12[k];
  if (diag <= 0.0) {
    return Status::FailedPrecondition(
        "matrix is not positive definite (Cholesky pivot <= 0)");
  }
  // Grow in place: append storage, then re-lay rows out for the wider
  // stride from the bottom up (each destination starts at or past its
  // source, and rows below were already moved, so memmove is safe). The new
  // upper-triangle column entries are zeroed explicitly. This replaces the
  // old build-a-copy growth — no temporary (n+1)² matrix per append.
  data_.resize((n + 1) * (n + 1));
  for (size_t i = n; i-- > 1;) {
    double* dst = data_.data() + i * (n + 1);
    const double* src = data_.data() + i * n;
    std::memmove(dst, src, n * sizeof(double));
    dst[n] = 0.0;
  }
  if (n > 0) data_[n] = 0.0;
  double* last = data_.data() + n * (n + 1);
  std::memcpy(last, l12.data(), n * sizeof(double));
  last[n] = std::sqrt(diag);
  rows_ = n + 1;
  cols_ = n + 1;
  return Status::OK();
}

Status Matrix::CholeskyRank1Update(const Vec& v) {
  if (rows_ != cols_) {
    return Status::InvalidArgument(
        "CholeskyRank1Update requires a square factor");
  }
  if (v.size() != rows_) {
    return Status::InvalidArgument(
        "CholeskyRank1Update: v must have rows() entries");
  }
  size_t n = rows_;
  static thread_local Vec w;
  w.assign(v.begin(), v.end());
  // Classical rank-1 update: per column j a Givens-like rotation folds w[j]
  // into the pivot and sweeps the remainder of the column (O(n²) total).
  for (size_t j = 0; j < n; ++j) {
    double ljj = At(j, j);
    double r = std::sqrt(ljj * ljj + w[j] * w[j]);
    if (!(r > 0.0) || !std::isfinite(r)) {
      return Status::FailedPrecondition(
          "CholeskyRank1Update: pivot became non-positive or non-finite");
    }
    double c = r / ljj;
    double s = w[j] / ljj;
    At(j, j) = r;
    for (size_t i = j + 1; i < n; ++i) {
      double lij = (At(i, j) + s * w[i]) / c;
      At(i, j) = lij;
      w[i] = c * w[i] - s * lij;
    }
  }
  return Status::OK();
}

Vec Matrix::ForwardSolve(const Matrix& l, const Vec& b) {
  size_t n = l.rows();
  assert(b.size() == n);
  if (ScalarKernelsForTesting()) return reference::ForwardSolve(l, b);
  Vec y(n, 0.0);
  BlockedForwardSubstitute(l.data_.data(), n, l.cols_, b.data(), y.data());
  return y;
}

void Matrix::ForwardSolveInto(const Matrix& l, const double* b, double* y) {
  size_t n = l.rows();
  if (ScalarKernelsForTesting()) {
    // Naive span loop, identical to reference::ForwardSolve (y == b safe:
    // b[i] is read before y[i] is written and only finalized y[k] follow).
    for (size_t i = 0; i < n; ++i) {
      const double* ri = l.RowPtr(i);
      double sum = b[i];
      for (size_t k = 0; k < i; ++k) sum -= ri[k] * y[k];
      y[i] = sum / ri[i];
    }
    return;
  }
  BlockedForwardSubstitute(l.data_.data(), n, l.cols_, b, y);
}

Matrix Matrix::ForwardSolveMulti(const Matrix& l, const Matrix& b) {
  size_t n = l.rows();
  assert(b.rows() == n);
  if (ScalarKernelsForTesting()) {
    Matrix y(n, b.cols());
    for (size_t j = 0; j < b.cols(); ++j) {
      Vec col = reference::ForwardSolve(l, b.Col(j));
      for (size_t i = 0; i < n; ++i) y.At(i, j) = col[i];
    }
    return y;
  }
  Matrix y = b;
  internal::ForwardSolvePanel(l, y.data_.data(), y.cols_, y.cols_);
  return y;
}

// Stays naive by design: the k-th subtraction of element ii reads x[k]
// for k > ii, i.e. in-block elements that a descending block would finalize
// *after* the bulk phase — there is no blocking that preserves each
// element's subtraction order. It runs once per GP refit (not per
// candidate), so it is off the hot path. See matrix.h.
Vec Matrix::BackwardSolveTranspose(const Matrix& l, const Vec& y) {
  size_t n = l.rows();
  assert(y.size() == n);
  Vec x(n, 0.0);
  for (size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (size_t k = ii + 1; k < n; ++k) sum -= l.At(k, ii) * x[k];
    x[ii] = sum / l.At(ii, ii);
  }
  return x;
}

void Matrix::BackwardSolveTransposeInto(const Matrix& l, const double* y,
                                        double* x) {
  size_t n = l.rows();
  for (size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (size_t k = ii + 1; k < n; ++k) sum -= l.At(k, ii) * x[k];
    x[ii] = sum / l.At(ii, ii);
  }
}

Result<Vec> Matrix::SolveSpd(const Vec& b) const {
  ATUNE_ASSIGN_OR_RETURN(Matrix l, Cholesky());
  Vec y = ForwardSolve(l, b);
  return BackwardSolveTranspose(l, y);
}

double Matrix::LogDetFromCholesky(const Matrix& l) {
  double acc = 0.0;
  for (size_t i = 0; i < l.rows(); ++i) acc += std::log(l.At(i, i));
  return 2.0 * acc;
}

Result<Vec> Matrix::LeastSquares(const Matrix& a, const Vec& b,
                                 double lambda) {
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("LeastSquares: A rows must match b size");
  }
  Matrix at = a.Transpose();
  Matrix ata = at.Multiply(a);
  ata.AddDiagonal(lambda);
  Vec atb = at.MultiplyVec(b);
  auto sol = ata.SolveSpd(atb);
  if (!sol.ok() && lambda == 0.0) {
    // Rank-deficient unregularized system: retry with a tiny ridge.
    ata.AddDiagonal(1e-10);
    return ata.SolveSpd(atb);
  }
  return sol;
}

double Dot(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double DotSpan(const double* a, const double* b, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

double Norm2(const Vec& v) { return std::sqrt(Dot(v, v)); }

Vec Axpy(const Vec& a, double s, const Vec& b) {
  assert(a.size() == b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + s * b[i];
  return out;
}

double SquaredDistance(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace atune
