#ifndef ATUNE_MATH_REFERENCE_KERNELS_H_
#define ATUNE_MATH_REFERENCE_KERNELS_H_

#include "math/matrix.h"

namespace atune {
namespace reference {

/// Naive scalar implementations of the Matrix hot kernels (DESIGN.md §11).
///
/// These are the pre-speed-layer loops, kept verbatim as the semantic
/// definition of each kernel: the blocked fast paths in matrix.cc must
/// produce *bit-identical* results (same floating-point operations on each
/// output element, in the same order), which tests/math/blocked_kernels_test
/// and bench_hotpath enforce against these references. They also serve the
/// in-process A/B switch (SetScalarKernelsForTesting in matrix.h) that runs
/// whole tuning sessions on the scalar paths to prove outcome bit-identity.
///
/// Everything here uses only the public Matrix API and allocates freely —
/// clarity is the point; speed is matrix.cc's job.

/// A = L Lᵀ factorization; errors mirror Matrix::Cholesky.
Result<Matrix> Cholesky(const Matrix& a);

/// Grows the factor `l` by one bordered row/column; errors and in-place
/// semantics mirror Matrix::CholeskyAppendRow.
Status CholeskyAppendRow(Matrix* l, const Vec& row);

/// Solves L y = b, L lower triangular.
Vec ForwardSolve(const Matrix& l, const Vec& b);

/// Solves Lᵀ x = y, L lower triangular.
Vec BackwardSolveTranspose(const Matrix& l, const Vec& y);

/// Row-by-column matrix product with the zero-skip of Matrix::Multiply.
Matrix Multiply(const Matrix& a, const Matrix& b);

}  // namespace reference
}  // namespace atune

#endif  // ATUNE_MATH_REFERENCE_KERNELS_H_
