#include "math/reference_kernels.h"

#include <cassert>
#include <cmath>

namespace atune {
namespace reference {

Result<Matrix> Cholesky(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  size_t n = a.rows();
  Matrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a.At(i, j);
      for (size_t k = 0; k < j; ++k) {
        sum -= l.At(i, k) * l.At(j, k);
      }
      if (i == j) {
        if (sum <= 0.0) {
          return Status::FailedPrecondition(
              "matrix is not positive definite (Cholesky pivot <= 0)");
        }
        l.At(i, i) = std::sqrt(sum);
      } else {
        l.At(i, j) = sum / l.At(j, j);
      }
    }
  }
  return l;
}

Status CholeskyAppendRow(Matrix* l, const Vec& row) {
  if (l->rows() != l->cols()) {
    return Status::InvalidArgument(
        "CholeskyAppendRow requires a square factor");
  }
  size_t n = l->rows();
  if (row.size() != n + 1) {
    return Status::InvalidArgument(
        "CholeskyAppendRow: row must have rows()+1 entries");
  }
  Vec l12(n);
  for (size_t j = 0; j < n; ++j) {
    double sum = row[j];
    for (size_t k = 0; k < j; ++k) {
      sum -= l12[k] * l->At(j, k);
    }
    l12[j] = sum / l->At(j, j);
  }
  double diag = row[n];
  for (size_t k = 0; k < n; ++k) {
    diag -= l12[k] * l12[k];
  }
  if (diag <= 0.0) {
    return Status::FailedPrecondition(
        "matrix is not positive definite (Cholesky pivot <= 0)");
  }
  Matrix grown(n + 1, n + 1);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      grown.At(i, j) = l->At(i, j);
    }
  }
  for (size_t j = 0; j < n; ++j) {
    grown.At(n, j) = l12[j];
  }
  grown.At(n, n) = std::sqrt(diag);
  *l = std::move(grown);
  return Status::OK();
}

Vec ForwardSolve(const Matrix& l, const Vec& b) {
  size_t n = l.rows();
  assert(b.size() == n);
  Vec y(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) {
      sum -= l.At(i, k) * y[k];
    }
    y[i] = sum / l.At(i, i);
  }
  return y;
}

Vec BackwardSolveTranspose(const Matrix& l, const Vec& y) {
  size_t n = l.rows();
  assert(y.size() == n);
  Vec x(n, 0.0);
  for (size_t i = n; i-- > 0;) {
    double sum = y[i];
    for (size_t k = i + 1; k < n; ++k) {
      sum -= l.At(k, i) * x[k];
    }
    x[i] = sum / l.At(i, i);
  }
  return x;
}

Matrix Multiply(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t k = 0; k < a.cols(); ++k) {
      double aik = a.At(i, k);
      if (aik == 0.0) continue;
      for (size_t j = 0; j < b.cols(); ++j) {
        out.At(i, j) += aik * b.At(k, j);
      }
    }
  }
  return out;
}

}  // namespace reference
}  // namespace atune
