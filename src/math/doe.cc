#include "math/doe.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/string_util.h"

namespace atune {

namespace {

// First rows of standard cyclic Plackett-Burman designs (Plackett & Burman,
// 1946). The design for N runs is built by cyclically rotating the generator
// (length N-1) and appending a final all-minus row. Only the sizes that are
// not powers of two are listed; power-of-two sizes use the Sylvester-Hadamard
// construction below, which is orthogonal by construction.
struct PbGenerator {
  size_t runs;
  const char* signs;  // '+' / '-' string of length runs-1
};

constexpr PbGenerator kCyclicGenerators[] = {
    {12, "++-+++---+-"},
    {20, "++--++++-+-+----++-"},
    {24, "+++++-+-++--++--+-+----"},
};

// Builds a Sylvester-Hadamard matrix H of order n (n a power of two) and
// converts it to a screening design: drop the first (all-ones) column, use
// the remaining n-1 columns as factors. Orthogonality of Hadamard columns
// gives a valid two-level design with n runs for up to n-1 factors.
TwoLevelDesign SylvesterDesign(size_t n, size_t num_factors) {
  std::vector<std::vector<int>> h(n, std::vector<int>(n, 1));
  for (size_t size = 1; size < n; size *= 2) {
    for (size_t r = 0; r < size; ++r) {
      for (size_t c = 0; c < size; ++c) {
        h[r + size][c] = h[r][c];
        h[r][c + size] = h[r][c];
        h[r + size][c + size] = -h[r][c];
      }
    }
  }
  TwoLevelDesign design;
  design.num_factors = num_factors;
  design.rows.reserve(n);
  for (size_t r = 0; r < n; ++r) {
    std::vector<int> row(num_factors);
    for (size_t c = 0; c < num_factors; ++c) row[c] = h[r][c + 1];
    design.rows.push_back(std::move(row));
  }
  return design;
}

TwoLevelDesign CyclicDesign(const PbGenerator& g, size_t num_factors) {
  size_t n = g.runs;
  std::vector<int> gen(n - 1);
  for (size_t i = 0; i < n - 1; ++i) gen[i] = g.signs[i] == '+' ? 1 : -1;
  TwoLevelDesign design;
  design.num_factors = num_factors;
  design.rows.reserve(n);
  for (size_t r = 0; r + 1 < n; ++r) {
    std::vector<int> row(num_factors);
    for (size_t c = 0; c < num_factors; ++c) row[c] = gen[(c + r) % (n - 1)];
    design.rows.push_back(std::move(row));
  }
  design.rows.emplace_back(num_factors, -1);  // final all-minus run
  return design;
}

}  // namespace

Result<TwoLevelDesign> PlackettBurman(size_t num_factors) {
  if (num_factors == 0) {
    return Status::InvalidArgument("PlackettBurman: num_factors must be > 0");
  }
  if (num_factors > 511) {
    return Status::OutOfRange(
        StrFormat("PlackettBurman supports up to 511 factors, got %zu",
                  num_factors));
  }
  // Candidate run counts: cyclic designs (12, 20, 24) and powers of two.
  // Pick the smallest valid size strictly greater than num_factors.
  size_t best_runs = 0;
  const PbGenerator* cyclic = nullptr;
  for (const auto& g : kCyclicGenerators) {
    if (g.runs > num_factors && (best_runs == 0 || g.runs < best_runs)) {
      best_runs = g.runs;
      cyclic = &g;
    }
  }
  size_t pow2 = 4;
  while (pow2 <= num_factors) pow2 *= 2;
  if (best_runs == 0 || pow2 < best_runs) {
    best_runs = pow2;
    cyclic = nullptr;
  }
  if (cyclic != nullptr) return CyclicDesign(*cyclic, num_factors);
  return SylvesterDesign(best_runs, num_factors);
}

Result<TwoLevelDesign> PlackettBurmanFoldover(size_t num_factors) {
  ATUNE_ASSIGN_OR_RETURN(TwoLevelDesign design, PlackettBurman(num_factors));
  size_t base = design.rows.size();
  design.rows.reserve(base * 2);
  for (size_t r = 0; r < base; ++r) {
    std::vector<int> mirrored = design.rows[r];
    for (int& v : mirrored) v = -v;
    design.rows.push_back(std::move(mirrored));
  }
  return design;
}

Result<TwoLevelDesign> FullFactorial(size_t num_factors) {
  if (num_factors == 0 || num_factors > 20) {
    return Status::InvalidArgument(
        "FullFactorial: num_factors must be in [1, 20]");
  }
  TwoLevelDesign design;
  design.num_factors = num_factors;
  size_t total = size_t{1} << num_factors;
  design.rows.reserve(total);
  for (size_t mask = 0; mask < total; ++mask) {
    std::vector<int> row(num_factors);
    for (size_t c = 0; c < num_factors; ++c) {
      row[c] = (mask >> c) & 1 ? 1 : -1;
    }
    design.rows.push_back(std::move(row));
  }
  return design;
}

Result<std::vector<double>> MainEffects(const TwoLevelDesign& design,
                                        const std::vector<double>& responses) {
  if (responses.size() != design.rows.size()) {
    return Status::InvalidArgument(StrFormat(
        "MainEffects: %zu responses for %zu design runs", responses.size(),
        design.rows.size()));
  }
  std::vector<double> effects(design.num_factors, 0.0);
  for (size_t c = 0; c < design.num_factors; ++c) {
    double plus_sum = 0.0, minus_sum = 0.0;
    size_t plus_n = 0, minus_n = 0;
    for (size_t r = 0; r < design.rows.size(); ++r) {
      if (design.rows[r][c] > 0) {
        plus_sum += responses[r];
        ++plus_n;
      } else {
        minus_sum += responses[r];
        ++minus_n;
      }
    }
    if (plus_n == 0 || minus_n == 0) {
      effects[c] = 0.0;
    } else {
      effects[c] = plus_sum / static_cast<double>(plus_n) -
                   minus_sum / static_cast<double>(minus_n);
    }
  }
  return effects;
}

std::vector<size_t> RankByEffect(const std::vector<double>& effects) {
  std::vector<size_t> idx(effects.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(), [&effects](size_t a, size_t b) {
    return std::abs(effects[a]) > std::abs(effects[b]);
  });
  return idx;
}

}  // namespace atune
