#ifndef ATUNE_MATH_MATRIX_H_
#define ATUNE_MATH_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/status.h"

namespace atune {

/// Numeric vector type used across math/ML code.
using Vec = std::vector<double>;

/// Dense row-major matrix with the small linear-algebra kernel the tuners
/// need: products, transpose, Cholesky, forward/backward solves, and
/// (ridge-regularized) least squares. Sizes here are tiny (tens to a few
/// hundred rows), so clarity beats blocking/vectorization tricks.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer lists: Matrix m({{1,2},{3,4}});
  explicit Matrix(std::initializer_list<std::initializer_list<double>> init);

  static Matrix Identity(size_t n);
  /// Builds a column vector (n x 1) from v.
  static Matrix ColumnVector(const Vec& v);
  /// Builds a diagonal matrix from v.
  static Matrix Diagonal(const Vec& v);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  double& operator()(size_t r, size_t c) { return At(r, c); }
  double operator()(size_t r, size_t c) const { return At(r, c); }

  /// Returns row r as a Vec.
  Vec Row(size_t r) const;
  /// Returns column c as a Vec.
  Vec Col(size_t c) const;

  Matrix Transpose() const;

  /// Matrix product; dimensions must agree (asserted).
  Matrix Multiply(const Matrix& other) const;
  /// Matrix-vector product; v.size() must equal cols().
  Vec MultiplyVec(const Vec& v) const;

  Matrix Add(const Matrix& other) const;
  Matrix Subtract(const Matrix& other) const;
  Matrix Scale(double s) const;

  /// Adds s to every diagonal entry (in place); used for jitter/ridge terms.
  void AddDiagonal(double s);

  /// Cholesky factorization A = L L^T for symmetric positive-definite A.
  /// Returns the lower-triangular factor, or an error if not SPD.
  Result<Matrix> Cholesky() const;

  /// Treating *this as the lower Cholesky factor L of an n x n SPD matrix
  /// A, grows it in place to the factor of A bordered by one symmetric
  /// row/column: `row` holds the n cross terms followed by the new diagonal
  /// entry (n+1 values). Performs exactly the arithmetic of the last row of
  /// a full factorization, so the result is bit-identical to refactorizing
  /// from scratch — in O(n²) instead of O(n³). This is what makes
  /// GaussianProcess::AddObservation incremental. Fails (leaving *this
  /// unchanged) if the bordered matrix is not positive definite.
  Status CholeskyAppendRow(const Vec& row);

  /// Solves L y = b with L lower triangular.
  static Vec ForwardSolve(const Matrix& l, const Vec& b);
  /// Solves L^T x = y with L lower triangular (i.e. backward pass).
  static Vec BackwardSolveTranspose(const Matrix& l, const Vec& y);

  /// Solves A x = b for SPD A via Cholesky.
  Result<Vec> SolveSpd(const Vec& b) const;

  /// Log-determinant of an SPD matrix via its Cholesky factor.
  static double LogDetFromCholesky(const Matrix& l);

  /// Solves the ridge-regularized least squares problem
  ///   min_x ||A x - b||^2 + lambda ||x||^2
  /// via the normal equations (A^T A + lambda I) x = A^T b.
  /// lambda = 0 gives plain least squares (may fail if rank-deficient).
  static Result<Vec> LeastSquares(const Matrix& a, const Vec& b,
                                  double lambda = 0.0);

  const std::vector<double>& data() const { return data_; }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Dot product; sizes must match (asserted).
double Dot(const Vec& a, const Vec& b);
/// Euclidean norm.
double Norm2(const Vec& v);
/// Element-wise a + s*b.
Vec Axpy(const Vec& a, double s, const Vec& b);
/// Squared Euclidean distance.
double SquaredDistance(const Vec& a, const Vec& b);

}  // namespace atune

#endif  // ATUNE_MATH_MATRIX_H_
