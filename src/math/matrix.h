#ifndef ATUNE_MATH_MATRIX_H_
#define ATUNE_MATH_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/status.h"

namespace atune {

/// Numeric vector type used across math/ML code.
using Vec = std::vector<double>;

/// Dense row-major matrix with the linear-algebra kernel the tuners need:
/// products, transpose, Cholesky (full, bordered-append, rank-1 update),
/// forward/backward solves, and (ridge-regularized) least squares.
///
/// The hot kernels (Cholesky, ForwardSolve, ForwardSolveMulti, Multiply,
/// CholeskyAppendRow) are written as blocked loops over contiguous row
/// spans: observation stores now reach hundreds of rows and the GP hot path
/// runs them once per candidate batch, so they are tuned for instruction-
/// level parallelism and vectorization: hand-written SSE2 lanes on x86-64
/// (GCC's auto-vectorizer shuffles the same loops into slower code), with
/// AVX bodies selected at runtime via __builtin_cpu_supports so the
/// default build carries no extra ISA requirement (DESIGN.md §11).
/// Kernel contracts:
///
///   * Layout: row-major, contiguous — element (r, c) lives at
///     data()[r * cols() + c]; RowPtr(r) spans cols() doubles.
///   * Bit-identity: every fast path performs exactly the same
///     floating-point operations on each output element, in the same order,
///     as the naive loops preserved in math/reference_kernels.h. Blocking
///     only interleaves *independent* elements' dependency chains; nothing
///     is reassociated, and divisions stay divisions. Tuners compare
///     objectives and acquisition values with exact `<`/`>`, so this is a
///     correctness contract, not a nicety — enforced by
///     tests/math/blocked_kernels_test.cc and bench_hotpath's whole-session
///     A/B (see SetScalarKernelsForTesting below).
///   * BackwardSolveTranspose stays naive by design: its column-strided
///     dependency chain cannot be blocked without reordering subtractions
///     (breaking bit-identity), and it runs once per GP refit, not per
///     candidate.
///   * Aliasing: the *Into span variants allow out == in (in-place solve)
///     but no partial overlap; spans must not alias the factor `l`.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer lists: Matrix m({{1,2},{3,4}});
  explicit Matrix(std::initializer_list<std::initializer_list<double>> init);

  static Matrix Identity(size_t n);
  /// Builds a column vector (n x 1) from v.
  static Matrix ColumnVector(const Vec& v);
  /// Builds a diagonal matrix from v.
  static Matrix Diagonal(const Vec& v);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  double& operator()(size_t r, size_t c) { return At(r, c); }
  double operator()(size_t r, size_t c) const { return At(r, c); }

  /// Returns row r as a Vec.
  Vec Row(size_t r) const;
  /// Returns column c as a Vec.
  Vec Col(size_t c) const;

  /// Borrowed contiguous span of row r (cols() doubles) — the hot paths use
  /// these instead of the copying Row()/Col() accessors.
  const double* RowPtr(size_t r) const { return data_.data() + r * cols_; }
  double* RowPtr(size_t r) { return data_.data() + r * cols_; }

  Matrix Transpose() const;

  /// Matrix product; dimensions must agree (asserted).
  Matrix Multiply(const Matrix& other) const;
  /// Matrix-vector product; v.size() must equal cols().
  Vec MultiplyVec(const Vec& v) const;

  Matrix Add(const Matrix& other) const;
  Matrix Subtract(const Matrix& other) const;
  Matrix Scale(double s) const;

  /// Adds s to every diagonal entry (in place); used for jitter/ridge terms.
  void AddDiagonal(double s);

  /// Cholesky factorization A = L L^T for symmetric positive-definite A.
  /// Returns the lower-triangular factor, or an error if not SPD.
  Result<Matrix> Cholesky() const;

  /// Treating *this as the lower Cholesky factor L of an n x n SPD matrix
  /// A, grows it in place to the factor of A bordered by one symmetric
  /// row/column: `row` holds the n cross terms followed by the new diagonal
  /// entry (n+1 values). Performs exactly the arithmetic of the last row of
  /// a full factorization, so the result is bit-identical to refactorizing
  /// from scratch — in O(n²) instead of O(n³). This is what makes
  /// GaussianProcess::AddObservation incremental. Fails (leaving *this
  /// unchanged) if the bordered matrix is not positive definite.
  Status CholeskyAppendRow(const Vec& row);

  /// Treating *this as a lower Cholesky factor L of A, updates it in place
  /// to the factor of A + v vᵀ (classical Givens-style rank-1 update,
  /// O(n²)). Unlike CholeskyAppendRow this is *not* bit-identical to
  /// refactorizing — it is a different (numerically stable) algorithm — so
  /// callers on exact-comparison paths must refactorize instead. Fails if
  /// the update drives a pivot non-positive or non-finite; *this is then
  /// partially updated and must be refactorized.
  Status CholeskyRank1Update(const Vec& v);

  /// Solves L y = b with L lower triangular.
  static Vec ForwardSolve(const Matrix& l, const Vec& b);
  /// Allocation-free ForwardSolve into caller storage: `b` and `y` are
  /// spans of l.rows() doubles; y == b solves in place (full aliasing only).
  static void ForwardSolveInto(const Matrix& l, const double* b, double* y);
  /// Solves L Y = B column-by-column: `b` is rows() x m, column j of the
  /// result is ForwardSolve(l, column j of b), bit-identically. Internally
  /// solves 8 right-hand sides at a time so independent columns share L's
  /// memory traffic — this is the batched-acquisition kernel.
  static Matrix ForwardSolveMulti(const Matrix& l, const Matrix& b);
  /// Solves L^T x = y with L lower triangular (i.e. backward pass).
  static Vec BackwardSolveTranspose(const Matrix& l, const Vec& y);
  /// Allocation-free BackwardSolveTranspose; same span contract as
  /// ForwardSolveInto.
  static void BackwardSolveTransposeInto(const Matrix& l, const double* y,
                                         double* x);

  /// Solves A x = b for SPD A via Cholesky.
  Result<Vec> SolveSpd(const Vec& b) const;

  /// Log-determinant of an SPD matrix via its Cholesky factor.
  static double LogDetFromCholesky(const Matrix& l);

  /// Solves the ridge-regularized least squares problem
  ///   min_x ||A x - b||^2 + lambda ||x||^2
  /// via the normal equations (A^T A + lambda I) x = A^T b.
  /// lambda = 0 gives plain least squares (may fail if rank-deficient).
  static Result<Vec> LeastSquares(const Matrix& a, const Vec& b,
                                  double lambda = 0.0);

  const std::vector<double>& data() const { return data_; }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

namespace internal {
/// Solves L Y = Y in place on a row-major panel of l.rows() rows ×
/// `lanes` columns with row stride `panel_stride`; each lane performs
/// bit-identically the operations of Matrix::ForwardSolve on that column.
/// Backbone of ForwardSolveMulti and GaussianProcess::PredictBatch.
void ForwardSolvePanel(const Matrix& l, double* panel, size_t panel_stride,
                       size_t lanes);
}  // namespace internal

/// Routes the Matrix hot kernels (and GaussianProcess::PredictBatch) through
/// the naive scalar implementations in math/reference_kernels.h instead of
/// the blocked fast paths. Testing/benchmarking only: bench_hotpath runs
/// whole tuning sessions under both settings and requires byte-identical
/// outcomes, traces, and journals. Process-wide; do not toggle while a
/// computation is in flight.
void SetScalarKernelsForTesting(bool scalar);
bool ScalarKernelsForTesting();

/// Dot product; sizes must match (asserted).
double Dot(const Vec& a, const Vec& b);
/// Dot product over spans, same order of operations as Dot.
double DotSpan(const double* a, const double* b, size_t n);
/// Euclidean norm.
double Norm2(const Vec& v);
/// Element-wise a + s*b.
Vec Axpy(const Vec& a, double s, const Vec& b);
/// Squared Euclidean distance.
double SquaredDistance(const Vec& a, const Vec& b);

}  // namespace atune

#endif  // ATUNE_MATH_MATRIX_H_
