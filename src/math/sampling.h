#ifndef ATUNE_MATH_SAMPLING_H_
#define ATUNE_MATH_SAMPLING_H_

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "math/matrix.h"

namespace atune {

/// Space-filling and random designs over the unit hypercube [0,1]^dims.
/// All samplers return `count` points, each a Vec of length `dims`.

/// Plain i.i.d. uniform sampling.
std::vector<Vec> UniformSamples(size_t count, size_t dims, Rng* rng);

/// Latin Hypercube Sampling: each dimension is split into `count` strata and
/// every stratum is hit exactly once (uniform jitter within the stratum).
/// This is the initialization design used by iTuned [Duan et al., 2009].
std::vector<Vec> LatinHypercubeSamples(size_t count, size_t dims, Rng* rng);

/// Maximin-improved LHS: generates `restarts` LHS designs and keeps the one
/// maximizing the minimum pairwise distance (iTuned's space-filling
/// refinement).
std::vector<Vec> MaximinLatinHypercube(size_t count, size_t dims,
                                       size_t restarts, Rng* rng);

/// Full-factorial grid with `points_per_dim` levels per dimension.
/// Total size is points_per_dim^dims; callers must keep dims small.
std::vector<Vec> GridSamples(size_t points_per_dim, size_t dims);

/// Halton low-discrepancy sequence (deterministic quasi-random design).
std::vector<Vec> HaltonSamples(size_t count, size_t dims);

/// Minimum pairwise Euclidean distance of a design (space-filling metric).
double MinPairwiseDistance(const std::vector<Vec>& points);

}  // namespace atune

#endif  // ATUNE_MATH_SAMPLING_H_
