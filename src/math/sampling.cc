#include "math/sampling.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace atune {

std::vector<Vec> UniformSamples(size_t count, size_t dims, Rng* rng) {
  std::vector<Vec> out(count, Vec(dims, 0.0));
  for (auto& p : out) {
    for (double& x : p) x = rng->Uniform();
  }
  return out;
}

std::vector<Vec> LatinHypercubeSamples(size_t count, size_t dims, Rng* rng) {
  std::vector<Vec> out(count, Vec(dims, 0.0));
  if (count == 0) return out;
  std::vector<size_t> perm(count);
  for (size_t d = 0; d < dims; ++d) {
    std::iota(perm.begin(), perm.end(), 0);
    std::shuffle(perm.begin(), perm.end(), rng->engine());
    for (size_t i = 0; i < count; ++i) {
      double stratum = static_cast<double>(perm[i]);
      out[i][d] = (stratum + rng->Uniform()) / static_cast<double>(count);
    }
  }
  return out;
}

std::vector<Vec> MaximinLatinHypercube(size_t count, size_t dims,
                                       size_t restarts, Rng* rng) {
  std::vector<Vec> best;
  double best_score = -1.0;
  for (size_t r = 0; r < std::max<size_t>(restarts, 1); ++r) {
    std::vector<Vec> design = LatinHypercubeSamples(count, dims, rng);
    double score = MinPairwiseDistance(design);
    if (score > best_score) {
      best_score = score;
      best = std::move(design);
    }
  }
  return best;
}

std::vector<Vec> GridSamples(size_t points_per_dim, size_t dims) {
  std::vector<Vec> out;
  if (points_per_dim == 0 || dims == 0) return out;
  size_t total = 1;
  for (size_t d = 0; d < dims; ++d) total *= points_per_dim;
  out.reserve(total);
  for (size_t idx = 0; idx < total; ++idx) {
    Vec p(dims, 0.0);
    size_t rem = idx;
    for (size_t d = 0; d < dims; ++d) {
      size_t level = rem % points_per_dim;
      rem /= points_per_dim;
      p[d] = points_per_dim == 1
                 ? 0.5
                 : static_cast<double>(level) /
                       static_cast<double>(points_per_dim - 1);
    }
    out.push_back(std::move(p));
  }
  return out;
}

namespace {
// Van der Corput radical inverse in the given base.
double RadicalInverse(size_t index, size_t base) {
  double result = 0.0;
  double f = 1.0 / static_cast<double>(base);
  size_t i = index;
  while (i > 0) {
    result += f * static_cast<double>(i % base);
    i /= base;
    f /= static_cast<double>(base);
  }
  return result;
}

constexpr size_t kPrimes[] = {2,  3,  5,  7,  11, 13, 17, 19, 23, 29,
                              31, 37, 41, 43, 47, 53, 59, 61, 67, 71,
                              73, 79, 83, 89, 97, 101, 103, 107, 109, 113};
}  // namespace

std::vector<Vec> HaltonSamples(size_t count, size_t dims) {
  std::vector<Vec> out(count, Vec(dims, 0.0));
  size_t max_dims = sizeof(kPrimes) / sizeof(kPrimes[0]);
  for (size_t i = 0; i < count; ++i) {
    for (size_t d = 0; d < dims; ++d) {
      size_t base = kPrimes[d % max_dims];
      // Skip index 0 (all-zeros point) for better uniformity.
      out[i][d] = RadicalInverse(i + 1, base);
    }
  }
  return out;
}

double MinPairwiseDistance(const std::vector<Vec>& points) {
  if (points.size() < 2) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t j = i + 1; j < points.size(); ++j) {
      best = std::min(best, SquaredDistance(points[i], points[j]));
    }
  }
  return std::sqrt(best);
}

}  // namespace atune
