#ifndef ATUNE_TUNERS_EXPERIMENT_SEARCH_BASELINES_H_
#define ATUNE_TUNERS_EXPERIMENT_SEARCH_BASELINES_H_

#include <string>

#include "core/tuner.h"

namespace atune {

/// Uniform random search: the canonical experiment-driven baseline.
/// Batch-aware: with parallelism k, proposes k configurations per round and
/// evaluates them as one parallel batch (same configs, same history as the
/// serial loop — one wall-clock round instead of k).
class RandomSearchTuner : public Tuner {
 public:
  std::string name() const override { return "random-search"; }
  TunerCategory category() const override {
    return TunerCategory::kExperimentDriven;
  }
  Status Tune(Evaluator* evaluator, Rng* rng) override;
  void set_parallelism(size_t parallelism) override {
    parallelism_ = parallelism;
  }
  std::string Report() const override { return report_; }

 private:
  size_t parallelism_ = 1;
  std::string report_;
};

/// Coarse grid over the most-varied unit-space levels. With d knobs a full
/// grid explodes, so the grid covers `levels` points on every dimension of
/// a low-discrepancy (Halton) enumeration — i.e. a budget-bounded lattice.
class GridSearchTuner : public Tuner {
 public:
  explicit GridSearchTuner(size_t levels = 3) : levels_(levels) {}

  std::string name() const override { return "grid-search"; }
  TunerCategory category() const override {
    return TunerCategory::kExperimentDriven;
  }
  Status Tune(Evaluator* evaluator, Rng* rng) override;
  void set_parallelism(size_t parallelism) override {
    parallelism_ = parallelism;
  }
  std::string Report() const override { return report_; }

 private:
  size_t levels_;
  size_t parallelism_ = 1;
  std::string report_;
};

/// Recursive Random Search (the search strategy used by several
/// experiment-driven Hadoop tuners): sample uniformly, then repeatedly
/// restrict sampling to a shrinking box around the incumbent, restarting
/// globally when a region is exhausted.
class RecursiveRandomSearchTuner : public Tuner {
 public:
  RecursiveRandomSearchTuner(double shrink = 0.5, size_t per_region = 5)
      : shrink_(shrink), per_region_(per_region) {}

  std::string name() const override { return "recursive-random"; }
  TunerCategory category() const override {
    return TunerCategory::kExperimentDriven;
  }
  Status Tune(Evaluator* evaluator, Rng* rng) override;
  void set_parallelism(size_t parallelism) override {
    parallelism_ = parallelism;
  }
  std::string Report() const override { return report_; }

 private:
  double shrink_;
  size_t per_region_;
  size_t parallelism_ = 1;
  std::string report_;
};

}  // namespace atune

#endif  // ATUNE_TUNERS_EXPERIMENT_SEARCH_BASELINES_H_
