#include "tuners/experiment/adaptive_sampling.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/string_util.h"
#include "math/sampling.h"

namespace atune {

Status AdaptiveSamplingTuner::Tune(Evaluator* evaluator, Rng* rng) {
  const ParameterSpace& space = evaluator->space();
  size_t dims = space.dims();
  std::vector<Vec> visited;

  // Bootstrap: defaults + LHS design.
  auto first = evaluator->Evaluate(space.DefaultConfiguration());
  if (!first.ok()) return first.status();
  visited.push_back(space.ToUnitVector(space.DefaultConfiguration()));

  std::vector<Vec> seeds = LatinHypercubeSamples(bootstrap_, dims, rng);
  for (const Vec& u : seeds) {
    if (evaluator->Exhausted()) break;
    auto obj = evaluator->Evaluate(space.FromUnitVector(u));
    if (!obj.ok()) {
      if (obj.status().code() == StatusCode::kResourceExhausted) break;
      return obj.status();
    }
    visited.push_back(u);
  }

  size_t exploit_runs = 0, explore_runs = 0;
  double total_budget = static_cast<double>(evaluator->budget().max_evaluations);
  while (!evaluator->Exhausted()) {
    double progress = evaluator->used() / std::max(total_budget, 1.0);
    double p_explore = explore_start_ * (1.0 - progress);
    Vec next;
    if (rng->Bernoulli(p_explore)) {
      // Exploration: of k random candidates, take the one farthest from
      // every visited point (greedy maximin).
      double best_dist = -1.0;
      for (int i = 0; i < 32; ++i) {
        Vec cand(dims);
        for (double& x : cand) x = rng->Uniform();
        double dist = std::numeric_limits<double>::infinity();
        for (const Vec& v : visited) {
          dist = std::min(dist, SquaredDistance(cand, v));
        }
        if (dist > best_dist) {
          best_dist = dist;
          next = std::move(cand);
        }
      }
      ++explore_runs;
    } else {
      // Exploitation: Gaussian step around the incumbent, shrinking with
      // progress.
      double sigma = 0.25 * (1.0 - 0.7 * progress);
      Vec best_u = space.ToUnitVector(evaluator->best()->config);
      next.resize(dims);
      for (size_t d = 0; d < dims; ++d) {
        next[d] = std::clamp(best_u[d] + rng->Normal(0.0, sigma), 0.0, 1.0);
      }
      ++exploit_runs;
    }
    auto obj = evaluator->Evaluate(space.FromUnitVector(next));
    if (!obj.ok()) {
      if (obj.status().code() == StatusCode::kResourceExhausted) break;
      return obj.status();
    }
    visited.push_back(next);
  }
  report_ = StrFormat(
      "bootstrap %zu LHS runs, then %zu exploit + %zu explore samples",
      seeds.size(), exploit_runs, explore_runs);
  return Status::OK();
}

}  // namespace atune
