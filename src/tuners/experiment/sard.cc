#include "tuners/experiment/sard.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "math/doe.h"

namespace atune {

Status SardTuner::Tune(Evaluator* evaluator, Rng* rng) {
  (void)rng;
  const ParameterSpace& space = evaluator->space();
  size_t dims = space.dims();
  ranking_.clear();
  effects_.assign(dims, 0.0);

  ATUNE_ASSIGN_OR_RETURN(
      TwoLevelDesign design,
      foldover_ ? PlackettBurmanFoldover(dims) : PlackettBurman(dims));

  // Run the screening design (or as much of it as the budget allows).
  std::vector<double> responses;
  size_t completed = 0;
  for (const std::vector<int>& row : design.rows) {
    if (evaluator->Exhausted()) break;
    Vec u(dims);
    for (size_t d = 0; d < dims; ++d) u[d] = row[d] > 0 ? high_ : low_;
    auto obj = evaluator->Evaluate(space.FromUnitVector(u));
    if (!obj.ok()) {
      if (obj.status().code() == StatusCode::kResourceExhausted) break;
      return obj.status();
    }
    responses.push_back(*obj);
    ++completed;
  }
  if (completed < 4) {
    report_ = StrFormat(
        "budget too small for screening: %zu/%zu design runs completed",
        completed, design.rows.size());
    return Status::OK();
  }
  // Main effects over the completed prefix (orthogonality degrades if the
  // design was truncated, which SARD accepts as an approximation).
  TwoLevelDesign done = design;
  done.rows.resize(completed);
  ATUNE_ASSIGN_OR_RETURN(effects_, MainEffects(done, responses));
  std::vector<size_t> order = RankByEffect(effects_);
  for (size_t d : order) ranking_.push_back(space.param(d).name());

  // Greedy refinement of the strongest knobs from the best screened point.
  Vec current = space.ToUnitVector(evaluator->best()->config);
  double best_obj = evaluator->best()->objective;
  for (size_t rank = 0; rank < std::min(refine_top_k_, dims); ++rank) {
    size_t d = order[rank];
    // Search toward the better side first (sign of the effect tells which
    // level helped; negative effect = high level lowers the objective).
    std::vector<double> levels = effects_[d] < 0.0
                                     ? std::vector<double>{1.0, 0.65, 0.35}
                                     : std::vector<double>{0.0, 0.35, 0.65};
    double best_level = current[d];
    for (double level : levels) {
      if (evaluator->Exhausted()) break;
      Vec u = current;
      u[d] = level;
      auto obj = evaluator->Evaluate(space.FromUnitVector(u));
      if (!obj.ok()) {
        if (obj.status().code() == StatusCode::kResourceExhausted) break;
        return obj.status();
      }
      if (*obj < best_obj) {
        best_obj = *obj;
        best_level = level;
      }
    }
    current[d] = best_level;
    if (evaluator->Exhausted()) break;
  }

  std::vector<std::string> top(
      ranking_.begin(), ranking_.begin() + std::min<size_t>(5, ranking_.size()));
  report_ = StrFormat(
      "PB%s screening: %zu runs over %zu factors; top effects: %s",
      foldover_ ? "+foldover" : "", completed, dims,
      Join(top, " > ").c_str());
  return Status::OK();
}

}  // namespace atune
