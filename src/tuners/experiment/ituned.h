#ifndef ATUNE_TUNERS_EXPERIMENT_ITUNED_H_
#define ATUNE_TUNERS_EXPERIMENT_ITUNED_H_

#include <string>

#include "core/tuner.h"
#include "ml/gaussian_process.h"

namespace atune {

/// Options for the iTuned loop.
struct ITunedOptions {
  /// Initial space-filling design size (iTuned's LHS bootstrap).
  size_t initial_design = 8;
  /// Candidate points scored by the acquisition function per iteration.
  size_t acquisition_candidates = 2000;
  /// Hyperparameter random-search budget per GP refit.
  size_t gp_hyper_budget = 24;
  /// GP kernel.
  KernelType kernel = KernelType::kMatern52;
  /// Acquisition: "ei" (default), "pi", or "lcb".
  std::string acquisition = "ei";
  /// iTuned's early abort of low-utility experiments: stop any run that
  /// exceeds `early_abort_factor` x the incumbent objective and charge only
  /// the budget actually burned. 0 disables (default, for exact
  /// comparability with the other tuners; see the A6 ablation).
  double early_abort_factor = 0.0;
  /// Experiments run per wall-clock round (iTuned §2.4's parallel
  /// experiments). With k > 1 the LHS bootstrap is evaluated k at a time
  /// and each BO round proposes k candidates via constant-liar acquisition
  /// batching before dispatching them as one Evaluator::EvaluateBatch call.
  /// Early abort is only honored in serial mode (aborting one lane of a
  /// batch would serialize the round). 1 = the exact serial loop.
  size_t parallelism = 1;
};

/// iTuned [Duan, Thummala & Babu, VLDB'09]: experiment-driven tuning with
/// a Gaussian-process response-surface model and Expected-Improvement
/// planning — i.e. Bayesian optimization over the configuration space:
///
///   1. run a maximin Latin Hypercube design of initial experiments;
///   2. fit a GP to (config, objective) observations;
///   3. run the experiment maximizing Expected Improvement; goto 2.
///
/// Objectives are log-transformed before GP fitting (runtimes are
/// positive and long-tailed, especially with failure penalties).
class ITunedTuner : public Tuner {
 public:
  explicit ITunedTuner(ITunedOptions options = {})
      : options_(std::move(options)) {}

  std::string name() const override { return "ituned"; }
  TunerCategory category() const override {
    return TunerCategory::kExperimentDriven;
  }
  Status Tune(Evaluator* evaluator, Rng* rng) override;
  void set_parallelism(size_t parallelism) override {
    options_.parallelism = parallelism;
  }
  std::string Report() const override { return report_; }

 private:
  /// Batched variant of the loop (options_.parallelism > 1): constant-liar
  /// candidate selection + EvaluateBatch dispatch.
  Status TuneBatch(Evaluator* evaluator, Rng* rng);

  ITunedOptions options_;
  std::string report_;
};

}  // namespace atune

#endif  // ATUNE_TUNERS_EXPERIMENT_ITUNED_H_
