#include "tuners/experiment/ituned.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/string_util.h"
#include "math/sampling.h"
#include "ml/acquisition.h"
#include "obs/trace.h"

namespace atune {

namespace {

/// Consecutive GP-fit failures tolerated (with a random-draw fallback per
/// failure) before the fit status escalates out of Tune(). Random draws fix
/// transient degeneracy (constant early responses); they cannot fix poisoned
/// observations, and looping forever on a dead surrogate hides the failure
/// from any supervision layer.
constexpr size_t kMaxConsecutiveModelFailures = 3;

/// Reusable storage for the batched acquisition scan: the candidate matrix,
/// the PredictBatch output, the acquisition values, and the GP panel
/// scratch. Owned by the Tune loop so a whole tuning session allocates the
/// scan buffers once instead of per candidate per iteration.
struct AcquisitionWorkspace {
  Matrix cands;
  std::vector<GpPrediction> preds;
  Vec acq;
  GpScratch gp;
};

/// Acquisition-maximizing candidate over `acquisition_candidates` random
/// proposals (a third perturb the incumbent). Shared by the serial loop and
/// the constant-liar batch loop; `xs`/`ys` may include liar observations.
///
/// The candidates are pre-generated into ws->cands with exactly the rng draw
/// order of the old per-point loop (Predict consumed no randomness), then
/// predicted and scored as whole batches; the strict-> argmax in index order
/// therefore selects the bit-identical winner the per-point scan did.
Vec ProposeCandidate(const GaussianProcess& gp, const ITunedOptions& options,
                     const std::vector<Vec>& xs, const Vec& ys, size_t dims,
                     Rng* rng, AcquisitionWorkspace* ws, double* best_acq_out) {
  ScopedSpan span(CurrentTracer(), "acquisition");
  if (span.active()) {
    span.AddArg("candidates", std::to_string(options.acquisition_candidates));
    span.AddArg("kind", options.acquisition);
  }
  double best_log = *std::min_element(ys.begin(), ys.end());
  size_t m = options.acquisition_candidates;
  if (ws->cands.rows() != m || ws->cands.cols() != dims) {
    ws->cands = Matrix(m, dims);
  }
  // The incumbent is loop-invariant; hoisting its argmin out of the
  // candidate loop changes no draws.
  const Vec* inc = nullptr;
  if (!xs.empty()) {
    inc = &xs[static_cast<size_t>(std::min_element(ys.begin(), ys.end()) -
                                  ys.begin())];
  }
  for (size_t i = 0; i < m; ++i) {
    double* cand = ws->cands.RowPtr(i);
    if (i % 3 == 0 && inc != nullptr) {
      // A third of candidates perturb the incumbent (local refinement).
      for (size_t d = 0; d < dims; ++d) {
        cand[d] = std::clamp((*inc)[d] + rng->Normal(0.0, 0.08), 0.0, 1.0);
      }
    } else {
      for (size_t d = 0; d < dims; ++d) cand[d] = rng->Uniform();
    }
  }
  gp.PredictBatch(ws->cands, &ws->gp, &ws->preds);
  if (options.acquisition == "pi") {
    ProbabilityOfImprovementBatch(ws->preds, best_log, 0.0, &ws->acq);
  } else if (options.acquisition == "lcb") {
    LowerConfidenceBoundBatch(ws->preds, 2.0, &ws->acq);
  } else {
    ExpectedImprovementBatch(ws->preds, best_log, 0.0, &ws->acq);
  }
  double best_acq = -std::numeric_limits<double>::infinity();
  Vec next;
  size_t best_i = m;
  for (size_t i = 0; i < m; ++i) {
    if (ws->acq[i] > best_acq) {
      best_acq = ws->acq[i];
      best_i = i;
    }
  }
  if (best_i < m) next = ws->cands.Row(best_i);
  if (best_acq_out != nullptr) *best_acq_out = best_acq;
  return next;
}

}  // namespace

Status ITunedTuner::Tune(Evaluator* evaluator, Rng* rng) {
  if (options_.parallelism > 1) return TuneBatch(evaluator, rng);
  const ParameterSpace& space = evaluator->space();
  size_t dims = space.dims();

  std::vector<Vec> xs;
  Vec ys;  // log objectives
  auto record = [&](const Vec& u, double obj) {
    xs.push_back(u);
    ys.push_back(std::log(std::max(obj, 1e-6)));
  };

  // Defaults + maximin LHS bootstrap.
  {
    Configuration defaults = space.DefaultConfiguration();
    auto obj = evaluator->Evaluate(defaults);
    if (!obj.ok()) return obj.status();
    record(space.ToUnitVector(defaults), *obj);
  }
  std::vector<Vec> design =
      MaximinLatinHypercube(options_.initial_design, dims, 16, rng);
  for (const Vec& u : design) {
    if (evaluator->Exhausted()) break;
    auto obj = evaluator->Evaluate(space.FromUnitVector(u));
    if (!obj.ok()) {
      if (obj.status().code() == StatusCode::kResourceExhausted) break;
      return obj.status();
    }
    record(u, *obj);
  }

  // Bayesian optimization loop.
  size_t bo_iters = 0;
  size_t aborts = 0;
  size_t model_failures = 0;
  double last_acq = 0.0;
  AcquisitionWorkspace ws;
  while (!evaluator->Exhausted()) {
    GaussianProcess gp(GpHyperParams{options_.kernel, {}, 1.0, 1e-4});
    Status fit = gp.FitWithHyperSearch(xs, ys, options_.gp_hyper_budget, rng);
    Vec next;
    if (fit.ok()) {
      model_failures = 0;
      next = ProposeCandidate(gp, options_, xs, ys, dims, rng, &ws, &last_acq);
    } else {
      // Degenerate GP (e.g. constant responses): one-off failures fall back
      // to a random draw, which usually adds enough diversity to recover.
      // Persistent failures mean the observations themselves are poisoned
      // (NaN objectives, duplicated designs) and no amount of random
      // sampling inside this loop repairs the surrogate — escalate so a
      // supervision layer can fail over.
      if (++model_failures >= kMaxConsecutiveModelFailures) return fit;
      next.resize(dims);
      for (double& x : next) x = rng->Uniform();
    }
    Result<double> obj = Status::Internal("unset");
    bool aborted = false;
    if (options_.early_abort_factor > 0.0 && evaluator->best() != nullptr) {
      obj = evaluator->EvaluateWithEarlyAbort(
          space.FromUnitVector(next),
          options_.early_abort_factor * evaluator->best()->objective,
          &aborted);
      if (aborted) ++aborts;
    } else {
      obj = evaluator->Evaluate(space.FromUnitVector(next));
    }
    if (!obj.ok()) {
      if (obj.status().code() == StatusCode::kResourceExhausted) break;
      return obj.status();
    }
    // Censored observations still enter the surrogate: the lower bound is
    // enough for the GP to steer away from the region.
    record(next, *obj);
    ++bo_iters;
  }
  report_ = StrFormat(
      "LHS design %zu + %zu GP/%s iterations (%zu early-aborted, final acq "
      "%.4f, %zu obs)",
      design.size(), bo_iters, options_.acquisition.c_str(), aborts, last_acq,
      xs.size());
  return Status::OK();
}

Status ITunedTuner::TuneBatch(Evaluator* evaluator, Rng* rng) {
  const ParameterSpace& space = evaluator->space();
  size_t dims = space.dims();
  size_t parallelism = options_.parallelism;

  std::vector<Vec> xs;
  Vec ys;  // log objectives
  auto record = [&](const Vec& u, double obj) {
    xs.push_back(u);
    ys.push_back(std::log(std::max(obj, 1e-6)));
  };

  // Defaults, then the LHS bootstrap dispatched `parallelism` at a time —
  // the design is fixed up front, so batching it is pure chunking.
  {
    Configuration defaults = space.DefaultConfiguration();
    auto obj = evaluator->Evaluate(defaults);
    if (!obj.ok()) return obj.status();
    record(space.ToUnitVector(defaults), *obj);
  }
  std::vector<Vec> design =
      MaximinLatinHypercube(options_.initial_design, dims, 16, rng);
  for (size_t start = 0; start < design.size() && !evaluator->Exhausted();
       start += parallelism) {
    size_t end = std::min(design.size(), start + parallelism);
    std::vector<Configuration> batch;
    batch.reserve(end - start);
    for (size_t i = start; i < end; ++i) {
      batch.push_back(space.FromUnitVector(design[i]));
    }
    auto objs = evaluator->EvaluateBatch(batch, parallelism);
    if (!objs.ok()) {
      if (objs.status().code() == StatusCode::kResourceExhausted) break;
      return objs.status();
    }
    for (size_t i = 0; i < objs->size(); ++i) record(design[start + i], (*objs)[i]);
  }

  // Batched Bayesian optimization: each round fits one GP (hyper search on
  // the evaluator's pool), then picks k candidates with the constant-liar
  // heuristic — after each pick, pretend the point observed the incumbent
  // best ("lie"), absorb it into the GP incrementally (AddObservation,
  // O(n²)), and re-run the acquisition so the k proposals repel each other.
  ThreadPool* pool = evaluator->thread_pool(parallelism);
  size_t bo_rounds = 0;
  size_t proposed = 0;
  size_t model_failures = 0;
  double last_acq = 0.0;
  AcquisitionWorkspace ws;
  while (!evaluator->Exhausted()) {
    size_t affordable = static_cast<size_t>(
        std::max(0.0, evaluator->Remaining() + 1e-9));
    size_t k = std::min(parallelism, affordable);
    if (k == 0) break;
    GaussianProcess gp(GpHyperParams{options_.kernel, {}, 1.0, 1e-4});
    Status fit =
        gp.FitWithHyperSearch(xs, ys, options_.gp_hyper_budget, rng, pool);
    std::vector<Vec> proposals;
    std::vector<Configuration> batch;
    proposals.reserve(k);
    batch.reserve(k);
    if (fit.ok()) {
      model_failures = 0;
      double lie = *std::min_element(ys.begin(), ys.end());
      std::vector<Vec> lie_xs = xs;
      Vec lie_ys = ys;
      for (size_t j = 0; j < k; ++j) {
        Vec cand = ProposeCandidate(gp, options_, lie_xs, lie_ys, dims, rng,
                                    &ws, &last_acq);
        batch.push_back(space.FromUnitVector(cand));
        if (j + 1 < k) {
          // Liar update; a degenerate append falls back to a full refit
          // inside AddObservation, so the status is advisory only.
          (void)gp.AddObservation(cand, lie);
          lie_xs.push_back(cand);
          lie_ys.push_back(lie);
        }
        proposals.push_back(std::move(cand));
      }
    } else {
      // Degenerate GP: random fallback for one-off failures, escalate when
      // persistent (see the serial loop for rationale).
      if (++model_failures >= kMaxConsecutiveModelFailures) return fit;
      for (size_t j = 0; j < k; ++j) {
        Vec cand(dims);
        for (double& x : cand) x = rng->Uniform();
        batch.push_back(space.FromUnitVector(cand));
        proposals.push_back(std::move(cand));
      }
    }
    auto objs = evaluator->EvaluateBatch(batch, parallelism);
    if (!objs.ok()) {
      if (objs.status().code() == StatusCode::kResourceExhausted) break;
      return objs.status();
    }
    for (size_t i = 0; i < objs->size(); ++i) record(proposals[i], (*objs)[i]);
    proposed += objs->size();
    ++bo_rounds;
  }
  report_ = StrFormat(
      "LHS design %zu + %zu constant-liar rounds of %zu (%zu proposals, "
      "final acq %.4f, %zu obs)",
      design.size(), bo_rounds, parallelism, proposed, last_acq, xs.size());
  return Status::OK();
}

}  // namespace atune
