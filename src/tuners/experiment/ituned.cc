#include "tuners/experiment/ituned.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/string_util.h"
#include "math/sampling.h"
#include "ml/acquisition.h"

namespace atune {

Status ITunedTuner::Tune(Evaluator* evaluator, Rng* rng) {
  const ParameterSpace& space = evaluator->space();
  size_t dims = space.dims();

  std::vector<Vec> xs;
  Vec ys;  // log objectives
  auto record = [&](const Vec& u, double obj) {
    xs.push_back(u);
    ys.push_back(std::log(std::max(obj, 1e-6)));
  };

  // Defaults + maximin LHS bootstrap.
  {
    Configuration defaults = space.DefaultConfiguration();
    auto obj = evaluator->Evaluate(defaults);
    if (!obj.ok()) return obj.status();
    record(space.ToUnitVector(defaults), *obj);
  }
  std::vector<Vec> design =
      MaximinLatinHypercube(options_.initial_design, dims, 16, rng);
  for (const Vec& u : design) {
    if (evaluator->Exhausted()) break;
    auto obj = evaluator->Evaluate(space.FromUnitVector(u));
    if (!obj.ok()) {
      if (obj.status().code() == StatusCode::kResourceExhausted) break;
      return obj.status();
    }
    record(u, *obj);
  }

  // Bayesian optimization loop.
  size_t bo_iters = 0;
  size_t aborts = 0;
  double last_acq = 0.0;
  while (!evaluator->Exhausted()) {
    GaussianProcess gp(GpHyperParams{options_.kernel, {}, 1.0, 1e-4});
    Status fit = gp.FitWithHyperSearch(xs, ys, options_.gp_hyper_budget, rng);
    Vec next;
    if (fit.ok()) {
      double best_log = *std::min_element(ys.begin(), ys.end());
      double best_acq = -std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < options_.acquisition_candidates; ++i) {
        Vec cand(dims);
        if (i % 3 == 0 && !xs.empty()) {
          // A third of candidates perturb the incumbent (local refinement).
          const Vec& inc = xs[static_cast<size_t>(
              std::min_element(ys.begin(), ys.end()) - ys.begin())];
          for (size_t d = 0; d < dims; ++d) {
            cand[d] = std::clamp(inc[d] + rng->Normal(0.0, 0.08), 0.0, 1.0);
          }
        } else {
          for (double& x : cand) x = rng->Uniform();
        }
        GpPrediction pred = gp.Predict(cand);
        double acq;
        if (options_.acquisition == "pi") {
          acq = ProbabilityOfImprovement(pred, best_log);
        } else if (options_.acquisition == "lcb") {
          acq = LowerConfidenceBound(pred);
        } else {
          acq = ExpectedImprovement(pred, best_log);
        }
        if (acq > best_acq) {
          best_acq = acq;
          next = std::move(cand);
        }
      }
      last_acq = best_acq;
    } else {
      // Degenerate GP (e.g. constant responses): fall back to random.
      next.resize(dims);
      for (double& x : next) x = rng->Uniform();
    }
    Result<double> obj = Status::Internal("unset");
    bool aborted = false;
    if (options_.early_abort_factor > 0.0 && evaluator->best() != nullptr) {
      obj = evaluator->EvaluateWithEarlyAbort(
          space.FromUnitVector(next),
          options_.early_abort_factor * evaluator->best()->objective,
          &aborted);
      if (aborted) ++aborts;
    } else {
      obj = evaluator->Evaluate(space.FromUnitVector(next));
    }
    if (!obj.ok()) {
      if (obj.status().code() == StatusCode::kResourceExhausted) break;
      return obj.status();
    }
    // Censored observations still enter the surrogate: the lower bound is
    // enough for the GP to steer away from the region.
    record(next, *obj);
    ++bo_iters;
  }
  report_ = StrFormat(
      "LHS design %zu + %zu GP/%s iterations (%zu early-aborted, final acq "
      "%.4f, %zu obs)",
      design.size(), bo_iters, options_.acquisition.c_str(), aborts, last_acq,
      xs.size());
  return Status::OK();
}

}  // namespace atune
