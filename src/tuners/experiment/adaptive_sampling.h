#ifndef ATUNE_TUNERS_EXPERIMENT_ADAPTIVE_SAMPLING_H_
#define ATUNE_TUNERS_EXPERIMENT_ADAPTIVE_SAMPLING_H_

#include <string>

#include "core/tuner.h"

namespace atune {

/// Adaptive sampling in the spirit of Babu et al. [HotOS'09]
/// ("Automated experiment-driven management of (database) systems"):
/// bootstrap with a space-filling design, then choose each next experiment
/// to balance *exploitation* (sample near the incumbent) against
/// *exploration* (sample far from everything tried), without building a
/// global surrogate model. The explore probability decays as the budget is
/// spent.
class AdaptiveSamplingTuner : public Tuner {
 public:
  AdaptiveSamplingTuner(size_t bootstrap = 6, double explore_start = 0.6)
      : bootstrap_(bootstrap), explore_start_(explore_start) {}

  std::string name() const override { return "adaptive-sampling"; }
  TunerCategory category() const override {
    return TunerCategory::kExperimentDriven;
  }
  Status Tune(Evaluator* evaluator, Rng* rng) override;
  std::string Report() const override { return report_; }

 private:
  size_t bootstrap_;
  double explore_start_;
  std::string report_;
};

}  // namespace atune

#endif  // ATUNE_TUNERS_EXPERIMENT_ADAPTIVE_SAMPLING_H_
