#include "tuners/experiment/search_baselines.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "math/sampling.h"

namespace atune {

Status RandomSearchTuner::Tune(Evaluator* evaluator, Rng* rng) {
  const ParameterSpace& space = evaluator->space();
  size_t runs = 0;
  // Always measure the defaults first: a sane incumbent.
  auto first = evaluator->Evaluate(space.DefaultConfiguration());
  if (!first.ok()) return first.status();
  ++runs;
  while (!evaluator->Exhausted()) {
    auto obj = evaluator->Evaluate(space.RandomConfiguration(rng));
    if (!obj.ok()) {
      if (obj.status().code() == StatusCode::kResourceExhausted) break;
      return obj.status();
    }
    ++runs;
  }
  report_ = StrFormat("%zu uniform random evaluations", runs);
  return Status::OK();
}

Status GridSearchTuner::Tune(Evaluator* evaluator, Rng* rng) {
  (void)rng;
  const ParameterSpace& space = evaluator->space();
  size_t dims = space.dims();
  size_t budget = evaluator->budget().max_evaluations;
  // Lattice points via Halton, snapped to `levels_` levels per dimension:
  // a budget-bounded stand-in for the exponential full grid.
  std::vector<Vec> points = HaltonSamples(budget, dims);
  double denom = static_cast<double>(std::max<size_t>(levels_, 2) - 1);
  size_t runs = 0;
  for (Vec& p : points) {
    for (double& x : p) {
      x = std::round(x * denom) / denom;
    }
    if (evaluator->Exhausted()) break;
    auto obj = evaluator->Evaluate(space.FromUnitVector(p));
    if (!obj.ok()) {
      if (obj.status().code() == StatusCode::kResourceExhausted) break;
      return obj.status();
    }
    ++runs;
  }
  report_ = StrFormat("%zu lattice points at %zu levels/dim over %zu dims",
                      runs, levels_, dims);
  return Status::OK();
}

Status RecursiveRandomSearchTuner::Tune(Evaluator* evaluator, Rng* rng) {
  const ParameterSpace& space = evaluator->space();
  size_t dims = space.dims();

  auto first = evaluator->Evaluate(space.DefaultConfiguration());
  if (!first.ok()) return first.status();

  Vec center(dims, 0.5);
  double radius = 0.5;  // full cube
  double best_obj = *first;
  Vec best_center = space.ToUnitVector(space.DefaultConfiguration());
  size_t restarts = 0, shrinks = 0;

  while (!evaluator->Exhausted()) {
    // Sample `per_region_` points in the current box around the incumbent.
    bool improved = false;
    for (size_t i = 0; i < per_region_ && !evaluator->Exhausted(); ++i) {
      Vec u(dims);
      for (size_t d = 0; d < dims; ++d) {
        double lo = std::max(0.0, center[d] - radius);
        double hi = std::min(1.0, center[d] + radius);
        u[d] = rng->Uniform(lo, hi);
      }
      auto obj = evaluator->Evaluate(space.FromUnitVector(u));
      if (!obj.ok()) {
        if (obj.status().code() == StatusCode::kResourceExhausted) break;
        return obj.status();
      }
      if (*obj < best_obj) {
        best_obj = *obj;
        best_center = u;
        improved = true;
      }
    }
    if (improved) {
      center = best_center;
      radius *= shrink_;
      ++shrinks;
    } else if (radius > 0.05) {
      radius *= shrink_;
      ++shrinks;
    } else {
      // Region exhausted: restart globally.
      center.assign(dims, 0.5);
      radius = 0.5;
      ++restarts;
    }
  }
  report_ = StrFormat("%zu shrink steps, %zu global restarts, final best %.2f",
                      shrinks, restarts, best_obj);
  return Status::OK();
}

}  // namespace atune
