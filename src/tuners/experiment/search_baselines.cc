#include "tuners/experiment/search_baselines.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "math/sampling.h"

namespace atune {

Status RandomSearchTuner::Tune(Evaluator* evaluator, Rng* rng) {
  const ParameterSpace& space = evaluator->space();
  size_t runs = 0;
  // Always measure the defaults first: a sane incumbent.
  auto first = evaluator->Evaluate(space.DefaultConfiguration());
  if (!first.ok()) return first.status();
  ++runs;
  if (parallelism_ <= 1) {
    while (!evaluator->Exhausted()) {
      auto obj = evaluator->Evaluate(space.RandomConfiguration(rng));
      if (!obj.ok()) {
        if (obj.status().code() == StatusCode::kResourceExhausted) break;
        return obj.status();
      }
      ++runs;
    }
    report_ = StrFormat("%zu uniform random evaluations", runs);
    return Status::OK();
  }
  // Batch mode: draw the same configurations in the same rng order as the
  // serial loop, `parallelism_` at a time. A truncated final batch draws a
  // few extra configs from the rng, but those correspond exactly to the
  // proposals the serial loop would never get to evaluate.
  size_t rounds = 0;
  while (!evaluator->Exhausted()) {
    std::vector<Configuration> batch;
    batch.reserve(parallelism_);
    for (size_t i = 0; i < parallelism_; ++i) {
      batch.push_back(space.RandomConfiguration(rng));
    }
    auto objs = evaluator->EvaluateBatch(batch, parallelism_);
    if (!objs.ok()) {
      if (objs.status().code() == StatusCode::kResourceExhausted) break;
      return objs.status();
    }
    runs += objs->size();
    ++rounds;
  }
  report_ = StrFormat("%zu uniform random evaluations in %zu rounds of %zu",
                      runs, rounds, parallelism_);
  return Status::OK();
}

Status GridSearchTuner::Tune(Evaluator* evaluator, Rng* rng) {
  (void)rng;
  const ParameterSpace& space = evaluator->space();
  size_t dims = space.dims();
  size_t budget = evaluator->budget().max_evaluations;
  // Lattice points via Halton, snapped to `levels_` levels per dimension:
  // a budget-bounded stand-in for the exponential full grid.
  std::vector<Vec> points = HaltonSamples(budget, dims);
  double denom = static_cast<double>(std::max<size_t>(levels_, 2) - 1);
  for (Vec& p : points) {
    for (double& x : p) {
      x = std::round(x * denom) / denom;
    }
  }
  size_t runs = 0;
  if (parallelism_ <= 1) {
    for (const Vec& p : points) {
      if (evaluator->Exhausted()) break;
      auto obj = evaluator->Evaluate(space.FromUnitVector(p));
      if (!obj.ok()) {
        if (obj.status().code() == StatusCode::kResourceExhausted) break;
        return obj.status();
      }
      ++runs;
    }
  } else {
    // Batch mode: the lattice is precomputed, so batching is pure chunking —
    // identical evaluation order to the serial sweep.
    for (size_t start = 0; start < points.size() && !evaluator->Exhausted();
         start += parallelism_) {
      size_t end = std::min(points.size(), start + parallelism_);
      std::vector<Configuration> batch;
      batch.reserve(end - start);
      for (size_t i = start; i < end; ++i) {
        batch.push_back(space.FromUnitVector(points[i]));
      }
      auto objs = evaluator->EvaluateBatch(batch, parallelism_);
      if (!objs.ok()) {
        if (objs.status().code() == StatusCode::kResourceExhausted) break;
        return objs.status();
      }
      runs += objs->size();
    }
  }
  report_ = StrFormat("%zu lattice points at %zu levels/dim over %zu dims",
                      runs, levels_, dims);
  return Status::OK();
}

Status RecursiveRandomSearchTuner::Tune(Evaluator* evaluator, Rng* rng) {
  const ParameterSpace& space = evaluator->space();
  size_t dims = space.dims();

  auto first = evaluator->Evaluate(space.DefaultConfiguration());
  if (!first.ok()) return first.status();

  Vec center(dims, 0.5);
  double radius = 0.5;  // full cube
  double best_obj = *first;
  Vec best_center = space.ToUnitVector(space.DefaultConfiguration());
  size_t restarts = 0, shrinks = 0;

  while (!evaluator->Exhausted()) {
    // Sample `per_region_` points in the current box around the incumbent.
    // In batch mode the region's samples are drawn up front (same rng order
    // as the serial loop) and evaluated `parallelism_` at a time; the
    // incumbent only moves after the whole region anyway, so batching does
    // not change which configurations get proposed.
    bool improved = false;
    if (parallelism_ > 1) {
      std::vector<Vec> us(per_region_);
      std::vector<Configuration> configs;
      configs.reserve(per_region_);
      for (Vec& u : us) {
        u.resize(dims);
        for (size_t d = 0; d < dims; ++d) {
          double lo = std::max(0.0, center[d] - radius);
          double hi = std::min(1.0, center[d] + radius);
          u[d] = rng->Uniform(lo, hi);
        }
        configs.push_back(space.FromUnitVector(u));
      }
      for (size_t start = 0; start < configs.size() && !evaluator->Exhausted();
           start += parallelism_) {
        size_t end = std::min(configs.size(), start + parallelism_);
        std::vector<Configuration> batch(configs.begin() + start,
                                         configs.begin() + end);
        auto objs = evaluator->EvaluateBatch(batch, parallelism_);
        if (!objs.ok()) {
          if (objs.status().code() == StatusCode::kResourceExhausted) break;
          return objs.status();
        }
        for (size_t i = 0; i < objs->size(); ++i) {
          if ((*objs)[i] < best_obj) {
            best_obj = (*objs)[i];
            best_center = us[start + i];
            improved = true;
          }
        }
      }
    } else {
      for (size_t i = 0; i < per_region_ && !evaluator->Exhausted(); ++i) {
        Vec u(dims);
        for (size_t d = 0; d < dims; ++d) {
          double lo = std::max(0.0, center[d] - radius);
          double hi = std::min(1.0, center[d] + radius);
          u[d] = rng->Uniform(lo, hi);
        }
        auto obj = evaluator->Evaluate(space.FromUnitVector(u));
        if (!obj.ok()) {
          if (obj.status().code() == StatusCode::kResourceExhausted) break;
          return obj.status();
        }
        if (*obj < best_obj) {
          best_obj = *obj;
          best_center = u;
          improved = true;
        }
      }
    }
    if (improved) {
      center = best_center;
      radius *= shrink_;
      ++shrinks;
    } else if (radius > 0.05) {
      radius *= shrink_;
      ++shrinks;
    } else {
      // Region exhausted: restart globally.
      center.assign(dims, 0.5);
      radius = 0.5;
      ++restarts;
    }
  }
  report_ = StrFormat("%zu shrink steps, %zu global restarts, final best %.2f",
                      shrinks, restarts, best_obj);
  return Status::OK();
}

}  // namespace atune
