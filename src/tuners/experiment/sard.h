#ifndef ATUNE_TUNERS_EXPERIMENT_SARD_H_
#define ATUNE_TUNERS_EXPERIMENT_SARD_H_

#include <string>
#include <vector>

#include "core/tuner.h"

namespace atune {

/// SARD [Debnath et al., ICDE SMDB'08]: a Statistical Approach for Ranking
/// Database tuning parameters. Runs a Plackett–Burman two-level screening
/// design (each parameter at a "low" and "high" unit level), computes main
/// effects, and ranks parameters by effect magnitude — separating the vital
/// few knobs from the trivial many with only O(#params) experiments.
///
/// After ranking, the remaining budget greedily line-searches the top-k
/// parameters (SARD itself stops at the ranking; the refinement makes it a
/// usable tuner and mirrors how SARD is applied in practice).
class SardTuner : public Tuner {
 public:
  SardTuner(double low_level = 0.15, double high_level = 0.85,
            size_t refine_top_k = 4, bool foldover = true)
      : low_(low_level),
        high_(high_level),
        refine_top_k_(refine_top_k),
        foldover_(foldover) {}

  std::string name() const override { return "sard"; }
  TunerCategory category() const override {
    return TunerCategory::kExperimentDriven;
  }
  Status Tune(Evaluator* evaluator, Rng* rng) override;
  std::string Report() const override { return report_; }

  /// Parameter names ranked by |main effect| (after Tune), strongest first.
  const std::vector<std::string>& ranking() const { return ranking_; }
  /// Main effect per parameter, in space order (after Tune).
  const std::vector<double>& effects() const { return effects_; }

 private:
  double low_;
  double high_;
  size_t refine_top_k_;
  bool foldover_;
  std::vector<std::string> ranking_;
  std::vector<double> effects_;
  std::string report_;
};

}  // namespace atune

#endif  // ATUNE_TUNERS_EXPERIMENT_SARD_H_
