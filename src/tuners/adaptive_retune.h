#ifndef ATUNE_TUNERS_ADAPTIVE_RETUNE_H_
#define ATUNE_TUNERS_ADAPTIVE_RETUNE_H_

#include <memory>
#include <string>

#include "core/drift_detector.h"
#include "core/registry.h"
#include "core/tuner.h"
#include "ml/gaussian_process.h"

namespace atune {

/// Knobs for the drift-adaptive re-tune decorator (DESIGN.md §15).
struct AdaptiveRetuneOptions {
  /// Fraction of the session budget leased to the initial tuning phase;
  /// the remainder funds serving, re-probes, and re-tunes.
  double explore_fraction = 0.5;
  /// Historic configurations re-measured by a stage-1 degradation episode.
  size_t reprobe_top_k = 3;
  /// Fraction of the *original* session budget leased per stage-2 full
  /// re-tune episode.
  double retune_fraction = 0.25;
  /// Hard cap on stage-2 episodes: a drift storm can fire the detector
  /// every few trials, but at most max_retunes full re-tunes are funded —
  /// further firings fall back to the free recent-best recovery, so budget
  /// can never leak.
  size_t max_retunes = 2;
  /// Surrogate observations retained by the stage-1 eviction
  /// (GaussianProcess::EvictOldest).
  size_t gp_keep_window = 8;
  /// Unit-space sigma of the serve-loop probes: serving re-measures the
  /// incumbent's immediate neighborhood instead of the identical point, so
  /// the proposal stream composes with SupervisedTuner's duplicate-livelock
  /// breaker and keeps feeding the surrogate local information. 0 serves
  /// the exact incumbent every round.
  double serve_sigma = 0.02;
  DriftDetectorOptions detector;
};

/// What the decorator did during one Tune() (mirrored into the `drift.*`
/// metrics when a registry is installed).
struct AdaptiveRetuneStats {
  size_t detections = 0;           ///< detector firings
  size_t reprobes = 0;             ///< stage-1 episodes
  size_t retunes = 0;              ///< stage-2 full re-tune episodes
  size_t retunes_suppressed = 0;   ///< firings past the max_retunes cap
  size_t evicted_observations = 0; ///< surrogate points evicted (stage 1)
  size_t incumbent_switches = 0;   ///< times serving switched configuration
};

/// Registry decorator that turns any one-shot tuner into a drift-robust
/// tune-serve-adapt loop (DESIGN.md §15):
///
///   1. *Tune*: a fresh inner tuner runs under a budget lease
///      (explore_fraction of the session budget).
///   2. *Serve*: the remaining budget re-measures the incumbent (with a
///      small deterministic exploration jitter) while a Page–Hinkley
///      detector watches the committed objective stream.
///   3. *Adapt*: on detection, degradation is staged — cheapest first:
///        stage 1  evict stale surrogate observations
///                 (GaussianProcess::EvictOldest) and re-probe the best
///                 historic configurations under a small lease;
///        stage 2  full re-tune with a fresh inner tuner under a bounded
///                 lease — entered when the re-probe fails to beat the
///                 triggering observation (same episode: a post-drift
///                 stream that settles at the degraded level would never
///                 fire again) or on a repeat firing before recovery;
///        capped   past max_retunes, firings only re-select the incumbent
///                 from recent trials — zero additional spend.
///
/// Replay determinism: every measurement flows through the Evaluator (and
/// therefore the journal); the detector and all staging decisions are pure
/// functions of the committed objective sequence plus the session Rng
/// stream, so a killed/resumed session reconstructs identical detection
/// rounds and re-tune decisions with no new journal record types. Composes
/// under SupervisedTuner and over WarmStartTuner like any registry tuner.
class AdaptiveRetuneTuner : public Tuner {
 public:
  /// `inner_factory` must return a fresh tuner per call (each re-tune
  /// episode gets one); `inner_name` labels reports.
  AdaptiveRetuneTuner(TunerFactory inner_factory, std::string inner_name,
                      AdaptiveRetuneOptions options = AdaptiveRetuneOptions());

  std::string name() const override { return "adaptive-retune:" + inner_name_; }
  TunerCategory category() const override { return TunerCategory::kAdaptive; }
  Status Tune(Evaluator* evaluator, Rng* rng) override;
  void set_parallelism(size_t parallelism) override {
    parallelism_ = parallelism;
  }
  std::string Report() const override;

  /// Counters from the last Tune() call.
  const AdaptiveRetuneStats& stats() const { return stats_; }

 private:
  /// Re-selects the incumbent as the lowest-objective unscaled trial in
  /// history[from..); returns false when the window holds none.
  bool PickIncumbent(Evaluator* evaluator, size_t from);
  /// Feeds trials committed since the last call into the surrogate.
  void FeedSurrogate(Evaluator* evaluator);
  /// Dispatches one detector firing to the degradation ladder.
  Status HandleDrift(Evaluator* evaluator, Rng* rng, double trigger_objective);
  /// Stage 1: surrogate eviction + leased re-probe of historic bests.
  Status Reprobe(Evaluator* evaluator, double trigger_objective);
  /// Stage 2: leased full re-tune with a fresh inner tuner.
  Status Retune(Evaluator* evaluator, Rng* rng);
  /// Free recovery past the re-tune cap: best of the recent window.
  void RecoverFromRecent(Evaluator* evaluator);
  void RebaselineDetector();
  /// True for statuses that end a leased phase without failing the session.
  static bool IsBudgetStop(const Status& status);

  TunerFactory inner_factory_;
  std::string inner_name_;
  AdaptiveRetuneOptions options_;
  size_t parallelism_ = 1;

  DriftDetector detector_;
  GaussianProcess surrogate_;
  size_t surrogate_fed_ = 0;  ///< history watermark of surrogate feeding
  Configuration incumbent_;
  double incumbent_objective_ = 0.0;
  bool has_incumbent_ = false;
  size_t stage_ = 0;          ///< 0 = steady, 1 = stage-1 tried, unrecovered
  size_t retunes_done_ = 0;
  double session_budget_ = 0.0;
  AdaptiveRetuneStats stats_;
  std::string last_inner_report_;
};

/// Creates `tuner_name` from `registry` wrapped in an AdaptiveRetuneTuner
/// (the CLI's --adaptive path). The registry reference must outlive the
/// returned tuner (re-tune episodes create fresh inner instances from it).
Result<std::unique_ptr<Tuner>> MakeAdaptiveRetuneTuner(
    const TunerRegistry& registry, const std::string& tuner_name,
    AdaptiveRetuneOptions options = AdaptiveRetuneOptions());

}  // namespace atune

#endif  // ATUNE_TUNERS_ADAPTIVE_RETUNE_H_
