#include "tuners/adaptive_retune.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace atune {

namespace {

Counter* DriftCounter(const char* name) {
  MetricsRegistry* metrics = CurrentMetrics();
  return metrics != nullptr ? metrics->GetCounter(name) : nullptr;
}

void Bump(const char* name, uint64_t n = 1) {
  if (Counter* c = DriftCounter(name)) c->Increment(n);
}

double LogObjective(double objective) {
  return std::log(std::max(objective, 1e-12));
}

}  // namespace

AdaptiveRetuneTuner::AdaptiveRetuneTuner(TunerFactory inner_factory,
                                         std::string inner_name,
                                         AdaptiveRetuneOptions options)
    : inner_factory_(std::move(inner_factory)),
      inner_name_(std::move(inner_name)),
      options_(options),
      detector_(options.detector) {
  if (options_.reprobe_top_k == 0) options_.reprobe_top_k = 1;
}

bool AdaptiveRetuneTuner::IsBudgetStop(const Status& status) {
  return status.code() == StatusCode::kResourceExhausted ||
         status.code() == StatusCode::kAborted;
}

bool AdaptiveRetuneTuner::PickIncumbent(Evaluator* evaluator, size_t from) {
  const std::vector<Trial>& history = evaluator->history();
  bool found = false;
  double best = 0.0;
  size_t best_index = 0;
  for (size_t i = from; i < history.size(); ++i) {
    const Trial& t = history[i];
    if (t.scaled) continue;  // sampled/censored objectives are incomparable
    if (!found || t.objective < best) {
      found = true;
      best = t.objective;
      best_index = i;
    }
  }
  if (!found) return false;
  const Configuration& config = history[best_index].config;
  if (!has_incumbent_ || !(config == incumbent_)) {
    ++stats_.incumbent_switches;
    Bump("drift.incumbent_switches");
  }
  incumbent_ = config;
  incumbent_objective_ = best;
  has_incumbent_ = true;
  return true;
}

void AdaptiveRetuneTuner::FeedSurrogate(Evaluator* evaluator) {
  const std::vector<Trial>& history = evaluator->history();
  const ParameterSpace& space = evaluator->space();
  for (; surrogate_fed_ < history.size(); ++surrogate_fed_) {
    const Trial& t = history[surrogate_fed_];
    if (t.scaled) continue;
    // A degenerate incremental refit leaves the surrogate unfitted; the
    // ranking below then falls back to historic objectives, so surrogate
    // trouble can never fail the session.
    (void)surrogate_.AddObservation(space.ToUnitVector(t.config),
                                    LogObjective(t.objective));
  }
}

Status AdaptiveRetuneTuner::Tune(Evaluator* evaluator, Rng* rng) {
  stats_ = AdaptiveRetuneStats();
  detector_ = DriftDetector(options_.detector);
  surrogate_ = GaussianProcess();
  surrogate_fed_ = evaluator->history().size();
  has_incumbent_ = false;
  stage_ = 0;
  retunes_done_ = 0;
  last_inner_report_.clear();
  session_budget_ = evaluator->Remaining();
  if (evaluator->Exhausted()) return Status::OK();

  // Phase 1: initial tune under a lease so serving/adaptation is funded.
  const size_t initial_mark = evaluator->history().size();
  {
    std::unique_ptr<Tuner> inner = inner_factory_();
    if (inner == nullptr) {
      return Status::Internal("adaptive-retune: inner factory returned null");
    }
    inner->set_parallelism(parallelism_);
    evaluator->SetLease(
        std::max(1.0, options_.explore_fraction * session_budget_));
    Status status = inner->Tune(evaluator, rng);
    evaluator->ClearLease();
    last_inner_report_ = inner->Report();
    if (!status.ok() && !IsBudgetStop(status)) return status;
  }
  if (!PickIncumbent(evaluator, initial_mark)) return Status::OK();
  FeedSurrogate(evaluator);

  // Phase 2: serve the incumbent and watch the objective stream. The
  // detector sees exactly the serve-probe objectives, in commit order — a
  // pure function of the journaled trial sequence, so a resumed session
  // recomputes identical firings.
  while (!evaluator->Exhausted()) {
    const Configuration probe =
        options_.serve_sigma > 0.0
            ? evaluator->space().Neighbor(incumbent_, options_.serve_sigma, rng)
            : incumbent_;
    auto objective = evaluator->Evaluate(probe);
    if (!objective.ok()) {
      if (IsBudgetStop(objective.status())) break;
      return objective.status();
    }
    FeedSurrogate(evaluator);
    if (*objective < incumbent_objective_ &&
        !evaluator->history().empty()) {
      // A lucky neighbor beat the incumbent: adopt it (cheap hill climb).
      const Trial& last = evaluator->history().back();
      if (!(last.config == incumbent_)) {
        ++stats_.incumbent_switches;
        Bump("drift.incumbent_switches");
      }
      incumbent_ = last.config;
      incumbent_objective_ = *objective;
    }
    if (detector_.Observe(*objective)) {
      ++stats_.detections;
      Bump("drift.detections");
      Status status = HandleDrift(evaluator, rng, *objective);
      if (!status.ok()) return status;
    }
  }
  return Status::OK();
}

Status AdaptiveRetuneTuner::HandleDrift(Evaluator* evaluator, Rng* rng,
                                        double trigger_objective) {
  ScopedSpan span(CurrentTracer(), "drift_detect");
  if (span.active()) {
    span.AddArg("trial", std::to_string(evaluator->history().size()));
    span.AddArg("stage", std::to_string(stage_ + 1));
  }
  if (stage_ == 0) {
    stage_ = 1;
    Status status = Reprobe(evaluator, trigger_objective);
    if (!status.ok() || stage_ == 0) return status;  // re-probe recovered
    // The re-probe could not beat the trigger, and a post-drift stream that
    // settles at the degraded level (a stationary disaster) will never fire
    // the detector again — escalate within the same episode instead of
    // stranding the ladder at stage 1.
  }
  if (retunes_done_ < options_.max_retunes) {
    return Retune(evaluator, rng);
  }
  // Re-tune budget cap reached: the storm keeps firing but spending stops.
  ++stats_.retunes_suppressed;
  Bump("drift.retunes_suppressed");
  RecoverFromRecent(evaluator);
  return Status::OK();
}

Status AdaptiveRetuneTuner::Reprobe(Evaluator* evaluator,
                                    double trigger_objective) {
  ++stats_.reprobes;
  Bump("drift.reprobes");
  const ParameterSpace& space = evaluator->space();

  // Stage 1a: evict pre-drift observations from the surrogate; what
  // remains is the freshest window, which is the only evidence about the
  // post-drift response surface.
  const size_t evicted = surrogate_.EvictOldest(options_.gp_keep_window);
  stats_.evicted_observations += evicted;
  Bump("drift.evicted_observations", evicted);

  // Stage 1b: rank the distinct historic configurations — by the evicted
  // (post-drift) surrogate's predicted mean when it is usable, by their
  // historic objective otherwise — and re-measure the top k under a lease.
  const std::vector<Trial>& history = evaluator->history();
  std::vector<std::pair<double, size_t>> ranked;  // (score, history index)
  std::vector<Configuration> seen;
  for (size_t i = 0; i < history.size(); ++i) {
    const Trial& t = history[i];
    if (t.scaled || t.result.failed) continue;
    bool duplicate = false;
    for (const Configuration& c : seen) {
      if (c == t.config) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    seen.push_back(t.config);
    double score = t.objective;
    if (surrogate_.fitted()) {
      score = surrogate_.Predict(space.ToUnitVector(t.config)).mean;
    }
    ranked.emplace_back(score, i);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const std::pair<double, size_t>& a,
               const std::pair<double, size_t>& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;  // deterministic tie-break
            });

  const size_t k = std::min(options_.reprobe_top_k, ranked.size());
  if (k == 0) return Status::OK();
  // Copy the candidates out: Evaluate() grows the history vector, which
  // may reallocate from under the `history` reference above.
  std::vector<Configuration> candidates;
  candidates.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    candidates.push_back(history[ranked[i].second].config);
  }
  evaluator->SetLease(static_cast<double>(k));
  bool found = false;
  double best = 0.0;
  Configuration best_config;
  for (size_t i = 0; i < k && !evaluator->Exhausted(); ++i) {
    auto objective = evaluator->Evaluate(candidates[i]);
    if (!objective.ok()) {
      if (IsBudgetStop(objective.status())) break;
      evaluator->ClearLease();
      return objective.status();
    }
    if (!found || *objective < best) {
      found = true;
      best = *objective;
      best_config = evaluator->history().back().config;
    }
  }
  evaluator->ClearLease();
  FeedSurrogate(evaluator);
  if (!found) return Status::OK();

  if (!(best_config == incumbent_)) {
    ++stats_.incumbent_switches;
    Bump("drift.incumbent_switches");
  }
  incumbent_ = best_config;
  incumbent_objective_ = best;
  // Recovered if a fresh measurement beats the observation that fired the
  // detector; otherwise stay in stage 1 so the next firing escalates.
  if (best < trigger_objective) {
    stage_ = 0;
    RebaselineDetector();
  }
  return Status::OK();
}

Status AdaptiveRetuneTuner::Retune(Evaluator* evaluator, Rng* rng) {
  ScopedSpan span(CurrentTracer(), "retune");
  if (span.active()) {
    span.AddArg("episode", std::to_string(retunes_done_ + 1));
  }
  ++stats_.retunes;
  ++retunes_done_;
  Bump("drift.retunes");

  const size_t mark = evaluator->history().size();
  std::unique_ptr<Tuner> inner = inner_factory_();
  if (inner == nullptr) {
    return Status::Internal("adaptive-retune: inner factory returned null");
  }
  inner->set_parallelism(parallelism_);
  evaluator->SetLease(
      std::max(1.0, options_.retune_fraction * session_budget_));
  Status status = inner->Tune(evaluator, rng);
  evaluator->ClearLease();
  if (!status.ok() && !IsBudgetStop(status)) return status;
  std::string report = inner->Report();
  if (!report.empty()) last_inner_report_ = std::move(report);

  // The pre-drift surrogate is useless after a regime change; restart it
  // on the re-tune window only.
  surrogate_ = GaussianProcess();
  surrogate_fed_ = mark;
  FeedSurrogate(evaluator);
  PickIncumbent(evaluator, mark);  // keep the old incumbent if none landed
  stage_ = 0;
  RebaselineDetector();
  return Status::OK();
}

void AdaptiveRetuneTuner::RecoverFromRecent(Evaluator* evaluator) {
  const size_t n = evaluator->history().size();
  const size_t window = std::max<size_t>(options_.gp_keep_window, 1);
  PickIncumbent(evaluator, n > window ? n - window : 0);
  stage_ = 0;
  RebaselineDetector();
}

void AdaptiveRetuneTuner::RebaselineDetector() {
  // A firing restarts the detector window, and the next observation seeds
  // its running mean — if serving is still degraded when the episode ends,
  // the degraded level would become the new "normal" and a stationary
  // disaster could never fire again. Re-seed the window with the episode's
  // recovered incumbent objective instead: the detector always compares
  // serving against what the ladder believes serving should cost. The seed
  // is a committed measurement, so replay recomputes it identically.
  detector_.Reset();
  if (has_incumbent_) (void)detector_.Observe(incumbent_objective_);
}

std::string AdaptiveRetuneTuner::Report() const {
  std::string report = StrFormat(
      "adaptive-retune: %zu detection(s), %zu reprobe(s), %zu retune(s), "
      "%zu suppressed, %zu surrogate point(s) evicted, %zu incumbent "
      "switch(es)",
      stats_.detections, stats_.reprobes, stats_.retunes,
      stats_.retunes_suppressed, stats_.evicted_observations,
      stats_.incumbent_switches);
  if (!last_inner_report_.empty()) report += "\n" + last_inner_report_;
  return report;
}

Result<std::unique_ptr<Tuner>> MakeAdaptiveRetuneTuner(
    const TunerRegistry& registry, const std::string& tuner_name,
    AdaptiveRetuneOptions options) {
  if (!registry.Contains(tuner_name)) {
    return Status::NotFound(
        StrFormat("adaptive-retune: unknown tuner '%s'", tuner_name.c_str()));
  }
  TunerFactory factory = [&registry, tuner_name]() -> std::unique_ptr<Tuner> {
    auto tuner = registry.Create(tuner_name);
    return tuner.ok() ? std::move(*tuner) : nullptr;
  };
  return std::unique_ptr<Tuner>(new AdaptiveRetuneTuner(
      std::move(factory), tuner_name, options));
}

}  // namespace atune
