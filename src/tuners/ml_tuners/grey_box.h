#ifndef ATUNE_TUNERS_ML_TUNERS_GREY_BOX_H_
#define ATUNE_TUNERS_ML_TUNERS_GREY_BOX_H_

#include <string>

#include "core/tuner.h"

namespace atune {

/// Grey-box performance prediction in the style of Kadirvel & Fortes
/// [ICCCN'12] (cited in §2.3): combine a white-box analytical model with a
/// black-box ML correction. The analytical model supplies structure the ML
/// would need many samples to learn; the ML learns what the model's
/// simplified assumptions miss (in log space, a multiplicative correction):
///
///   log t(config) ≈ log model(config) + residual(config)
///
/// where `residual` is a ridge regression over the unit-encoded knobs. Each
/// observed run refines the residual; candidates are searched against the
/// corrected predictor and the best is validated for real.
class GreyBoxTuner : public Tuner {
 public:
  GreyBoxTuner(size_t initial_samples = 6, size_t search_size = 2500)
      : initial_samples_(initial_samples), search_size_(search_size) {}

  std::string name() const override { return "grey-box"; }
  TunerCategory category() const override {
    return TunerCategory::kMachineLearning;
  }
  Status Tune(Evaluator* evaluator, Rng* rng) override;
  std::string Report() const override { return report_; }

 private:
  size_t initial_samples_;
  size_t search_size_;
  std::string report_;
};

}  // namespace atune

#endif  // ATUNE_TUNERS_ML_TUNERS_GREY_BOX_H_
