#ifndef ATUNE_TUNERS_ML_TUNERS_RODD_NN_H_
#define ATUNE_TUNERS_ML_TUNERS_RODD_NN_H_

#include <string>

#include "core/tuner.h"
#include "ml/neural_net.h"

namespace atune {

/// Neural-network performance tuner in the style of Rodd & Kulkarni [19]:
/// learn a feed-forward network mapping configuration -> performance from
/// measured samples, then search the model for the best predicted
/// configuration and validate it. Retrains as new observations accumulate.
///
/// Budget split: ~60% on training samples (LHS), the rest alternating
/// model-optimum validation runs with retraining.
class RoddNnTuner : public Tuner {
 public:
  explicit RoddNnTuner(MlpOptions mlp_options = {})
      : mlp_options_(std::move(mlp_options)) {}

  std::string name() const override { return "rodd-nn"; }
  TunerCategory category() const override {
    return TunerCategory::kMachineLearning;
  }
  Status Tune(Evaluator* evaluator, Rng* rng) override;
  std::string Report() const override { return report_; }

 private:
  MlpOptions mlp_options_;
  std::string report_;
};

}  // namespace atune

#endif  // ATUNE_TUNERS_ML_TUNERS_RODD_NN_H_
