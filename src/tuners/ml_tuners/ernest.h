#ifndef ATUNE_TUNERS_ML_TUNERS_ERNEST_H_
#define ATUNE_TUNERS_ML_TUNERS_ERNEST_H_

#include <string>

#include "core/tuner.h"

namespace atune {

/// Ernest [Venkataraman et al., NSDI'16]: predicts the performance of an
/// analytics job at scale from a handful of *cheap training runs on small
/// data samples*, using the parametric model
///
///   time(m) = theta_0 + theta_1 / m + theta_2 * log(m) + theta_3 * m
///
/// (serial term, parallelizable work, tree-aggregation, per-machine
/// overhead), fit with non-negative least squares so every term keeps its
/// physical meaning. The fitted model then picks the best degree of
/// parallelism, which is validated at full scale.
///
/// The parallelism knob per system: "num_executors" (Spark),
/// "max_workers" (DBMS), "num_reducers" (MapReduce). Other knobs stay at
/// their defaults — Ernest sizes clusters, it does not tune arbitrary knobs.
class ErnestTuner : public Tuner {
 public:
  /// `sample_fraction`: data fraction for training runs (each costs only
  /// that fraction of a budget unit); `training_points`: distinct
  /// parallelism levels measured (each at two sample sizes).
  explicit ErnestTuner(double sample_fraction = 0.125,
                       size_t training_points = 5)
      : sample_fraction_(sample_fraction), training_points_(training_points) {}

  std::string name() const override { return "ernest"; }
  TunerCategory category() const override {
    return TunerCategory::kMachineLearning;
  }
  Status Tune(Evaluator* evaluator, Rng* rng) override;
  std::string Report() const override { return report_; }

 private:
  double sample_fraction_;
  size_t training_points_;
  std::string report_;
};

}  // namespace atune

#endif  // ATUNE_TUNERS_ML_TUNERS_ERNEST_H_
