#ifndef ATUNE_TUNERS_ML_TUNERS_OTTERTUNE_H_
#define ATUNE_TUNERS_ML_TUNERS_OTTERTUNE_H_

#include <string>
#include <vector>

#include "core/tuner.h"
#include "math/matrix.h"

namespace atune {

/// Historical tuning data OtterTune learns from: past sessions on *other*
/// workloads of the same system, each a set of (config, runtime metrics,
/// objective) observations. Real OtterTune mines this from a repository of
/// prior tuning logs; here it is produced by BuildOtterTuneRepository.
struct OtterTuneRepository {
  struct Session {
    std::string workload_name;
    std::vector<Vec> configs;   ///< unit-encoded configurations
    std::vector<Vec> metrics;   ///< metric vector per observation
    Vec objectives;             ///< measured objective per observation
  };
  std::vector<Session> sessions;
  std::vector<std::string> metric_names;

  size_t TotalObservations() const {
    size_t n = 0;
    for (const Session& s : sessions) n += s.configs.size();
    return n;
  }
};

/// Persists a repository to a text file so the expensive offline collection
/// can be reused across tuning sessions (the ML category's core asset).
Status SaveOtterTuneRepository(const OtterTuneRepository& repository,
                               const std::string& path);

/// Loads a repository written by SaveOtterTuneRepository.
Result<OtterTuneRepository> LoadOtterTuneRepository(const std::string& path);

/// Runs `samples_per_workload` random configurations of `system` under each
/// historical workload and records (config, metrics, objective). This is
/// the *offline, reusable* data collection the ML category amortizes across
/// tuning sessions — and the "large training sets, expensive to collect"
/// weakness Table 1 charges the category with (the cost is real, it is just
/// not charged to the current session's budget).
OtterTuneRepository BuildOtterTuneRepository(
    TunableSystem* system, const std::vector<Workload>& history_workloads,
    size_t samples_per_workload, uint64_t seed);

/// OtterTune [Van Aken et al., SIGMOD'17] pipeline:
///  1. metric pruning — drop near-duplicate metrics (correlation filter
///     standing in for factor analysis + k-means);
///  2. knob ranking — Lasso path over the repository picks the important
///     knobs;
///  3. workload mapping — match the target's metric signature to the most
///     similar historical session;
///  4. GP recommendation — fit a GP on mapped + target observations over
///     the top knobs, suggest the EI-optimal config, observe, repeat.
class OtterTuneTuner : public Tuner {
 public:
  /// `repository` may be empty: Tune() then builds a default one from the
  /// system's standard workload families (excluding the target's kind).
  explicit OtterTuneTuner(OtterTuneRepository repository = {},
                          size_t target_observations = 5, size_t top_knobs = 6)
      : repository_(std::move(repository)),
        target_observations_(target_observations),
        top_knobs_(top_knobs) {}

  std::string name() const override { return "ottertune"; }
  TunerCategory category() const override {
    return TunerCategory::kMachineLearning;
  }
  Status Tune(Evaluator* evaluator, Rng* rng) override;
  std::string Report() const override { return report_; }

  const std::vector<std::string>& knob_ranking() const { return knob_ranking_; }

 private:
  OtterTuneRepository repository_;
  size_t target_observations_;
  size_t top_knobs_;
  std::vector<std::string> knob_ranking_;
  std::string report_;
};

/// Default historical workload set for a system name (used when the
/// repository is empty), excluding workloads of `exclude_kind`.
std::vector<Workload> DefaultHistoryWorkloads(const std::string& system_name,
                                              const std::string& exclude_kind);

}  // namespace atune

#endif  // ATUNE_TUNERS_ML_TUNERS_OTTERTUNE_H_
