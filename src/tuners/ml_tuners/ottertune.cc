#include "tuners/ml_tuners/ottertune.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/file_util.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "math/sampling.h"
#include "ml/acquisition.h"
#include "ml/gaussian_process.h"
#include "ml/kmeans.h"
#include "ml/linear_model.h"
#include "obs/trace.h"
#include "systems/dbms/dbms_workloads.h"
#include "systems/mapreduce/mr_workloads.h"
#include "systems/spark/spark_workloads.h"

namespace atune {

std::vector<Workload> DefaultHistoryWorkloads(const std::string& system_name,
                                              const std::string& exclude_kind) {
  std::vector<Workload> all;
  if (system_name == "simulated-mapreduce") {
    all = {MakeMrWordCountWorkload(5.0), MakeMrTeraSortWorkload(5.0),
           MakeMrGrepWorkload(5.0), MakeMrJoinWorkload(5.0)};
  } else if (system_name == "simulated-spark") {
    all = {MakeSparkSqlAggregateWorkload(4.0, 5.0),
           MakeSparkJoinWorkload(4.0, 64.0),
           MakeSparkIterativeMlWorkload(2.0, 5.0),
           MakeSparkStreamingWorkload(64.0, 10.0, 5.0)};
  } else {
    all = {MakeDbmsOltpWorkload(0.5, 32.0, 0.6), MakeDbmsOlapWorkload(0.5),
           MakeDbmsMixedWorkload(0.5),
           MakeDbmsOltpWorkload(0.5, 8.0, 0.2)};
  }
  std::vector<Workload> out;
  for (Workload& w : all) {
    if (w.kind != exclude_kind) out.push_back(std::move(w));
  }
  return out;
}

Status SaveOtterTuneRepository(const OtterTuneRepository& repository,
                               const std::string& path) {
  // Buffer the whole repository and publish it atomically (write-temp-
  // then-rename): a crash mid-save can never tear an existing repository.
  std::ostringstream out;
  out << "atune-repository v1\n";
  out << "metrics " << repository.metric_names.size();
  for (const std::string& m : repository.metric_names) out << " " << m;
  out << "\n";
  out << "sessions " << repository.sessions.size() << "\n";
  out.precision(17);
  for (const auto& session : repository.sessions) {
    // Workload names are single tokens by convention; enforce it.
    std::string name = session.workload_name;
    for (char& c : name) {
      if (std::isspace(static_cast<unsigned char>(c))) c = '_';
    }
    size_t dims = session.configs.empty() ? 0 : session.configs[0].size();
    out << "session " << name << " " << session.configs.size() << " " << dims
        << "\n";
    for (size_t i = 0; i < session.configs.size(); ++i) {
      for (double v : session.configs[i]) out << v << " ";
      out << "| ";
      for (double v : session.metrics[i]) out << v << " ";
      out << "| " << session.objectives[i] << "\n";
    }
  }
  return AtomicWriteFile(path, out.str());
}

Result<OtterTuneRepository> LoadOtterTuneRepository(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open repository '" + path + "'");
  }
  std::string magic, version;
  in >> magic >> version;
  if (magic != "atune-repository" || version != "v1") {
    return Status::InvalidArgument("'" + path + "' is not a v1 repository");
  }
  OtterTuneRepository repo;
  std::string token;
  size_t metric_count = 0;
  in >> token >> metric_count;
  if (token != "metrics") {
    return Status::InvalidArgument("repository missing metrics header");
  }
  for (size_t m = 0; m < metric_count; ++m) {
    std::string name;
    in >> name;
    repo.metric_names.push_back(name);
  }
  size_t session_count = 0;
  in >> token >> session_count;
  if (token != "sessions") {
    return Status::InvalidArgument("repository missing sessions header");
  }
  for (size_t s = 0; s < session_count; ++s) {
    OtterTuneRepository::Session session;
    size_t obs = 0, dims = 0;
    in >> token >> session.workload_name >> obs >> dims;
    if (token != "session" || !in) {
      return Status::InvalidArgument("malformed session header");
    }
    for (size_t i = 0; i < obs; ++i) {
      Vec config(dims), metrics(metric_count);
      for (double& v : config) in >> v;
      std::string sep;
      in >> sep;  // "|"
      for (double& v : metrics) in >> v;
      in >> sep;  // "|"
      double objective = 0.0;
      in >> objective;
      if (!in) return Status::InvalidArgument("malformed observation row");
      session.configs.push_back(std::move(config));
      session.metrics.push_back(std::move(metrics));
      session.objectives.push_back(objective);
    }
    repo.sessions.push_back(std::move(session));
  }
  return repo;
}

OtterTuneRepository BuildOtterTuneRepository(
    TunableSystem* system, const std::vector<Workload>& history_workloads,
    size_t samples_per_workload, uint64_t seed) {
  OtterTuneRepository repo;
  repo.metric_names = system->MetricNames();
  Rng rng(seed);
  const ParameterSpace& space = system->space();
  for (const Workload& w : history_workloads) {
    OtterTuneRepository::Session session;
    session.workload_name = w.name;
    std::vector<Vec> design =
        LatinHypercubeSamples(samples_per_workload, space.dims(), &rng);
    // Always include the defaults: mapping anchors on a shared config.
    design.push_back(space.ToUnitVector(space.DefaultConfiguration()));
    for (const Vec& u : design) {
      Configuration config = space.FromUnitVector(u);
      auto result = system->Execute(config, w);
      if (!result.ok()) continue;
      session.configs.push_back(u);
      Vec metric_vec;
      metric_vec.reserve(repo.metric_names.size());
      for (const std::string& m : repo.metric_names) {
        metric_vec.push_back(result->MetricOr(m, 0.0));
      }
      session.metrics.push_back(std::move(metric_vec));
      double obj = result->runtime_seconds * (result->failed ? 10.0 : 1.0);
      session.objectives.push_back(obj);
    }
    if (!session.configs.empty()) repo.sessions.push_back(std::move(session));
  }
  return repo;
}

namespace {

// Metric pruning, following OtterTune's pipeline shape: embed each metric
// by its (standardized) response profile across all observations, cluster
// the metrics with k-means, and keep one representative per cluster (the
// member closest to its centroid). Constant metrics are dropped first.
std::vector<size_t> PruneMetrics(const OtterTuneRepository& repo, Rng* rng) {
  std::vector<size_t> kept;
  if (repo.sessions.empty()) return kept;
  size_t num_metrics = repo.metric_names.size();
  // Collect each metric's column across all observations.
  std::vector<std::vector<double>> columns(num_metrics);
  for (const auto& session : repo.sessions) {
    for (const Vec& mv : session.metrics) {
      for (size_t m = 0; m < num_metrics && m < mv.size(); ++m) {
        columns[m].push_back(mv[m]);
      }
    }
  }
  std::vector<size_t> informative;
  std::vector<Vec> profiles;  // standardized column per informative metric
  for (size_t m = 0; m < num_metrics; ++m) {
    double var = Variance(columns[m]);
    if (var <= 1e-12) continue;  // constant metric carries no signal
    double mean = Mean(columns[m]);
    double sd = std::sqrt(var);
    Vec z(columns[m].size());
    for (size_t i = 0; i < z.size(); ++i) z[i] = (columns[m][i] - mean) / sd;
    informative.push_back(m);
    profiles.push_back(std::move(z));
  }
  if (informative.size() <= 2) return informative;

  auto clustering =
      KMeansAutoK(profiles, std::min<size_t>(informative.size(), 8), rng);
  if (!clustering.ok()) return informative;
  // Representative per cluster: the profile nearest its centroid.
  size_t k = clustering->centroids.size();
  std::vector<int> best_in_cluster(k, -1);
  std::vector<double> best_dist(k, std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < profiles.size(); ++i) {
    size_t c = clustering->assignments[i];
    double d = SquaredDistance(profiles[i], clustering->centroids[c]);
    if (d < best_dist[c]) {
      best_dist[c] = d;
      best_in_cluster[c] = static_cast<int>(i);
    }
  }
  for (int idx : best_in_cluster) {
    if (idx >= 0) kept.push_back(informative[static_cast<size_t>(idx)]);
  }
  std::sort(kept.begin(), kept.end());
  return kept;
}

// Workload mapping: repository session whose standardized metric responses
// at (approximately) the same configs are closest to the target's.
size_t MapWorkload(const OtterTuneRepository& repo,
                   const std::vector<size_t>& metric_idx,
                   const std::vector<Vec>& target_configs,
                   const std::vector<Vec>& target_metrics) {
  double best_score = std::numeric_limits<double>::infinity();
  size_t best_session = 0;
  // Standardize per metric across the repository for a fair distance.
  std::vector<RunningStats> stats(metric_idx.size());
  for (const auto& session : repo.sessions) {
    for (const Vec& mv : session.metrics) {
      for (size_t j = 0; j < metric_idx.size(); ++j) {
        stats[j].Add(mv[metric_idx[j]]);
      }
    }
  }
  auto standardize = [&](const Vec& mv) {
    Vec z(metric_idx.size());
    for (size_t j = 0; j < metric_idx.size(); ++j) {
      double sd = stats[j].stddev();
      z[j] = sd > 1e-12 ? (mv[metric_idx[j]] - stats[j].mean()) / sd : 0.0;
    }
    return z;
  };
  for (size_t s = 0; s < repo.sessions.size(); ++s) {
    const auto& session = repo.sessions[s];
    double score = 0.0;
    size_t count = 0;
    for (size_t t = 0; t < target_configs.size(); ++t) {
      // Nearest historical config stands in for "same config".
      size_t nearest = 0;
      double nd = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < session.configs.size(); ++i) {
        double d = SquaredDistance(session.configs[i], target_configs[t]);
        if (d < nd) {
          nd = d;
          nearest = i;
        }
      }
      score += SquaredDistance(standardize(session.metrics[nearest]),
                               standardize(target_metrics[t]));
      ++count;
    }
    if (count > 0) score /= static_cast<double>(count);
    if (score < best_score) {
      best_score = score;
      best_session = s;
    }
  }
  return best_session;
}

}  // namespace

Status OtterTuneTuner::Tune(Evaluator* evaluator, Rng* rng) {
  const ParameterSpace& space = evaluator->space();
  size_t dims = space.dims();

  // Offline phase: repository of historical sessions (not budget-charged;
  // see header). Sized ~15 observations x 3 workloads.
  if (repository_.sessions.empty()) {
    repository_ = BuildOtterTuneRepository(
        evaluator->system(),
        DefaultHistoryWorkloads(evaluator->system()->name(),
                                evaluator->workload().kind),
        15, rng->Next());
  }
  if (repository_.sessions.empty()) {
    return Status::FailedPrecondition("ottertune: empty repository");
  }

  // Knob ranking from the whole repository via the Lasso path.
  std::vector<Vec> all_configs;
  Vec all_objectives;
  for (const auto& session : repository_.sessions) {
    for (size_t i = 0; i < session.configs.size(); ++i) {
      all_configs.push_back(session.configs[i]);
      all_objectives.push_back(std::log(std::max(session.objectives[i], 1e-6)));
    }
  }
  ATUNE_ASSIGN_OR_RETURN(std::vector<size_t> knob_order,
                         LassoPathRanking(all_configs, all_objectives));
  knob_ranking_.clear();
  for (size_t d : knob_order) knob_ranking_.push_back(space.param(d).name());
  size_t k = std::min(top_knobs_, dims);

  // Metric pruning.
  std::vector<size_t> metric_idx = PruneMetrics(repository_, rng);

  // Target observations: defaults + LHS probes.
  std::vector<Vec> target_configs;
  std::vector<Vec> target_metrics;
  Vec target_objectives;
  auto observe = [&](const Vec& u) -> Status {
    auto obj = evaluator->Evaluate(space.FromUnitVector(u));
    if (!obj.ok()) return obj.status();
    const ExecutionResult& res = evaluator->history().back().result;
    Vec mv;
    mv.reserve(repository_.metric_names.size());
    for (const std::string& m : repository_.metric_names) {
      mv.push_back(res.MetricOr(m, 0.0));
    }
    target_configs.push_back(u);
    target_metrics.push_back(std::move(mv));
    target_objectives.push_back(std::log(std::max(*obj, 1e-6)));
    return Status::OK();
  };

  Status s = observe(space.ToUnitVector(space.DefaultConfiguration()));
  if (!s.ok()) return s;
  std::vector<Vec> probes =
      LatinHypercubeSamples(target_observations_, dims, rng);
  for (const Vec& u : probes) {
    if (evaluator->Exhausted()) break;
    Status st = observe(u);
    if (!st.ok()) {
      if (st.code() == StatusCode::kResourceExhausted) break;
      return st;
    }
  }

  // Recommendation loop: map -> GP on mapped + target -> EI -> observe.
  size_t mapped = 0;
  size_t recommendations = 0;
  size_t model_failures = 0;
  // Reusable batched-acquisition storage: candidate matrix, PredictBatch
  // output, EI values, GP panel scratch — allocated once per session.
  constexpr size_t kAcqCandidates = 1500;
  Matrix acq_cands(kAcqCandidates, dims);
  std::vector<GpPrediction> acq_preds;
  Vec acq_values;
  GpScratch gp_scratch;
  while (!evaluator->Exhausted()) {
    mapped = MapWorkload(repository_, metric_idx, target_configs,
                         target_metrics);
    const auto& session = repository_.sessions[mapped];

    // Training set: mapped session (background) + target observations
    // (authoritative — appended last so duplicates favor the target).
    std::vector<Vec> xs;
    Vec ys;
    for (size_t i = 0; i < session.configs.size(); ++i) {
      xs.push_back(session.configs[i]);
      ys.push_back(std::log(std::max(session.objectives[i], 1e-6)));
    }
    // Offset mapped data so its mean matches the target's (scale transfer).
    double mapped_mean = Mean(std::vector<double>(ys.begin(), ys.end()));
    double target_mean = Mean(std::vector<double>(target_objectives.begin(),
                                                  target_objectives.end()));
    for (double& y : ys) y += target_mean - mapped_mean;
    for (size_t i = 0; i < target_configs.size(); ++i) {
      xs.push_back(target_configs[i]);
      ys.push_back(target_objectives[i]);
    }

    GaussianProcess gp;
    Status fit = gp.FitWithHyperSearch(xs, ys, 16, rng);
    Vec next(dims);
    Vec incumbent = target_configs[static_cast<size_t>(
        std::min_element(target_objectives.begin(), target_objectives.end()) -
        target_objectives.begin())];
    if (fit.ok()) {
      model_failures = 0;
      ScopedSpan acq_span(CurrentTracer(), "acquisition");
      if (acq_span.active()) acq_span.AddArg("candidates", "1500");
      double best_log = *std::min_element(target_objectives.begin(),
                                          target_objectives.end());
      // Pre-generate all candidates with the per-point loop's exact rng draw
      // order, then predict and score them as one batch; the index-order
      // strict-> argmax picks the bit-identical winner the scalar scan did.
      for (size_t c = 0; c < kAcqCandidates; ++c) {
        double* cand = acq_cands.RowPtr(c);
        // Non-top knobs stay at the incumbent.
        std::copy(incumbent.begin(), incumbent.end(), cand);
        for (size_t j = 0; j < k; ++j) {
          size_t d = knob_order[j];
          cand[d] = c % 3 == 0
                        ? std::clamp(incumbent[d] + rng->Normal(0.0, 0.1),
                                     0.0, 1.0)
                        : rng->Uniform();
        }
      }
      gp.PredictBatch(acq_cands, &gp_scratch, &acq_preds);
      ExpectedImprovementBatch(acq_preds, best_log, 0.0, &acq_values);
      double best_acq = -std::numeric_limits<double>::infinity();
      size_t best_c = kAcqCandidates;
      for (size_t c = 0; c < kAcqCandidates; ++c) {
        if (acq_values[c] > best_acq) {
          best_acq = acq_values[c];
          best_c = c;
        }
      }
      if (best_c < kAcqCandidates) next = acq_cands.Row(best_c);
    } else {
      // One-off GP failures fall back to perturbing the incumbent; three in
      // a row mean the training set itself is numerically poisoned —
      // escalate so a supervision layer can fail over.
      if (++model_failures >= 3) return fit;
      next = incumbent;
      for (size_t j = 0; j < k; ++j) {
        next[knob_order[j]] = rng->Uniform();
      }
    }
    Status st = observe(next);
    if (!st.ok()) {
      if (st.code() == StatusCode::kResourceExhausted) break;
      return st;
    }
    ++recommendations;
  }

  report_ = StrFormat(
      "repository %zu sessions/%zu obs; %zu/%zu metrics kept; top knobs "
      "[%s]; mapped to '%s'; %zu GP recommendations",
      repository_.sessions.size(), repository_.TotalObservations(),
      metric_idx.size(), repository_.metric_names.size(),
      Join(std::vector<std::string>(
               knob_ranking_.begin(),
               knob_ranking_.begin() + std::min<size_t>(k, knob_ranking_.size())),
           ", ")
          .c_str(),
      repository_.sessions[mapped].workload_name.c_str(), recommendations);
  return Status::OK();
}

}  // namespace atune
