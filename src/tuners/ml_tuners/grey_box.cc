#include "tuners/ml_tuners/grey_box.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/string_util.h"
#include "math/sampling.h"
#include "ml/linear_model.h"
#include "tuners/cost_model/cost_models.h"

namespace atune {

Status GreyBoxTuner::Tune(Evaluator* evaluator, Rng* rng) {
  const ParameterSpace& space = evaluator->space();
  const size_t dims = space.dims();
  std::unique_ptr<CostModel> model =
      MakeCostModelForSystem(evaluator->system()->name());
  const std::map<std::string, double> descriptors =
      evaluator->system()->Descriptors();
  const Workload& workload = evaluator->workload();

  auto model_log = [&](const Configuration& config) {
    return std::log(std::max(
        model->PredictRuntime(config, workload, descriptors), 1e-6));
  };

  // Observations: unit-encoded configs and log residuals vs the model.
  std::vector<Vec> xs;
  Vec residuals;
  auto observe = [&](const Configuration& config) -> Status {
    auto obj = evaluator->Evaluate(config);
    if (!obj.ok()) return obj.status();
    xs.push_back(space.ToUnitVector(config));
    residuals.push_back(std::log(std::max(*obj, 1e-6)) - model_log(config));
    return Status::OK();
  };

  // Seed: defaults + a small LHS design.
  ATUNE_RETURN_IF_ERROR(observe(space.DefaultConfiguration()));
  for (const Vec& u : LatinHypercubeSamples(initial_samples_, dims, rng)) {
    if (evaluator->Exhausted()) break;
    Status s = observe(space.FromUnitVector(u));
    if (!s.ok()) {
      if (s.code() == StatusCode::kResourceExhausted) break;
      return s;
    }
  }

  // Refine: fit residual, search corrected predictor, validate, repeat.
  size_t refinements = 0;
  double residual_mean = 0.0;
  while (!evaluator->Exhausted()) {
    RidgeRegression residual_model(1e-2);
    Status fit = residual_model.Fit(xs, residuals);
    if (!fit.ok()) return fit;
    residual_mean = 0.0;
    for (double r : residuals) residual_mean += std::abs(r);
    residual_mean /= static_cast<double>(residuals.size());

    Configuration best_cand;
    double best_pred = std::numeric_limits<double>::infinity();
    const Vec incumbent_u = space.ToUnitVector(evaluator->best()->config);
    for (size_t i = 0; i < search_size_; ++i) {
      Vec u(dims);
      if (i % 3 == 0) {
        for (size_t d = 0; d < dims; ++d) {
          u[d] = std::clamp(incumbent_u[d] + rng->Normal(0.0, 0.08), 0.0, 1.0);
        }
      } else {
        for (double& x : u) x = rng->Uniform();
      }
      Configuration cand = space.FromUnitVector(u);
      double pred = model_log(cand) + residual_model.Predict(u);
      if (pred < best_pred) {
        best_pred = pred;
        best_cand = std::move(cand);
      }
    }
    Status s = observe(best_cand);
    if (!s.ok()) {
      if (s.code() == StatusCode::kResourceExhausted) break;
      return s;
    }
    ++refinements;
  }
  report_ = StrFormat(
      "grey-box: %zu observations, %zu refine cycles, mean |log residual| "
      "%.3f (model alone would be off by e^%.2f = %.2fx)",
      xs.size(), refinements, residual_mean, residual_mean,
      std::exp(residual_mean));
  return Status::OK();
}

}  // namespace atune
