#include "tuners/ml_tuners/rodd_nn.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/string_util.h"
#include "math/sampling.h"

namespace atune {

Status RoddNnTuner::Tune(Evaluator* evaluator, Rng* rng) {
  const ParameterSpace& space = evaluator->space();
  size_t dims = space.dims();
  size_t budget = evaluator->budget().max_evaluations;

  std::vector<Vec> xs;
  Vec ys;
  auto observe = [&](const Vec& u) -> Result<double> {
    auto obj = evaluator->Evaluate(space.FromUnitVector(u));
    if (!obj.ok()) return obj.status();
    xs.push_back(u);
    ys.push_back(std::log(std::max(*obj, 1e-6)));
    return *obj;
  };

  // Training phase: defaults + LHS covering ~60% of the budget.
  auto first = observe(space.ToUnitVector(space.DefaultConfiguration()));
  if (!first.ok()) return first.status();
  size_t train_n = std::max<size_t>(4, budget * 6 / 10);
  std::vector<Vec> design = LatinHypercubeSamples(train_n, dims, rng);
  for (const Vec& u : design) {
    if (evaluator->Exhausted()) break;
    auto r = observe(u);
    if (!r.ok()) {
      if (r.status().code() == StatusCode::kResourceExhausted) break;
      return r.status();
    }
  }

  // Train / search / validate loop.
  size_t retrains = 0;
  double model_loss = 0.0;
  while (!evaluator->Exhausted()) {
    MlpOptions opts = mlp_options_;
    opts.seed = rng->Next();
    Mlp model(opts);
    Status fit = model.Fit(xs, ys);
    if (!fit.ok()) return fit;
    ++retrains;
    model_loss = model.final_loss();

    // Search the model: random + local around the model optimum.
    Vec best_u(dims, 0.5);
    double best_pred = std::numeric_limits<double>::infinity();
    for (int i = 0; i < 3000; ++i) {
      Vec cand(dims);
      for (double& x : cand) x = rng->Uniform();
      double pred = model.Predict(cand);
      if (pred < best_pred) {
        best_pred = pred;
        best_u = std::move(cand);
      }
    }
    for (int i = 0; i < 500; ++i) {
      Vec cand = best_u;
      for (double& x : cand) {
        x = std::clamp(x + rng->Normal(0.0, 0.05), 0.0, 1.0);
      }
      double pred = model.Predict(cand);
      if (pred < best_pred) {
        best_pred = pred;
        best_u = std::move(cand);
      }
    }
    auto r = observe(best_u);
    if (!r.ok()) {
      if (r.status().code() == StatusCode::kResourceExhausted) break;
      return r.status();
    }
  }
  report_ = StrFormat(
      "%zu training samples, %zu retrain/validate cycles, final training "
      "MSE %.4f (log space)",
      xs.size(), retrains, model_loss);
  return Status::OK();
}

}  // namespace atune
