#include "tuners/ml_tuners/ernest.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/string_util.h"
#include "math/matrix.h"
#include "ml/nnls.h"

namespace atune {

namespace {
const char* ParallelismKnob(const std::string& system_name) {
  if (system_name == "simulated-spark") return "num_executors";
  if (system_name == "simulated-mapreduce") return "num_reducers";
  return "max_workers";
}

Vec ErnestFeatures(double machines, double data_fraction) {
  // time ~ th0*(serial) + th1*(work per machine) + th2*log(m) + th3*m,
  // with work scaling by the data fraction.
  return {data_fraction, data_fraction / machines, std::log(machines + 1.0),
          machines};
}
}  // namespace

Status ErnestTuner::Tune(Evaluator* evaluator, Rng* rng) {
  (void)rng;
  const ParameterSpace& space = evaluator->space();
  const std::string knob = ParallelismKnob(evaluator->system()->name());
  auto def = space.Find(knob);
  if (!def.ok()) return def.status();
  const ParameterDef& pdef = **def;
  const int64_t lo = pdef.min_int();
  int64_t hi = pdef.max_int();

  Configuration base = space.DefaultConfiguration();

  // Ernest sizes allocations *within the resource budget*: cap the ladder
  // at what the cluster can actually grant, or every large training point
  // would just be a denied request.
  std::map<std::string, double> desc = evaluator->system()->Descriptors();
  auto desc_or = [&desc](const char* key, double fallback) {
    auto it = desc.find(key);
    return it == desc.end() ? fallback : it->second;
  };
  if (std::string(knob) == "num_executors") {
    double per_exec_cores =
        static_cast<double>(base.IntOr("executor_cores", 1));
    double per_exec_mem =
        static_cast<double>(base.IntOr("executor_memory_mb", 1024));
    double cap = std::min(desc_or("total_cores", 32.0) / per_exec_cores,
                          desc_or("total_ram_mb", 65536.0) * 0.9 /
                              per_exec_mem);
    hi = std::min(hi, static_cast<int64_t>(std::max(1.0, cap)));
  } else if (std::string(knob) == "max_workers") {
    hi = std::min(hi, static_cast<int64_t>(desc_or("total_cores", 8.0)));
  }

  // Training: geometric ladder of parallelism levels, two sample sizes
  // each (Ernest's experiment design collapses to this in one dimension).
  std::vector<int64_t> levels;
  for (size_t i = 0; i < training_points_; ++i) {
    double t = training_points_ <= 1
                   ? 0.0
                   : static_cast<double>(i) /
                         static_cast<double>(training_points_ - 1);
    int64_t m = static_cast<int64_t>(std::llround(
        std::exp(std::log(static_cast<double>(std::max<int64_t>(lo, 1))) +
                 t * (std::log(static_cast<double>(hi)) -
                      std::log(static_cast<double>(std::max<int64_t>(lo, 1)))))));
    m = std::clamp(m, lo, hi);
    if (levels.empty() || levels.back() != m) levels.push_back(m);
  }

  std::vector<Vec> rows;
  Vec times;
  size_t training_runs = 0;
  for (int64_t m : levels) {
    for (double frac : {sample_fraction_, sample_fraction_ * 2.0}) {
      if (evaluator->Remaining() < frac) break;
      Configuration c = base;
      c.SetInt(knob, m);
      auto obj = evaluator->EvaluateScaled(c, frac);
      if (!obj.ok()) {
        if (obj.status().code() == StatusCode::kResourceExhausted) break;
        return obj.status();
      }
      ++training_runs;
      // Failed sample runs (e.g. denied allocations) carry no timing
      // signal for the scale model.
      if (evaluator->history().back().result.failed) continue;
      rows.push_back(ErnestFeatures(static_cast<double>(m), frac));
      times.push_back(*obj);
    }
  }
  if (rows.size() < 4) {
    // Not enough signal; just validate the default.
    if (!evaluator->Exhausted()) {
      auto obj = evaluator->Evaluate(base);
      if (!obj.ok() &&
          obj.status().code() != StatusCode::kResourceExhausted) {
        return obj.status();
      }
    }
    report_ = "insufficient budget for Ernest training; used defaults";
    return Status::OK();
  }

  Matrix a(rows.size(), 4);
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = 0; j < 4; ++j) a.At(i, j) = rows[i][j];
  }
  ATUNE_ASSIGN_OR_RETURN(Vec theta, SolveNnls(a, times));

  // Pick the parallelism minimizing predicted full-scale time.
  int64_t best_m = lo;
  double best_pred = std::numeric_limits<double>::infinity();
  for (int64_t m = lo; m <= hi; m = std::max(m + 1, m + (hi - lo) / 200)) {
    double pred = Dot(theta, ErnestFeatures(static_cast<double>(m), 1.0));
    if (pred < best_pred) {
      best_pred = pred;
      best_m = m;
    }
  }

  // Validate at full scale; also measure the default for reference.
  Configuration tuned = base;
  tuned.SetInt(knob, best_m);
  size_t validations = 0;
  for (const Configuration& c : {tuned, base}) {
    if (evaluator->Exhausted()) break;
    auto obj = evaluator->Evaluate(c);
    if (!obj.ok()) {
      if (obj.status().code() == StatusCode::kResourceExhausted) break;
      return obj.status();
    }
    ++validations;
  }
  report_ = StrFormat(
      "fit time(m) = %.2f + %.2f/m + %.2f*log(m) + %.4f*m from %zu sampled "
      "runs; chose %s=%lld (predicted %.2fs), %zu full validations",
      theta[0], theta[1], theta[2], theta[3], training_runs, knob.c_str(),
      static_cast<long long>(best_m), best_pred, validations);
  return Status::OK();
}

}  // namespace atune
