#ifndef ATUNE_TUNERS_WARM_START_H_
#define ATUNE_TUNERS_WARM_START_H_

#include <memory>
#include <string>
#include <vector>

#include "core/knowledge_repo.h"
#include "core/registry.h"
#include "core/tuner.h"

namespace atune {

/// Transfer-learning decorator (DESIGN.md §14): seeds *any* registry tuner
/// with observations mapped from a knowledge-repository snapshot, then
/// delegates the remaining budget to the wrapped tuner.
///
/// Warm phase (all through the Evaluator, so every step is journaled and a
/// killed session replays bit-identically):
///   1. evaluate the default configuration once and fingerprint the target
///      workload from its metrics;
///   2. k-NN map the fingerprint onto the snapshot (MapWorkloadKnn over
///      records matching the target system and parameter dimensionality);
///   3. evaluate the mapped neighbors' best configurations (deduplicated,
///      nearest-neighbor round-robin, capped so the inner tuner keeps at
///      least half the budget).
///
/// The mapping is a pure function of (snapshot, probe metrics), and the
/// snapshot is pinned by the caller (atuned records the exact shard list in
/// the session's .meta), so a resume re-derives the identical warm
/// schedule and the journal replay discipline covers the rest. With an
/// empty snapshot the decorator is a pass-through.
class WarmStartTuner : public Tuner {
 public:
  WarmStartTuner(std::unique_ptr<Tuner> inner,
                 std::vector<KnowledgeRecord> snapshot, size_t k_neighbors = 3,
                 size_t max_warm_configs = 4);

  std::string name() const override { return "warm-start:" + inner_->name(); }
  TunerCategory category() const override { return inner_->category(); }
  Status Tune(Evaluator* evaluator, Rng* rng) override;
  void set_parallelism(size_t parallelism) override {
    inner_->set_parallelism(parallelism);
  }
  std::string Report() const override;

  /// Warm configurations evaluated by the last Tune() (post-dedup).
  size_t warm_evaluations() const { return warm_evaluations_; }
  /// Neighbor session ids mapped by the last Tune(), nearest first.
  const std::vector<std::string>& mapped_sessions() const {
    return mapped_sessions_;
  }

 private:
  std::unique_ptr<Tuner> inner_;
  std::vector<KnowledgeRecord> snapshot_;
  size_t k_neighbors_;
  size_t max_warm_configs_;
  size_t warm_evaluations_ = 0;
  std::vector<std::string> mapped_sessions_;
};

/// Creates `tuner_name` from `registry` wrapped in a WarmStartTuner seeded
/// with `snapshot` (atuned's --warm-start path).
Result<std::unique_ptr<Tuner>> MakeWarmStartTuner(
    const TunerRegistry& registry, const std::string& tuner_name,
    std::vector<KnowledgeRecord> snapshot, size_t k_neighbors = 3,
    size_t max_warm_configs = 4);

}  // namespace atune

#endif  // ATUNE_TUNERS_WARM_START_H_
