#include "tuners/warm_start.h"

#include <algorithm>
#include <utility>

namespace atune {

WarmStartTuner::WarmStartTuner(std::unique_ptr<Tuner> inner,
                               std::vector<KnowledgeRecord> snapshot,
                               size_t k_neighbors, size_t max_warm_configs)
    : inner_(std::move(inner)),
      snapshot_(std::move(snapshot)),
      k_neighbors_(k_neighbors == 0 ? 1 : k_neighbors),
      max_warm_configs_(max_warm_configs) {}

Status WarmStartTuner::Tune(Evaluator* evaluator, Rng* rng) {
  warm_evaluations_ = 0;
  mapped_sessions_.clear();

  const ParameterSpace& space = evaluator->space();
  const std::string system_name = evaluator->system()->name();
  const std::vector<std::string> metric_names =
      evaluator->system()->MetricNames();

  // Records from a different system or metric schema cannot be mapped.
  std::vector<KnowledgeRecord> usable;
  for (const KnowledgeRecord& rec : snapshot_) {
    if (rec.system == system_name && rec.metric_names == metric_names &&
        !rec.configs.empty()) {
      usable.push_back(rec);
    }
  }

  if (!usable.empty() && !metric_names.empty() && !evaluator->Exhausted()) {
    // Probe the default configuration to fingerprint the target workload.
    auto probe = evaluator->Evaluate(space.DefaultConfiguration());
    if (!probe.ok()) {
      if (probe.status().code() != StatusCode::kResourceExhausted) {
        return probe.status();
      }
      return inner_->Tune(evaluator, rng);
    }
    const ExecutionResult& res = evaluator->history().back().result;
    Vec fingerprint;
    fingerprint.reserve(metric_names.size());
    for (const std::string& m : metric_names) {
      fingerprint.push_back(res.MetricOr(m, 0.0));
    }

    WorkloadMapping mapping = MapWorkloadKnn(usable, fingerprint, k_neighbors_);
    for (size_t idx : mapping.neighbors) {
      mapped_sessions_.push_back(usable[idx].session_id);
    }

    // Seed the mapped neighbors' best configurations, leaving the inner
    // tuner at least half of the remaining budget. Every evaluation goes
    // through the Evaluator, so the warm phase is journaled and replayed
    // exactly like any other trial.
    double remaining = evaluator->Remaining();
    size_t cap = std::min(max_warm_configs_, size_t(remaining / 2.0));
    std::vector<Vec> warm =
        SelectWarmConfigs(usable, mapping.neighbors, space.dims(), cap);
    for (const Vec& u : warm) {
      if (evaluator->Exhausted()) break;
      auto obj = evaluator->Evaluate(space.FromUnitVector(u));
      if (!obj.ok()) {
        if (obj.status().code() == StatusCode::kResourceExhausted) break;
        return obj.status();
      }
      ++warm_evaluations_;
    }
  }

  return inner_->Tune(evaluator, rng);
}

std::string WarmStartTuner::Report() const {
  std::string report = "warm-start: seeded " +
                       std::to_string(warm_evaluations_) +
                       " config(s) from " +
                       std::to_string(mapped_sessions_.size()) +
                       " mapped session(s)";
  for (const std::string& id : mapped_sessions_) report += " " + id;
  std::string inner = inner_->Report();
  if (!inner.empty()) report += "\n" + inner;
  return report;
}

Result<std::unique_ptr<Tuner>> MakeWarmStartTuner(
    const TunerRegistry& registry, const std::string& tuner_name,
    std::vector<KnowledgeRecord> snapshot, size_t k_neighbors,
    size_t max_warm_configs) {
  auto inner = registry.Create(tuner_name);
  if (!inner.ok()) return inner.status();
  return std::unique_ptr<Tuner>(
      new WarmStartTuner(std::move(*inner), std::move(snapshot), k_neighbors,
                         max_warm_configs));
}

}  // namespace atune
