#ifndef ATUNE_TUNERS_BUILTIN_H_
#define ATUNE_TUNERS_BUILTIN_H_

#include <string>

#include "core/registry.h"

namespace atune {

/// Registers every tuner in the library under its canonical name:
///
///   rule-based:        "rules-dbms", "rules-mapreduce", "rules-spark",
///                      "spex", "config-navigator"
///   cost modeling:     "cost-model", "stmm"
///   simulation-based:  "trace-simulator", "addm", "starfish"
///   experiment-driven: "random-search", "grid-search", "recursive-random",
///                      "sard", "adaptive-sampling", "ituned"
///   machine learning:  "ottertune", "rodd-nn", "ernest", "grey-box"
///   adaptive:          "colt", "adaptive-memory", "stage-retuner"
void RegisterBuiltinTuners(TunerRegistry* registry);

/// Registers one representative tuner per taxonomy category for a given
/// system (used by the Table-1 comparison benches): the rule set matching
/// `system_name`, cost-model, trace-simulator, ituned, ottertune, and a
/// suitable adaptive tuner.
void RegisterCategoryRepresentatives(TunerRegistry* registry,
                                     const std::string& system_name);

}  // namespace atune

#endif  // ATUNE_TUNERS_BUILTIN_H_
