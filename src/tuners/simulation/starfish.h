#ifndef ATUNE_TUNERS_SIMULATION_STARFISH_H_
#define ATUNE_TUNERS_SIMULATION_STARFISH_H_

#include <string>

#include "core/tuner.h"

namespace atune {

/// Starfish-style profile + what-if + cost-based optimization for MapReduce
/// jobs [Herodotou et al., CIDR'11; Herodotou & Babu, PVLDB'11]:
///
///   1. *Profile*: run the job once with profiling on and extract a job
///      profile — data-flow statistics (map selectivity, combiner
///      reduction, reducer skew) and cost statistics (CPU seconds per MB in
///      map/reduce functions) that belong to the *job*, not the config.
///   2. *What-if engine*: plug the measured profile into the white-box
///      Hadoop cost model, making its workload inputs calibrated instead of
///      assumed.
///   3. *Cost-based optimizer*: search the configuration space against the
///      calibrated model (recursive random search, as in Starfish) and
///      validate the winner with real runs.
///
/// This differs from TraceSimulatorTuner (which scales the *observed phase
/// times* by resource ratios) in the classic profile-vs-trace way: the
/// profile re-derives phase times from first principles, so it extrapolates
/// to configurations far from the profiled one.
///
/// MapReduce-specific; Tune() returns FailedPrecondition on other systems.
class StarfishTuner : public Tuner {
 public:
  explicit StarfishTuner(size_t whatif_search_size = 3000,
                         size_t validation_runs = 3)
      : whatif_search_size_(whatif_search_size),
        validation_runs_(validation_runs) {}

  std::string name() const override { return "starfish"; }
  TunerCategory category() const override {
    return TunerCategory::kSimulationBased;
  }
  Status Tune(Evaluator* evaluator, Rng* rng) override;
  std::string Report() const override { return report_; }

  /// Extracts a calibrated workload description (the "job profile") from a
  /// profiled run. Exposed for tests and benches.
  static Workload ExtractProfile(const Workload& declared,
                                 const Configuration& profiled_config,
                                 const ExecutionResult& profiled_run);

 private:
  size_t whatif_search_size_;
  size_t validation_runs_;
  std::string report_;
};

}  // namespace atune

#endif  // ATUNE_TUNERS_SIMULATION_STARFISH_H_
