#ifndef ATUNE_TUNERS_SIMULATION_TRACE_SIMULATOR_H_
#define ATUNE_TUNERS_SIMULATION_TRACE_SIMULATOR_H_

#include <map>
#include <string>

#include "core/tuner.h"

namespace atune {

/// Trace-based what-if simulation in the style of Narayanan et al.
/// [MASCOTS'05] ("Continuous resource monitoring for self-predicting
/// DBMS"): capture a resource trace of the running system under its current
/// configuration, then answer "what if parameter X changed?" by replaying
/// the trace against analytical resource scalings — no model of the
/// workload is needed, only of the resources.
///
/// Budget use: 1 run to capture the trace, a free what-if search over the
/// trace, then `validation_runs` real runs on the best predictions
/// (optionally re-capturing and iterating).
class TraceSimulatorTuner : public Tuner {
 public:
  explicit TraceSimulatorTuner(size_t whatif_search_size = 2000,
                               size_t validation_runs = 4)
      : whatif_search_size_(whatif_search_size),
        validation_runs_(validation_runs) {}

  std::string name() const override { return "trace-simulator"; }
  TunerCategory category() const override {
    return TunerCategory::kSimulationBased;
  }
  Status Tune(Evaluator* evaluator, Rng* rng) override;
  std::string Report() const override { return report_; }

  /// What-if runtime prediction from a captured trace (exposed for tests
  /// and the Table-2 bench): scales the trace's time components to the
  /// hypothetical configuration. `descriptors` supplies hardware facts
  /// (RAM, node count) the resource scalings need.
  static double PredictFromTrace(
      const std::string& system_name, const Configuration& traced_config,
      const ExecutionResult& trace, const Configuration& hypothetical,
      const std::map<std::string, double>& descriptors);

 private:
  size_t whatif_search_size_;
  size_t validation_runs_;
  std::string report_;
};

}  // namespace atune

#endif  // ATUNE_TUNERS_SIMULATION_TRACE_SIMULATOR_H_
