#include "tuners/simulation/starfish.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/string_util.h"
#include "systems/dbms/dbms_model.h"  // CompressionProfile
#include "tuners/cost_model/cost_models.h"

namespace atune {

Workload StarfishTuner::ExtractProfile(const Workload& declared,
                                       const Configuration& profiled_config,
                                       const ExecutionResult& profiled_run) {
  Workload profile = declared;
  const double jobs = std::max(1.0, declared.PropertyOr("num_jobs", 1.0));
  const double input_mb =
      declared.PropertyOr("input_mb", 10240.0) * declared.scale;
  if (input_mb <= 0.0) return profile;

  // Undo the intermediate compression the profiled run happened to use.
  const bool compressed =
      profiled_config.BoolOr("compress_map_output", false);
  const double codec_ratio =
      compressed
          ? GetCompressionProfile(
                profiled_config.StringOr("compress_codec", "zlib"))
                .ratio
          : 1.0;
  const double shuffle_mb =
      profiled_run.MetricOr("shuffle_mb", 0.0) / jobs / codec_ratio;

  // Data-flow statistics. If the profiled run used the combiner, the
  // observed selectivity already folds the reduction in; the caller should
  // profile with the combiner off for a clean separation (Tune() does).
  double selectivity = shuffle_mb / input_mb;
  if (profiled_config.BoolOr("combiner", false)) {
    double declared_reduction = declared.PropertyOr("combiner_reduction", 1.0);
    if (declared_reduction > 0.0) selectivity /= declared_reduction;
  }
  profile.properties["map_selectivity"] = std::max(selectivity, 1e-4);

  // Cost statistics from the per-phase counters. These absorb the real
  // cluster's CPU speed, which is exactly what calibration should do.
  profile.properties["map_cpu_s_per_mb"] =
      std::max(1e-6, profiled_run.MetricOr("map_func_cpu_s", 0.0) / jobs /
                         input_mb);
  const double map_out_mb = std::max(selectivity * input_mb, 1e-6);
  profile.properties["reduce_cpu_s_per_mb"] =
      std::max(1e-6, profiled_run.MetricOr("reduce_func_cpu_s", 0.0) / jobs /
                         map_out_mb);
  profile.properties["reducer_skew"] =
      std::max(1.0, profiled_run.MetricOr("reducer_skew_measured", jobs) /
                        jobs);
  const double output_mb = profiled_run.MetricOr("output_mb", 0.0) / jobs;
  profile.properties["reduce_selectivity"] =
      std::clamp(output_mb / map_out_mb, 1e-3, 10.0);
  return profile;
}

Status StarfishTuner::Tune(Evaluator* evaluator, Rng* rng) {
  if (evaluator->system()->name() != "simulated-mapreduce") {
    return Status::FailedPrecondition(
        "starfish profiles MapReduce jobs; system is not MapReduce");
  }
  const ParameterSpace& space = evaluator->space();
  const Workload& declared = evaluator->workload();
  std::map<std::string, double> descriptors =
      evaluator->system()->Descriptors();

  // Profile run 1: defaults (combiner off) — data-flow + cost statistics.
  Configuration profile_config = space.DefaultConfiguration();
  auto base = evaluator->Evaluate(profile_config);
  if (!base.ok()) return base.status();
  // Copy, not reference: the next Evaluate() grows the history vector and
  // would invalidate a reference into it.
  const ExecutionResult run_a = evaluator->history().back().result;
  Workload profile = ExtractProfile(declared, profile_config, run_a);

  // Profile run 2: combiner on — measures the combiner's reduction factor
  // (Starfish reads combine input/output record counters).
  if (!evaluator->Exhausted()) {
    Configuration with_combiner = profile_config;
    with_combiner.SetBool("combiner", true);
    auto obj = evaluator->Evaluate(with_combiner);
    if (obj.ok()) {
      const ExecutionResult& run_b = evaluator->history().back().result;
      double jobs = std::max(1.0, declared.PropertyOr("num_jobs", 1.0));
      double shuffle_a = run_a.MetricOr("shuffle_mb", 0.0) / jobs;
      double shuffle_b = run_b.MetricOr("shuffle_mb", 0.0) / jobs;
      if (shuffle_a > 0.0) {
        profile.properties["combiner_reduction"] =
            std::clamp(shuffle_b / shuffle_a, 0.01, 1.0);
      }
    } else if (obj.status().code() != StatusCode::kResourceExhausted) {
      return obj.status();
    }
  }

  // Cost-based optimization against the calibrated what-if model.
  auto model = MakeMapReduceCostModel();
  Configuration best_cand = profile_config;
  double best_pred =
      model->PredictRuntime(profile_config, profile, descriptors);
  for (size_t i = 0; i < whatif_search_size_; ++i) {
    Configuration cand = i % 4 == 0 ? space.Neighbor(best_cand, 0.12, rng)
                                    : space.RandomConfiguration(rng);
    double pred = model->PredictRuntime(cand, profile, descriptors);
    if (pred < best_pred) {
      best_pred = pred;
      best_cand = std::move(cand);
    }
  }

  // Validate with real runs, re-optimizing locally between validations.
  size_t validated = 0;
  while (!evaluator->Exhausted() && validated < validation_runs_) {
    auto obj = evaluator->Evaluate(best_cand);
    if (!obj.ok()) {
      if (obj.status().code() == StatusCode::kResourceExhausted) break;
      return obj.status();
    }
    ++validated;
    Configuration refined = best_cand;
    double refined_pred = best_pred;
    for (int i = 0; i < 400; ++i) {
      Configuration cand = space.Neighbor(best_cand, 0.06, rng);
      double pred = model->PredictRuntime(cand, profile, descriptors);
      if (pred < refined_pred) {
        refined_pred = pred;
        refined = std::move(cand);
      }
    }
    if (Configuration::Diff(refined, best_cand).empty()) break;
    best_cand = std::move(refined);
    best_pred = refined_pred;
  }

  report_ = StrFormat(
      "profile: sel=%.3f map_cpu=%.4fs/MB reduce_cpu=%.4fs/MB skew=%.2f "
      "combiner_red=%.2f; what-if search %zu candidates, %zu validations "
      "(model best %.1fs)",
      profile.PropertyOr("map_selectivity", 0.0),
      profile.PropertyOr("map_cpu_s_per_mb", 0.0),
      profile.PropertyOr("reduce_cpu_s_per_mb", 0.0),
      profile.PropertyOr("reducer_skew", 1.0),
      profile.PropertyOr("combiner_reduction", 1.0), whatif_search_size_,
      validated, best_pred);
  return Status::OK();
}

}  // namespace atune
