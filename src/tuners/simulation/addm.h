#ifndef ATUNE_TUNERS_SIMULATION_ADDM_H_
#define ATUNE_TUNERS_SIMULATION_ADDM_H_

#include <string>
#include <vector>

#include "core/tuner.h"

namespace atune {

/// Automatic Database Diagnostic Monitor in the style of Oracle's ADDM
/// [Dias et al., CIDR'05]: attribute the run's time to components of an
/// internal wait/DB-time model (I/O, CPU, locks, commit, checkpoint, GC,
/// scheduling...), identify the dominant component, and apply that
/// component's documented remedy to the configuration; re-profile and
/// iterate. The diagnosis-to-remedy table below covers all three simulated
/// systems.
class AddmTuner : public Tuner {
 public:
  explicit AddmTuner(size_t max_iterations = 10)
      : max_iterations_(max_iterations) {}

  std::string name() const override { return "addm"; }
  TunerCategory category() const override {
    return TunerCategory::kSimulationBased;
  }
  Status Tune(Evaluator* evaluator, Rng* rng) override;
  std::string Report() const override { return report_; }

  /// One diagnosis step (exposed for tests): names the dominant component
  /// of `result` for `system_name` and produces the remedied config.
  static std::string DiagnoseAndFix(const std::string& system_name,
                                    const ExecutionResult& result,
                                    const ParameterSpace& space,
                                    const Configuration& current,
                                    Configuration* fixed);

 private:
  size_t max_iterations_;
  std::string report_;
};

}  // namespace atune

#endif  // ATUNE_TUNERS_SIMULATION_ADDM_H_
