#include "tuners/simulation/addm.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace atune {

namespace {

// Scales an integer knob by `factor`, staying in range.
void ScaleInt(Configuration* c, const std::string& name, double factor) {
  int64_t v = c->IntOr(name, 1);
  c->SetInt(name, static_cast<int64_t>(
                      std::max(1.0, std::round(static_cast<double>(v) * factor))));
}

std::string DiagnoseDbms(const ExecutionResult& r, const Configuration& cur,
                         Configuration* fix) {
  *fix = cur;
  const double runtime = std::max(r.runtime_seconds, 1e-6);
  const double swap = r.MetricOr("swap_penalty", 1.0);
  if (r.failed || swap > 1.5) {
    // Memory pressure beats everything: shed reservations.
    ScaleInt(fix, "buffer_pool_mb", 0.5);
    ScaleInt(fix, "work_mem_mb", 0.5);
    return "memory-pressure";
  }
  struct Component {
    const char* name;
    double share;
  };
  const double io = r.MetricOr("io_time_s", 0.0);
  const double cpu = r.MetricOr("cpu_time_s", 0.0);
  const double lock = r.MetricOr("lock_wait_s", 0.0) * 0.1;
  const double commit = r.MetricOr("commit_wait_s", 0.0);
  const double checkpoint = r.MetricOr("checkpoint_io_mb", 0.0) / 500.0;
  const double spill = r.MetricOr("spill_mb", 0.0);
  Component comps[] = {
      {"io", io / runtime},
      {"cpu", cpu / runtime},
      {"locks", lock / runtime},
      {"commit", commit / runtime},
      {"checkpoint", checkpoint / runtime},
  };
  const Component* top = &comps[0];
  for (const Component& c : comps) {
    if (c.share > top->share) top = &c;
  }
  std::string finding = top->name;
  if (finding == "io") {
    if (spill > 0.0 && r.MetricOr("buffer_hit_ratio", 1.0) > 0.8) {
      ScaleInt(fix, "work_mem_mb", 4.0);
      if (fix->Has("temp_compression")) fix->SetBool("temp_compression", true);
      return "io:spill";
    }
    ScaleInt(fix, "buffer_pool_mb", 1.6);
    ScaleInt(fix, "prefetch_depth", 2.0);
    ScaleInt(fix, "io_concurrency", 2.0);
    return "io:buffer-misses";
  }
  if (finding == "cpu") {
    ScaleInt(fix, "max_workers", 2.0);
    ScaleInt(fix, "stats_target", 3.0);
    return "cpu";
  }
  if (finding == "locks") {
    // Waits dominated by timeout-length stalls: shorten toward hold times.
    ScaleInt(fix, "deadlock_timeout_ms",
             r.MetricOr("deadlocks", 0.0) > 10.0 ? 0.4 : 2.0);
    return "locks";
  }
  if (finding == "commit") {
    fix->SetString("log_flush", cur.StringOr("log_flush", "immediate") ==
                                        "immediate"
                                    ? "group"
                                    : "async");
    ScaleInt(fix, "wal_buffer_mb", 2.0);
    return "commit";
  }
  ScaleInt(fix, "checkpoint_interval_s", 2.5);
  return "checkpoint";
}

std::string DiagnoseMr(const ExecutionResult& r, const Configuration& cur,
                       Configuration* fix) {
  *fix = cur;
  if (r.failed) {
    ScaleInt(fix, "task_memory_mb", 0.5);
    ScaleInt(fix, "io_sort_mb", 0.5);
    return "task-oom";
  }
  const double map_s = r.MetricOr("map_time_s", 0.0);
  const double shuffle_s = r.MetricOr("shuffle_time_s", 0.0);
  const double reduce_s = r.MetricOr("reduce_time_s", 0.0);
  const double spill_per_map =
      r.MetricOr("spill_count", 0.0) / std::max(1.0, r.MetricOr("map_tasks", 1.0));
  if (map_s >= shuffle_s && map_s >= reduce_s) {
    if (spill_per_map > 1.5) {
      ScaleInt(fix, "io_sort_mb", 2.5);
      ScaleInt(fix, "task_memory_mb", 2.0);
      return "map:spills";
    }
    if (r.MetricOr("map_waves", 1.0) > 3.0) {
      ScaleInt(fix, "map_slots_per_node", 2.0);
      ScaleInt(fix, "dfs_block_mb", 2.0);
      return "map:waves";
    }
    fix->SetBool("jvm_reuse", true);
    ScaleInt(fix, "dfs_block_mb", 2.0);
    return "map:startup";
  }
  if (shuffle_s >= reduce_s) {
    fix->SetBool("compress_map_output", true);
    fix->SetString("compress_codec", "lz4");
    fix->SetBool("combiner", true);
    ScaleInt(fix, "shuffle_parallel_copies", 3.0);
    return "shuffle";
  }
  if (r.MetricOr("reduce_waves", 1.0) > 1.5) {
    ScaleInt(fix, "reduce_slots_per_node", 2.0);
    return "reduce:waves";
  }
  ScaleInt(fix, "num_reducers", 4.0);
  return "reduce:parallelism";
}

std::string DiagnoseSpark(const ExecutionResult& r, const Configuration& cur,
                          Configuration* fix) {
  *fix = cur;
  if (r.failed) {
    // OOM or denied allocation: shrink request / raise partitions.
    ScaleInt(fix, "num_executors", 0.7);
    ScaleInt(fix, "shuffle_partitions", 2.0);
    return "allocation-failure";
  }
  const double runtime = std::max(r.runtime_seconds, 1e-6);
  const double gc = r.MetricOr("gc_time_s", 0.0);
  const double sched = r.MetricOr("scheduling_overhead_s", 0.0);
  const double spill = r.MetricOr("spill_mb", 0.0);
  const double cache_hit = r.MetricOr("cache_hit_ratio", 1.0);
  if (gc / runtime > 0.2) {
    fix->SetString("serializer", "kryo");
    ScaleInt(fix, "executor_memory_mb", 1.5);
    return "gc-pressure";
  }
  if (sched / runtime > 0.25) {
    ScaleInt(fix, "shuffle_partitions", 0.3);
    return "task-overhead";
  }
  if (spill > 100.0) {
    ScaleInt(fix, "shuffle_partitions", 2.0);
    fix->SetDouble("storage_fraction",
                   std::max(0.1, cur.DoubleOr("storage_fraction", 0.5) - 0.2));
    return "execution-spill";
  }
  if (cache_hit < 0.7) {
    fix->SetDouble("memory_fraction",
                   std::min(0.9, cur.DoubleOr("memory_fraction", 0.6) + 0.15));
    fix->SetDouble("storage_fraction",
                   std::min(0.9, cur.DoubleOr("storage_fraction", 0.5) + 0.2));
    fix->SetBool("rdd_compress", true);
    return "cache-misses";
  }
  // Default: scale out compute.
  ScaleInt(fix, "num_executors", 1.5);
  ScaleInt(fix, "executor_cores", 2.0);
  return "underprovisioned";
}

}  // namespace

std::string AddmTuner::DiagnoseAndFix(const std::string& system_name,
                                      const ExecutionResult& result,
                                      const ParameterSpace& space,
                                      const Configuration& current,
                                      Configuration* fixed) {
  std::string finding;
  if (system_name == "simulated-mapreduce") {
    finding = DiagnoseMr(result, current, fixed);
  } else if (system_name == "simulated-spark") {
    finding = DiagnoseSpark(result, current, fixed);
  } else {
    finding = DiagnoseDbms(result, current, fixed);
  }
  *fixed = space.FromUnitVector(space.ToUnitVector(*fixed));
  return finding;
}

Status AddmTuner::Tune(Evaluator* evaluator, Rng* rng) {
  (void)rng;
  const ParameterSpace& space = evaluator->space();
  const std::string system_name = evaluator->system()->name();

  Configuration current = space.DefaultConfiguration();
  auto obj = evaluator->Evaluate(current);
  if (!obj.ok()) return obj.status();
  double current_obj = *obj;
  ExecutionResult profile = evaluator->history().back().result;

  std::vector<std::string> findings;
  for (size_t iter = 0; iter < max_iterations_ && !evaluator->Exhausted();
       ++iter) {
    Configuration fixed;
    std::string finding =
        DiagnoseAndFix(system_name, profile, space, current, &fixed);
    if (Configuration::Diff(fixed, current).empty()) {
      findings.push_back(finding + "(no-op)");
      break;
    }
    auto next = evaluator->Evaluate(fixed);
    if (!next.ok()) {
      if (next.status().code() == StatusCode::kResourceExhausted) break;
      return next.status();
    }
    if (*next < current_obj) {
      findings.push_back(finding + "(kept)");
      current = std::move(fixed);
      current_obj = *next;
      profile = evaluator->history().back().result;
    } else {
      findings.push_back(finding + "(reverted)");
      // Remedy didn't help: keep the old config but adopt the new profile's
      // knowledge by falling through to the next-dominant component —
      // approximate by using the *new* profile for diagnosis next round.
      profile = evaluator->history().back().result;
    }
  }
  report_ = StrFormat("diagnosis chain: %s", Join(findings, " -> ").c_str());
  return Status::OK();
}

}  // namespace atune
