#include "tuners/simulation/trace_simulator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/string_util.h"

namespace atune {

namespace {

double Ratio(double hypothetical, double traced) {
  if (traced <= 0.0) return 1.0;
  return hypothetical / traced;
}

double Desc(const std::map<std::string, double>& d, const std::string& key,
            double fallback) {
  auto it = d.find(key);
  return it == d.end() ? fallback : it->second;
}

// DBMS: scale io/spill/commit/lock components by resource ratios.
double PredictDbms(const Configuration& t, const ExecutionResult& trace,
                   const Configuration& h,
                   const std::map<std::string, double>& desc) {
  double io = trace.MetricOr("io_time_s", 0.0);
  double cpu = trace.MetricOr("cpu_time_s", 0.0);
  double lock = trace.MetricOr("lock_wait_s", 0.0);
  double commit = trace.MetricOr("commit_wait_s", 0.0);
  double swap = trace.MetricOr("swap_penalty", 1.0);

  // Buffer pool: misses scale roughly inversely with pool size^0.7.
  double pool_ratio = Ratio(
      static_cast<double>(h.IntOr("buffer_pool_mb", 512)),
      static_cast<double>(t.IntOr("buffer_pool_mb", 512)));
  double hit0 = trace.MetricOr("buffer_hit_ratio", 0.5);
  double miss_scale = std::pow(std::max(pool_ratio, 1e-3), -0.7);
  double miss1 = std::clamp((1.0 - hit0) * miss_scale, 0.0, 1.0);
  double io_scaled = io * (hit0 < 1.0 ? miss1 / (1.0 - hit0) : 1.0);

  // Spill: shrinks with work_mem; vanishes once the ratio is large.
  double spill_mb = trace.MetricOr("spill_mb", 0.0);
  if (spill_mb > 0.0) {
    double wm_ratio = Ratio(static_cast<double>(h.IntOr("work_mem_mb", 4)),
                            static_cast<double>(t.IntOr("work_mem_mb", 4)));
    double spill_scale = wm_ratio >= 8.0 ? 0.0 : 1.0 / wm_ratio;
    // The traced io_time includes spills; adjust its spill share.
    double spill_share = std::min(0.8, spill_mb / (spill_mb + 1000.0));
    io_scaled *= (1.0 - spill_share) + spill_share * spill_scale;
  }

  // I/O concurrency & prefetch raise effective bandwidth mildly.
  double io_conc_ratio = Ratio(
      static_cast<double>(h.IntOr("io_concurrency", 4)),
      static_cast<double>(t.IntOr("io_concurrency", 4)));
  io_scaled /= std::pow(std::max(io_conc_ratio, 0.1), 0.2);

  // Workers speed up CPU sub-linearly.
  double worker_ratio = Ratio(static_cast<double>(h.IntOr("max_workers", 2)),
                              static_cast<double>(t.IntOr("max_workers", 2)));
  double cpu_scaled = cpu / std::pow(std::max(worker_ratio, 0.05), 0.6);

  // Commit policy: relative fsync burden.
  auto flush_cost = [](const std::string& policy) {
    if (policy == "group") return 0.2;
    if (policy == "async") return 0.02;
    return 1.0;
  };
  double commit_scaled = commit * flush_cost(h.StringOr("log_flush", "immediate")) /
                         flush_cost(t.StringOr("log_flush", "immediate"));

  // Deadlock timeout: waits scale with min(timeout, hold); crude ratio.
  double to_ratio = Ratio(
      static_cast<double>(h.IntOr("deadlock_timeout_ms", 1000)),
      static_cast<double>(t.IntOr("deadlock_timeout_ms", 1000)));
  double lock_scaled = lock * std::pow(std::clamp(to_ratio, 0.1, 10.0), 0.3);

  // Memory pressure: recompute the reservation against actual RAM. The
  // traced reservation is bp + sessions*workers*work_mem + wal + overhead;
  // back out the per-work_mem-MB multiplier (sessions * workers) from the
  // trace, then re-assemble for the hypothetical configuration.
  double reserved0 = trace.MetricOr("mem_reserved_mb", 1024.0);
  double bp0 = static_cast<double>(t.IntOr("buffer_pool_mb", 512));
  double wm0 = std::max(1.0, static_cast<double>(t.IntOr("work_mem_mb", 4)));
  double workers0 = std::max(1.0, static_cast<double>(t.IntOr("max_workers", 2)));
  double wal0 = static_cast<double>(t.IntOr("wal_buffer_mb", 16));
  double sessions =
      std::max(0.0, (reserved0 - bp0 - wal0 - 256.0) / (wm0 * workers0));
  double reserved1 =
      static_cast<double>(h.IntOr("buffer_pool_mb", 512)) +
      sessions * std::max(1.0, static_cast<double>(h.IntOr("max_workers", 2))) *
          static_cast<double>(h.IntOr("work_mem_mb", 4)) +
      static_cast<double>(h.IntOr("wal_buffer_mb", 16)) + 256.0;
  double ram = Desc(desc, "total_ram_mb", 16384.0);
  if (reserved1 > 1.2 * ram) {
    // The hypothetical configuration would be OOM-killed.
    return trace.runtime_seconds * 100.0;
  }
  double over = std::max(0.0, reserved1 / ram - 1.0);
  double swap1 = 1.0 + 25.0 * over * over;

  double other = std::max(0.0, trace.runtime_seconds -
                                   (std::max(io, cpu) + commit + lock * 0.1));
  return std::max(io_scaled * swap1 / swap, cpu_scaled) + commit_scaled +
         lock_scaled * 0.1 + other;
}

// MapReduce: scale phase times by wave/volume ratios.
double PredictMr(const Configuration& t, const ExecutionResult& trace,
                 const Configuration& h,
                 const std::map<std::string, double>& desc) {
  double map_s = trace.MetricOr("map_time_s", 0.0);
  double shuffle_s = trace.MetricOr("shuffle_time_s", 0.0);
  double reduce_s = trace.MetricOr("reduce_time_s", 0.0);

  double maps = std::max(1.0, trace.MetricOr("map_tasks", 1.0));
  double block_ratio = Ratio(static_cast<double>(h.IntOr("dfs_block_mb", 64)),
                             static_cast<double>(t.IntOr("dfs_block_mb", 64)));
  double maps1 = std::ceil(maps / block_ratio);
  double mslots_ratio =
      Ratio(static_cast<double>(h.IntOr("map_slots_per_node", 2)),
            static_cast<double>(t.IntOr("map_slots_per_node", 2)));
  // Map phase ~ waves * per-task(α block); per-task time scales with block.
  double waves0 = std::max(1.0, trace.MetricOr("map_waves", 1.0));
  double waves1 = std::max(1.0, std::ceil(waves0 * (maps1 / maps) /
                                          mslots_ratio));
  double map_scaled = map_s * (waves1 / waves0) * block_ratio;

  // Shuffle volume: compression and combiner toggles change wire bytes.
  double vol_ratio = 1.0;
  bool c0 = t.BoolOr("compress_map_output", false);
  bool c1 = h.BoolOr("compress_map_output", false);
  if (c0 != c1) vol_ratio *= c1 ? 0.5 : 2.0;
  bool k0 = t.BoolOr("combiner", false);
  bool k1 = h.BoolOr("combiner", false);
  if (k0 != k1) vol_ratio *= k1 ? 0.4 : 2.5;
  double copies_ratio = Ratio(
      static_cast<double>(h.IntOr("shuffle_parallel_copies", 5)),
      static_cast<double>(t.IntOr("shuffle_parallel_copies", 5)));
  double shuffle_scaled =
      shuffle_s * vol_ratio / std::pow(std::max(copies_ratio, 0.1), 0.4);

  double red_ratio = Ratio(static_cast<double>(h.IntOr("num_reducers", 1)),
                           static_cast<double>(t.IntOr("num_reducers", 1)));
  // Waves recomputed from the hypothetical reducer count and the cluster's
  // reduce-slot capacity (slots per node x nodes, both known).
  double nodes = Desc(desc, "num_nodes", 4.0);
  double slots1 =
      std::max(1.0, static_cast<double>(h.IntOr("reduce_slots_per_node", 2)) *
                        nodes);
  double rwaves0 = std::max(1.0, trace.MetricOr("reduce_waves", 1.0));
  double rwaves1 = std::max(
      1.0, std::ceil(static_cast<double>(h.IntOr("num_reducers", 1)) / slots1));
  // Per-reducer volume shrinks with the reducer count; the phase runs
  // rwaves1 waves of those smaller reducers.
  double reduce_scaled =
      reduce_s * vol_ratio * (rwaves1 / rwaves0) / red_ratio;

  double sort_ratio = Ratio(static_cast<double>(h.IntOr("io_sort_mb", 100)),
                            static_cast<double>(t.IntOr("io_sort_mb", 100)));
  if (trace.MetricOr("spill_count", 0.0) >
      trace.MetricOr("map_tasks", 1.0) * 1.5) {
    map_scaled /= std::pow(std::max(sort_ratio, 0.1), 0.3);
  }
  return map_scaled + shuffle_scaled + reduce_scaled + 3.0;
}

// Spark: scale by core grant, partitions and memory plan ratios.
double PredictSpark(const Configuration& t, const ExecutionResult& trace,
                    const Configuration& h,
                    const std::map<std::string, double>& desc) {
  double cores0 = std::max(1.0, trace.MetricOr("granted_cores", 2.0));
  double cores1 = static_cast<double>(h.IntOr("num_executors", 2) *
                                      h.IntOr("executor_cores", 1));
  double base = trace.runtime_seconds;
  // Compute scales with granted cores (sub-linear), overhead with tasks.
  double sched = trace.MetricOr("scheduling_overhead_s", 0.0);
  double parts_ratio = Ratio(
      static_cast<double>(h.IntOr("shuffle_partitions", 200)),
      static_cast<double>(t.IntOr("shuffle_partitions", 200)));
  double mem_ratio = Ratio(
      static_cast<double>(h.IntOr("executor_memory_mb", 1024) *
                          h.IntOr("num_executors", 2)),
      static_cast<double>(t.IntOr("executor_memory_mb", 1024) *
                          t.IntOr("num_executors", 2)));
  double spill = trace.MetricOr("spill_mb", 0.0);
  double gc = trace.MetricOr("gc_time_s", 0.0);
  bool kryo1 = h.StringOr("serializer", "java") == "kryo";
  bool kryo0 = t.StringOr("serializer", "java") == "kryo";
  // Requests beyond the cluster will simply be denied.
  if (static_cast<double>(h.IntOr("num_executors", 2) *
                          h.IntOr("executor_memory_mb", 1024)) >
          Desc(desc, "total_ram_mb", 65536.0) * 0.95 ||
      cores1 > Desc(desc, "total_cores", 32.0)) {
    return base * 100.0;
  }

  double compute = std::max(0.0, base - sched - gc);
  double scaled = compute / std::pow(std::max(cores1 / cores0, 0.05), 0.8);
  // Per-task overhead follows the partition count.
  scaled += sched * parts_ratio;
  // GC eases with memory and kryo.
  double gc_scale = 1.0 / std::max(mem_ratio, 0.2);
  if (kryo1 != kryo0) gc_scale *= kryo1 ? 0.5 : 2.0;
  scaled += gc * gc_scale;
  // Spill shrinks with per-task memory (memory up or partitions up).
  if (spill > 0.0) {
    double relief = mem_ratio * parts_ratio;
    scaled -= std::min(scaled * 0.2, spill / 500.0 * std::log2(
                                         std::max(relief, 1.0)));
  }
  return std::max(scaled, base * 0.1);
}

}  // namespace

double TraceSimulatorTuner::PredictFromTrace(
    const std::string& system_name, const Configuration& traced,
    const ExecutionResult& trace, const Configuration& h,
    const std::map<std::string, double>& descriptors) {
  if (system_name == "simulated-mapreduce") {
    return PredictMr(traced, trace, h, descriptors);
  }
  if (system_name == "simulated-spark") {
    return PredictSpark(traced, trace, h, descriptors);
  }
  return PredictDbms(traced, trace, h, descriptors);
}

Status TraceSimulatorTuner::Tune(Evaluator* evaluator, Rng* rng) {
  const ParameterSpace& space = evaluator->space();
  const std::string system_name = evaluator->system()->name();
  const std::map<std::string, double> descriptors =
      evaluator->system()->Descriptors();

  Configuration traced_config = space.DefaultConfiguration();
  auto base = evaluator->Evaluate(traced_config);
  if (!base.ok()) return base.status();
  ExecutionResult trace = evaluator->history().back().result;

  size_t validated = 0;
  size_t recaptures = 0;
  while (!evaluator->Exhausted() && validated < validation_runs_) {
    // Free what-if search against the current trace.
    Configuration best_cand = traced_config;
    double best_pred = PredictFromTrace(system_name, traced_config, trace,
                                        traced_config, descriptors);
    for (size_t i = 0; i < whatif_search_size_; ++i) {
      Configuration cand = i % 4 == 0
                               ? space.Neighbor(best_cand, 0.15, rng)
                               : space.RandomConfiguration(rng);
      double pred = PredictFromTrace(system_name, traced_config, trace, cand,
                                     descriptors);
      if (pred < best_pred) {
        best_pred = pred;
        best_cand = std::move(cand);
      }
    }
    auto obj = evaluator->Evaluate(best_cand);
    if (!obj.ok()) {
      if (obj.status().code() == StatusCode::kResourceExhausted) break;
      return obj.status();
    }
    ++validated;
    // Re-capture: the new run is a fresh trace from a better region.
    const Trial& last = evaluator->history().back();
    if (!last.result.failed && last.objective < evaluator->best()->objective * 1.5) {
      traced_config = last.config;
      trace = last.result;
      ++recaptures;
    }
  }
  report_ = StrFormat(
      "captured trace at defaults (%.2fs), %zu what-if validations, %zu "
      "trace recaptures over a %zu-candidate what-if search each",
      *base, validated, recaptures, whatif_search_size_);
  return Status::OK();
}

}  // namespace atune
