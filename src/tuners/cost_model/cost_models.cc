#include "tuners/cost_model/cost_models.h"

#include <algorithm>
#include <cmath>

namespace atune {

namespace {

double Desc(const std::map<std::string, double>& d, const std::string& key,
            double fallback) {
  auto it = d.find(key);
  return it == d.end() ? fallback : it->second;
}

// --- DBMS ------------------------------------------------------------

class DbmsCostModel : public CostModel {
 public:
  std::string name() const override { return "dbms-cost-model"; }

  double PredictRuntime(
      const Configuration& config, const Workload& workload,
      const std::map<std::string, double>& d) const override {
    if (workload.kind == "oltp") return PredictOltp(config, workload, d);
    if (workload.kind == "mixed") {
      return 0.75 * (PredictOltp(config, workload, d) +
                     PredictOlap(config, workload, d));
    }
    return PredictOlap(config, workload, d);
  }

 private:
  // First-order buffer model: hit ratio linear-ish in coverage (the real
  // system's curve is skew-dependent and concave — a modeling gap).
  static double Hit(double pool_mb, double ws_mb) {
    return std::clamp(pool_mb / std::max(ws_mb, 1.0), 0.0, 0.98);
  }

  double PredictOlap(const Configuration& config, const Workload& w,
                     const std::map<std::string, double>& d) const {
    double data_mb = w.PropertyOr("data_mb", 4096.0) * w.scale;
    double queries = std::max(1.0, w.PropertyOr("queries", 20.0));
    double clients = std::max(1.0, w.PropertyOr("clients", 4.0));
    double selectivity = std::clamp(w.PropertyOr("selectivity", 0.4), 0.01, 1.0);
    double sort_frac = w.PropertyOr("sort_frac", 0.25);
    double bp = static_cast<double>(config.IntOr("buffer_pool_mb", 512));
    double wm = static_cast<double>(config.IntOr("work_mem_mb", 4));
    double workers = static_cast<double>(config.IntOr("max_workers", 2));
    double cores = Desc(d, "total_cores", 8.0);
    double disk = Desc(d, "disk_mbps", 200.0) * Desc(d, "num_nodes", 1.0);
    double ram = Desc(d, "total_ram_mb", 16384.0);

    double scan_mb = queries * selectivity * data_mb;
    double read_mb = scan_mb * (1.0 - Hit(bp, selectivity * data_mb));
    double io_s = read_mb / disk;
    double need = sort_frac * selectivity * data_mb;
    // Graded spill: the shortfall is written and re-read once per query
    // (the real engine's multi-pass merges are sharper, but the model
    // keeps a smooth gradient for cost-benefit analysis).
    double spill_mb =
        need > wm ? 2.0 * (need - wm) * (1.0 + need / (wm + need)) * queries
                  : 0.0;
    io_s += spill_mb / disk;
    double cpu_s = scan_mb * 0.0015 + queries * 0.05;
    cpu_s /= std::min(workers * clients, cores);
    // Memory pressure: linear penalty only (the cliff is sharper in truth).
    double reserved = bp + clients * workers * wm + 256.0;
    double pressure = std::max(0.0, reserved / ram - 1.0);
    return (std::max(io_s, cpu_s) + 0.3 * std::min(io_s, cpu_s)) *
           (1.0 + 10.0 * pressure) + queries * 0.01;
  }

  double PredictOltp(const Configuration& config, const Workload& w,
                     const std::map<std::string, double>& d) const {
    double txns = w.PropertyOr("txns", 200000.0) * w.scale;
    double clients = std::max(1.0, w.PropertyOr("clients", 32.0));
    double read_ratio = std::clamp(w.PropertyOr("read_ratio", 0.8), 0.0, 1.0);
    double ws = w.PropertyOr("working_set_mb", 2048.0) * w.scale;
    double bp = static_cast<double>(config.IntOr("buffer_pool_mb", 512));
    double timeout = static_cast<double>(config.IntOr("deadlock_timeout_ms", 1000));
    std::string flush = config.StringOr("log_flush", "immediate");
    double cores = Desc(d, "total_cores", 8.0);
    double iops = Desc(d, "disk_iops", 500.0) * Desc(d, "num_nodes", 1.0);
    double ram = Desc(d, "total_ram_mb", 16384.0);

    double reads = txns * (1.0 + 4.0 * read_ratio);
    double misses = reads * (1.0 - Hit(bp, ws));
    double io_s = misses / (iops * 4.0);  // overlapped random reads
    double cpu_s = txns * 0.00025 / std::min(clients, cores);
    double commit_s = 0.0;
    if (flush == "immediate") {
      commit_s = txns * 0.002 / clients;
    } else if (flush == "group") {
      commit_s = txns * 0.002 / clients / std::min(clients, 8.0);
    }
    // The model knows short timeouts cause aborts but uses a crude linear
    // proxy and misses the storm cliff.
    double abort_penalty = timeout < 200.0 ? (200.0 - timeout) / 200.0 : 0.0;
    double reserved = bp + clients * 4.0 + 256.0;
    double pressure = std::max(0.0, reserved / ram - 1.0);
    return (std::max(io_s, cpu_s) + commit_s) *
           (1.0 + abort_penalty) * (1.0 + 10.0 * pressure);
  }
};

// --- MapReduce -----------------------------------------------------------

class MrCostModel : public CostModel {
 public:
  std::string name() const override { return "mapreduce-cost-model"; }

  double PredictRuntime(
      const Configuration& config, const Workload& w,
      const std::map<std::string, double>& d) const override {
    double input_mb = w.PropertyOr("input_mb", 10240.0) * w.scale;
    double sel = w.PropertyOr("map_selectivity", 1.0);
    double map_cpu = w.PropertyOr("map_cpu_s_per_mb", 0.004);
    double reduce_cpu = w.PropertyOr("reduce_cpu_s_per_mb", 0.003);
    double jobs = std::max(1.0, w.PropertyOr("num_jobs", 1.0));

    double block = static_cast<double>(config.IntOr("dfs_block_mb", 64));
    double mslots = static_cast<double>(config.IntOr("map_slots_per_node", 2));
    double rslots =
        static_cast<double>(config.IntOr("reduce_slots_per_node", 2));
    double reducers = static_cast<double>(config.IntOr("num_reducers", 1));
    double sortmb = static_cast<double>(config.IntOr("io_sort_mb", 100));
    double task_mem = static_cast<double>(config.IntOr("task_memory_mb", 512));

    // Hard feasibility limits the what-if engine knows from the config
    // documentation: the sort buffer must fit the task heap, and the slots'
    // heaps must fit node memory.
    if (sortmb > 0.8 * task_mem) return 1e6;
    if ((mslots + rslots) * task_mem > Desc(d, "node_ram_mb", 8192.0) * 1.05) {
      return 1e6;
    }
    bool compress = config.BoolOr("compress_map_output", false);
    bool combiner = config.BoolOr("combiner", false);
    bool jvm_reuse = config.BoolOr("jvm_reuse", false);

    double nodes = Desc(d, "num_nodes", 4.0);
    double disk = Desc(d, "disk_mbps", 200.0);
    double net = Desc(d, "network_mbps", 1000.0) * nodes;

    double maps = std::ceil(input_mb / block);
    double map_waves = std::ceil(maps / (mslots * nodes));
    double out_per_map = block * sel;
    if (combiner) out_per_map *= w.PropertyOr("combiner_reduction", 1.0);
    double ratio = compress ? 0.5 : 1.0;
    double spills = out_per_map * ratio > sortmb * 0.8 ? 2.0 : 1.0;
    double startup = jvm_reuse ? 0.3 : 2.0;
    double map_task = startup + block / (disk / mslots) +
                      block * map_cpu +
                      out_per_map * ratio * spills / (disk / mslots);
    double map_s = map_waves * map_task;

    double shuffle_mb = out_per_map * ratio * maps;
    double shuffle_s = shuffle_mb / std::min(net, reducers * 50.0);

    double rwaves = std::ceil(reducers / (rslots * nodes));
    double per_red = out_per_map * maps / reducers;
    double red_task = startup + per_red * reduce_cpu +
                      per_red * 2.0 / (disk / rslots);
    double reduce_s = rwaves * red_task;
    // No skew, no stragglers, no merge passes: simplified assumptions.
    return jobs * (map_s + shuffle_s + reduce_s + 3.0);
  }
};

// --- Spark ---------------------------------------------------------------

class SparkCostModel : public CostModel {
 public:
  std::string name() const override { return "spark-cost-model"; }

  double PredictRuntime(
      const Configuration& config, const Workload& w,
      const std::map<std::string, double>& d) const override {
    double data_mb = w.PropertyOr("data_mb", 8192.0) * w.scale;
    double units = std::max(
        1.0, w.kind == "iterative_ml" ? w.PropertyOr("iterations", 10.0)
             : w.kind == "streaming"  ? w.PropertyOr("batches", 20.0)
                                      : w.PropertyOr("queries", 10.0));
    double execs = static_cast<double>(config.IntOr("num_executors", 2));
    double cores = static_cast<double>(config.IntOr("executor_cores", 1));
    double mem = static_cast<double>(config.IntOr("executor_memory_mb", 1024));
    double mem_frac = config.DoubleOr("memory_fraction", 0.6);
    double stor_frac = config.DoubleOr("storage_fraction", 0.5);
    double parts = static_cast<double>(config.IntOr("shuffle_partitions", 200));
    bool kryo = config.StringOr("serializer", "java") == "kryo";

    double total_cores = Desc(d, "total_cores", 32.0);
    double total_ram = Desc(d, "total_ram_mb", 65536.0);
    double disk = Desc(d, "disk_mbps", 200.0) * Desc(d, "num_nodes", 4.0);

    double granted = std::min(execs * cores, total_cores);
    if (execs * mem > total_ram) return 1e6;  // won't launch

    double cpu_per_mb = w.PropertyOr("cpu_s_per_mb", 0.005);
    double batch_mb = w.kind == "streaming" ? w.PropertyOr("batch_mb", 64.0)
                                            : data_mb;
    double scan_tasks = std::ceil(batch_mb / 128.0);
    double expansion = kryo ? 1.6 : 2.8;
    double exec_mem_per_task =
        (mem - 300.0) * mem_frac * (1.0 - stor_frac) / std::max(1.0, cores);

    double unit_s = 0.0;
    // Scan stage.
    double scan_waves = std::ceil(scan_tasks / granted);
    double per_task_mb = batch_mb / scan_tasks;
    double cache_cap = (mem - 300.0) * mem_frac * stor_frac * execs;
    double cache_hit =
        w.kind == "iterative_ml"
            ? std::clamp(cache_cap / (data_mb * expansion), 0.0, 1.0)
            : 0.0;
    double read_s = per_task_mb * (1.0 - cache_hit) / (disk / granted);
    unit_s += scan_waves * (0.08 + read_s + per_task_mb * cpu_per_mb);
    // Shuffle/agg stage.
    double shuffle_mb = batch_mb * w.PropertyOr("shuffle_selectivity", 0.5);
    double agg_tasks = parts;
    double agg_waves = std::ceil(agg_tasks / granted);
    double agg_per_task = shuffle_mb / agg_tasks;
    double spill = agg_per_task * expansion > exec_mem_per_task ? 2.0 : 1.0;
    unit_s += agg_waves *
              (0.08 + agg_per_task * spill / (disk / granted) +
               agg_per_task * 0.006);
    // GC/serializer first-order effect only.
    unit_s *= kryo ? 1.03 : 1.10;
    return units * (unit_s + 0.4) + 4.0;
  }
};

}  // namespace

std::unique_ptr<CostModel> MakeDbmsCostModel() {
  return std::make_unique<DbmsCostModel>();
}
std::unique_ptr<CostModel> MakeMapReduceCostModel() {
  return std::make_unique<MrCostModel>();
}
std::unique_ptr<CostModel> MakeSparkCostModel() {
  return std::make_unique<SparkCostModel>();
}

std::unique_ptr<CostModel> MakeCostModelForSystem(
    const std::string& system_name) {
  if (system_name == "simulated-mapreduce") return MakeMapReduceCostModel();
  if (system_name == "simulated-spark") return MakeSparkCostModel();
  return MakeDbmsCostModel();
}

}  // namespace atune
