#include "tuners/cost_model/stmm.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "tuners/cost_model/cost_models.h"

namespace atune {

Status StmmTuner::Tune(Evaluator* evaluator, Rng* rng) {
  (void)rng;
  if (evaluator->system()->name() != "simulated-dbms") {
    return Status::FailedPrecondition(
        "stmm redistributes DBMS memory consumers; system is not a DBMS");
  }
  const ParameterSpace& space = evaluator->space();
  std::map<std::string, double> descriptors =
      evaluator->system()->Descriptors();
  const Workload& workload = evaluator->workload();
  std::unique_ptr<CostModel> model = MakeDbmsCostModel();

  const double ram = [&] {
    auto it = descriptors.find("total_ram_mb");
    return it == descriptors.end() ? 16384.0 : it->second;
  }();
  const double clients = std::max(1.0, workload.PropertyOr("clients", 16.0));
  const double budget = ram * budget_fraction_;

  // Consumers and their current allocations (MB of budget each owns).
  // work_mem is per client, so its budget share is work_mem * clients.
  Configuration config = space.DefaultConfiguration();
  double buffer_pool = 0.25 * budget;
  double work_total = 0.10 * budget;
  double wal = std::min(64.0, 0.01 * budget);

  auto apply = [&](Configuration* c) {
    c->SetInt("buffer_pool_mb",
              std::max<int64_t>(64, static_cast<int64_t>(buffer_pool)));
    c->SetInt("work_mem_mb",
              std::max<int64_t>(
                  1, static_cast<int64_t>(work_total / clients)));
    c->SetInt("wal_buffer_mb",
              std::max<int64_t>(1, static_cast<int64_t>(wal)));
    *c = space.FromUnitVector(space.ToUnitVector(*c));
  };

  auto predict = [&]() {
    Configuration c = config;
    apply(&c);
    return model->PredictRuntime(c, workload, descriptors);
  };

  // Cost-benefit loop: trial-move an increment between every ordered pair
  // of consumers; take the move with the best predicted benefit; stop when
  // no move helps. This is STMM's greedy equilibrium search.
  const double step = budget * 0.02;
  int moves = 0;
  for (int iter = 0; iter < 200; ++iter) {
    double base = predict();
    double best_gain = 1e-6;
    int best_from = -1, best_to = -1;
    double* pools[3] = {&buffer_pool, &work_total, &wal};
    for (int from = 0; from < 3; ++from) {
      for (int to = 0; to < 3; ++to) {
        if (from == to || *pools[from] <= step) continue;
        *pools[from] -= step;
        *pools[to] += step;
        double gain = base - predict();
        *pools[from] += step;
        *pools[to] -= step;
        if (gain > best_gain) {
          best_gain = gain;
          best_from = from;
          best_to = to;
        }
      }
    }
    if (best_from < 0) break;
    *pools[best_from] -= step;
    *pools[best_to] += step;
    ++moves;
  }

  apply(&config);
  report_ = StrFormat(
      "equilibrium after %d transfers: buffer_pool=%.0f MB, work_mem=%.0f "
      "MB/client, wal=%.0f MB (budget %.0f MB)",
      moves, buffer_pool, work_total / clients, wal, budget);
  if (!evaluator->Exhausted()) {
    ATUNE_ASSIGN_OR_RETURN(double obj, evaluator->Evaluate(config));
    (void)obj;
  }
  return Status::OK();
}

}  // namespace atune
