#ifndef ATUNE_TUNERS_COST_MODEL_COST_MODEL_TUNER_H_
#define ATUNE_TUNERS_COST_MODEL_COST_MODEL_TUNER_H_

#include <memory>
#include <string>

#include "core/tuner.h"
#include "tuners/cost_model/cost_models.h"

namespace atune {

/// Cost-modeling tuner (paper category 2): optimizes the white-box model's
/// predicted runtime with a large random + local search — model evaluations
/// are nearly free — then spends a handful of real runs validating the top
/// predicted configurations. "Very efficient for predicting performance"
/// but only as good as the model's assumptions (Table 1).
class CostModelTuner : public Tuner {
 public:
  /// `model_search_size`: candidate configurations scored on the model.
  /// `validation_runs`: top-k predicted configs measured for real.
  explicit CostModelTuner(size_t model_search_size = 3000,
                          size_t validation_runs = 3)
      : model_search_size_(model_search_size),
        validation_runs_(validation_runs) {}

  std::string name() const override { return "cost-model"; }
  TunerCategory category() const override {
    return TunerCategory::kCostModeling;
  }
  Status Tune(Evaluator* evaluator, Rng* rng) override;
  std::string Report() const override { return report_; }

 private:
  size_t model_search_size_;
  size_t validation_runs_;
  std::string report_;
};

}  // namespace atune

#endif  // ATUNE_TUNERS_COST_MODEL_COST_MODEL_TUNER_H_
