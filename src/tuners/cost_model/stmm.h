#ifndef ATUNE_TUNERS_COST_MODEL_STMM_H_
#define ATUNE_TUNERS_COST_MODEL_STMM_H_

#include <string>

#include "core/tuner.h"

namespace atune {

/// Self-Tuning Memory Manager in the style of DB2's STMM [Storm et al.,
/// VLDB'06]: distributes a fixed memory budget among memory consumers
/// (buffer pool, sort/hash work memory, WAL buffer) by *cost-benefit
/// analysis* — repeatedly move a memory increment from the consumer with
/// the smallest marginal benefit to the one with the largest, where
/// marginal benefits come from an analytical model (saved disk seconds per
/// MB). Converges to an equilibrium allocation without experiments, then
/// validates with one real run.
///
/// DBMS-specific (the knobs it redistributes are buffer_pool_mb,
/// work_mem_mb, wal_buffer_mb); on other systems Tune returns
/// FailedPrecondition.
class StmmTuner : public Tuner {
 public:
  /// `memory_budget_fraction`: share of RAM the consumers may use together.
  explicit StmmTuner(double memory_budget_fraction = 0.8)
      : budget_fraction_(memory_budget_fraction) {}

  std::string name() const override { return "stmm"; }
  TunerCategory category() const override {
    return TunerCategory::kCostModeling;
  }
  Status Tune(Evaluator* evaluator, Rng* rng) override;
  std::string Report() const override { return report_; }

 private:
  double budget_fraction_;
  std::string report_;
};

}  // namespace atune

#endif  // ATUNE_TUNERS_COST_MODEL_STMM_H_
