#include "tuners/cost_model/cost_model_tuner.h"

#include <algorithm>
#include <vector>

#include "common/string_util.h"

namespace atune {

Status CostModelTuner::Tune(Evaluator* evaluator, Rng* rng) {
  const ParameterSpace& space = evaluator->space();
  std::unique_ptr<CostModel> model =
      MakeCostModelForSystem(evaluator->system()->name());
  std::map<std::string, double> descriptors =
      evaluator->system()->Descriptors();
  const Workload& workload = evaluator->workload();

  // Phase 1: free search on the model.
  struct Scored {
    Configuration config;
    double predicted;
  };
  std::vector<Scored> pool;
  pool.reserve(model_search_size_);
  pool.push_back({space.DefaultConfiguration(), 0.0});
  for (size_t i = 1; i < model_search_size_; ++i) {
    pool.push_back({space.RandomConfiguration(rng), 0.0});
  }
  for (Scored& s : pool) {
    s.predicted = model->PredictRuntime(s.config, workload, descriptors);
  }
  std::sort(pool.begin(), pool.end(), [](const Scored& a, const Scored& b) {
    return a.predicted < b.predicted;
  });

  // Local refinement around the model optimum.
  Scored best = pool.front();
  for (int iter = 0; iter < 200; ++iter) {
    Configuration cand = space.Neighbor(best.config, 0.05, rng);
    double pred = model->PredictRuntime(cand, workload, descriptors);
    if (pred < best.predicted) best = {std::move(cand), pred};
  }

  // Phase 2: validate the few best predictions with real runs.
  size_t validated = 0;
  std::vector<Scored> candidates;
  candidates.push_back(best);
  for (size_t i = 1; i < pool.size() && candidates.size() < validation_runs_;
       ++i) {
    candidates.push_back(pool[i]);
  }
  double first_real = 0.0;
  for (const Scored& s : candidates) {
    if (evaluator->Exhausted()) break;
    auto obj = evaluator->Evaluate(s.config);
    if (!obj.ok()) {
      if (obj.status().code() == StatusCode::kResourceExhausted) break;
      return obj.status();
    }
    if (validated == 0) first_real = *obj;
    ++validated;
  }
  report_ = StrFormat(
      "scored %zu configs on %s (model best %.2fs); validated %zu with real "
      "runs (first measured %.2fs)",
      model_search_size_, model->name().c_str(), best.predicted, validated,
      first_real);
  return Status::OK();
}

}  // namespace atune
