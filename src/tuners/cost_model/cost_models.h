#ifndef ATUNE_TUNERS_COST_MODEL_COST_MODELS_H_
#define ATUNE_TUNERS_COST_MODEL_COST_MODELS_H_

#include <map>
#include <memory>
#include <string>

#include "core/configuration.h"
#include "core/system.h"

namespace atune {

/// A white-box analytical performance model, built from "a deep
/// understanding of system internals" (paper §2.1, category 2) rather than
/// from measurements. Deliberately simpler than the simulators it predicts:
/// it captures first-order effects (buffer hits, spills, waves, shuffle
/// volume) but omits noise, stragglers/heterogeneity, optimizer-statistics
/// effects, GC dynamics and burst stalls — exactly the "models based on
/// simplified assumptions" weakness Table 1 lists.
class CostModel {
 public:
  virtual ~CostModel() = default;
  virtual std::string name() const = 0;
  /// Predicted runtime in seconds (no failure modeling beyond huge values).
  virtual double PredictRuntime(
      const Configuration& config, const Workload& workload,
      const std::map<std::string, double>& descriptors) const = 0;
};

/// Model for SimulatedDbms (buffer pool / work_mem / commit path).
std::unique_ptr<CostModel> MakeDbmsCostModel();
/// Model for SimulatedMapReduce (waves / spills / shuffle).
std::unique_ptr<CostModel> MakeMapReduceCostModel();
/// Model for SimulatedSpark (stage waves / memory plan / shuffle).
std::unique_ptr<CostModel> MakeSparkCostModel();

/// Picks the model matching a system name; defaults to the DBMS model.
std::unique_ptr<CostModel> MakeCostModelForSystem(
    const std::string& system_name);

}  // namespace atune

#endif  // ATUNE_TUNERS_COST_MODEL_COST_MODELS_H_
