#include "tuners/builtin.h"

#include <memory>

#include "tuners/adaptive/adaptive_memory.h"
#include "tuners/adaptive/colt.h"
#include "tuners/adaptive/stage_retuner.h"
#include "tuners/cost_model/cost_model_tuner.h"
#include "tuners/cost_model/stmm.h"
#include "tuners/experiment/adaptive_sampling.h"
#include "tuners/experiment/ituned.h"
#include "tuners/experiment/sard.h"
#include "tuners/experiment/search_baselines.h"
#include "tuners/ml_tuners/ernest.h"
#include "tuners/ml_tuners/grey_box.h"
#include "tuners/ml_tuners/ottertune.h"
#include "tuners/ml_tuners/rodd_nn.h"
#include "tuners/rule_based/builtin_rules.h"
#include "tuners/rule_based/config_navigator.h"
#include "tuners/rule_based/rule_engine.h"
#include "tuners/rule_based/spex.h"
#include "tuners/simulation/addm.h"
#include "tuners/simulation/starfish.h"
#include "tuners/simulation/trace_simulator.h"

namespace atune {

void RegisterBuiltinTuners(TunerRegistry* registry) {
  registry->Add("rules-dbms", [] {
    return std::make_unique<RuleBasedTuner>("rules-dbms", MakeDbmsRules());
  });
  registry->Add("rules-mapreduce", [] {
    return std::make_unique<RuleBasedTuner>("rules-mapreduce",
                                            MakeMapReduceRules());
  });
  registry->Add("rules-spark", [] {
    return std::make_unique<RuleBasedTuner>("rules-spark", MakeSparkRules());
  });
  registry->Add("spex", [] { return std::make_unique<SpexTuner>(); });
  registry->Add("config-navigator",
                [] { return std::make_unique<ConfigNavigatorTuner>(); });

  registry->Add("cost-model",
                [] { return std::make_unique<CostModelTuner>(); });
  registry->Add("stmm", [] { return std::make_unique<StmmTuner>(); });

  registry->Add("trace-simulator",
                [] { return std::make_unique<TraceSimulatorTuner>(); });
  registry->Add("addm", [] { return std::make_unique<AddmTuner>(); });
  registry->Add("starfish", [] { return std::make_unique<StarfishTuner>(); });

  registry->Add("random-search",
                [] { return std::make_unique<RandomSearchTuner>(); });
  registry->Add("grid-search",
                [] { return std::make_unique<GridSearchTuner>(); });
  registry->Add("recursive-random",
                [] { return std::make_unique<RecursiveRandomSearchTuner>(); });
  registry->Add("sard", [] { return std::make_unique<SardTuner>(); });
  registry->Add("adaptive-sampling",
                [] { return std::make_unique<AdaptiveSamplingTuner>(); });
  registry->Add("ituned", [] { return std::make_unique<ITunedTuner>(); });

  registry->Add("ottertune",
                [] { return std::make_unique<OtterTuneTuner>(); });
  registry->Add("rodd-nn", [] { return std::make_unique<RoddNnTuner>(); });
  registry->Add("ernest", [] { return std::make_unique<ErnestTuner>(); });
  registry->Add("grey-box", [] { return std::make_unique<GreyBoxTuner>(); });

  registry->Add("colt", [] { return std::make_unique<ColtTuner>(); });
  registry->Add("adaptive-memory",
                [] { return std::make_unique<AdaptiveMemoryTuner>(); });
  registry->Add("stage-retuner",
                [] { return std::make_unique<StageRetunerTuner>(); });
}

void RegisterCategoryRepresentatives(TunerRegistry* registry,
                                     const std::string& system_name) {
  registry->Add("rule-based", [system_name] {
    return std::make_unique<RuleBasedTuner>("rules-" + system_name,
                                            MakeRulesForSystem(system_name));
  });
  registry->Add("cost-model",
                [] { return std::make_unique<CostModelTuner>(); });
  registry->Add("trace-simulator",
                [] { return std::make_unique<TraceSimulatorTuner>(); });
  registry->Add("ituned", [] { return std::make_unique<ITunedTuner>(); });
  registry->Add("ottertune",
                [] { return std::make_unique<OtterTuneTuner>(); });
  if (system_name == "simulated-dbms") {
    registry->Add("adaptive",
                  [] { return std::make_unique<AdaptiveMemoryTuner>(); });
  } else {
    registry->Add("adaptive",
                  [] { return std::make_unique<StageRetunerTuner>(); });
  }
}

}  // namespace atune
