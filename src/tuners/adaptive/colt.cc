#include "tuners/adaptive/colt.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace atune {

Status ColtTuner::Tune(Evaluator* evaluator, Rng* rng) {
  IterativeSystem* iterative = evaluator->system()->AsIterative();
  if (iterative == nullptr) {
    return Status::FailedPrecondition(
        "colt tunes long-running applications; system has no unit execution");
  }
  const ParameterSpace& space = evaluator->space();
  const size_t units = std::max<size_t>(
      iterative->NumUnits(evaluator->workload()), 1);
  const double reconf_cost = iterative->ReconfigurationCost();

  Configuration incumbent = space.DefaultConfiguration();
  double incumbent_mean = 0.0;
  size_t incumbent_n = 0;
  size_t switches = 0, challenges = 0;

  // Pass after pass over the workload's units until the budget runs out;
  // each pass is recorded as one composite trial so convergence is visible.
  while (!evaluator->Exhausted()) {
    double pass_runtime = 0.0;
    double pass_cost = 0.0;
    bool pass_failed = false;
    bool exhausted = false;
    std::string failure;
    ExecutionResult aggregate;

    Configuration challenger = space.Neighbor(incumbent, perturb_sigma_, rng);
    double challenger_sum = 0.0;
    size_t challenger_n = 0;
    bool challenger_failed = false;

    for (size_t u = 0; u < units; ++u) {
      bool explore = rng->Bernoulli(explore_fraction_) && u + 1 < units;
      const Configuration& config = explore ? challenger : incumbent;
      auto result = evaluator->EvaluateUnit(config, u);
      if (!result.ok()) {
        if (result.status().code() == StatusCode::kResourceExhausted) {
          exhausted = true;  // record the partial pass, then stop
          break;
        }
        return result.status();
      }
      double unit_time = evaluator->ObjectiveOf(config, *result);
      pass_runtime += unit_time;
      pass_cost += 1.0 / static_cast<double>(units);
      for (const auto& [k, v] : result->metrics) aggregate.metrics[k] += v;
      if (result->failed) {
        if (explore) {
          challenger_failed = true;  // challenger is dangerous; drop it
        } else {
          pass_failed = true;
          failure = result->failure_reason;
        }
      }
      if (explore) {
        challenger_sum += unit_time;
        ++challenger_n;
        // Switching mid-run costs a fraction of a unit.
        pass_runtime += reconf_cost * unit_time;
      } else {
        incumbent_mean = (incumbent_mean * static_cast<double>(incumbent_n) +
                          unit_time) /
                         static_cast<double>(incumbent_n + 1);
        ++incumbent_n;
      }
    }
    // A pass cut short by budget exhaustion is still committed: its unit
    // costs were charged, so dropping it would leak budget from the trial
    // history (sum of trial costs must equal Evaluator::used()).
    if (pass_cost > 0.0) {
      aggregate.runtime_seconds = pass_runtime / pass_cost;  // full-run scale
      aggregate.failed = pass_failed;
      aggregate.failure_reason = failure;
      evaluator->RecordCompositeTrial(incumbent, aggregate, pass_cost);
    }
    if (exhausted) break;

    // Cost-vs-gain adoption test.
    if (challenger_n > 0 && !challenger_failed && incumbent_n > 0) {
      ++challenges;
      double challenger_mean =
          challenger_sum / static_cast<double>(challenger_n);
      double gain_per_unit = incumbent_mean - challenger_mean;
      double remaining_units =
          evaluator->Remaining() * static_cast<double>(units);
      double switch_cost = reconf_cost * incumbent_mean;
      if (gain_per_unit * remaining_units > switch_cost &&
          challenger_mean < incumbent_mean * 0.98) {
        incumbent = challenger;
        incumbent_mean = challenger_mean;
        incumbent_n = challenger_n;
        ++switches;
      }
    }
  }
  report_ = StrFormat(
      "%zu challengers tested online, %zu adoptions; final per-unit cost "
      "%.3fs over %zu-unit workload",
      challenges, switches, incumbent_mean, units);
  return Status::OK();
}

}  // namespace atune
