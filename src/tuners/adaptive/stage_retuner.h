#ifndef ATUNE_TUNERS_ADAPTIVE_STAGE_RETUNER_H_
#define ATUNE_TUNERS_ADAPTIVE_STAGE_RETUNER_H_

#include <string>

#include "core/tuner.h"

namespace atune {

/// Per-stage runtime reconfiguration in the style of mrMoulder [4] and the
/// dynamic Spark partitioning of Gounaris et al. [10]: between the units of
/// a long-running job chain, diagnose the finished unit's profile (reusing
/// the ADDM diagnosis tables) and apply the indicated remedy to the next
/// unit's configuration; keep the change only if the unit actually got
/// faster, otherwise roll back. Ad-hoc friendly: no offline model, no
/// dedicated experiments — all learning happens inside the payload run.
class StageRetunerTuner : public Tuner {
 public:
  StageRetunerTuner() = default;

  std::string name() const override { return "stage-retuner"; }
  TunerCategory category() const override { return TunerCategory::kAdaptive; }
  Status Tune(Evaluator* evaluator, Rng* rng) override;
  std::string Report() const override { return report_; }

 private:
  std::string report_;
};

}  // namespace atune

#endif  // ATUNE_TUNERS_ADAPTIVE_STAGE_RETUNER_H_
