#ifndef ATUNE_TUNERS_ADAPTIVE_COLT_H_
#define ATUNE_TUNERS_ADAPTIVE_COLT_H_

#include <string>

#include "core/tuner.h"

namespace atune {

/// Continuous On-Line Tuning in the spirit of COLT [Schnaitter et al.,
/// SIGMOD'06]: tune *while the application runs*. The long-running workload
/// decomposes into units (epochs / stages / batches); between units the
/// tuner may switch configurations. Each epoch it:
///
///   * runs the incumbent on most units, but spends an exploration
///     fraction of units on a challenger (a perturbation of the incumbent);
///   * adopts the challenger only if its observed per-unit cost beats the
///     incumbent by more than the reconfiguration cost amortized over the
///     remaining units (COLT's cost-vs-gain test).
///
/// Requires an IterativeSystem; returns FailedPrecondition otherwise.
class ColtTuner : public Tuner {
 public:
  ColtTuner(double explore_fraction = 0.3, double perturb_sigma = 0.15)
      : explore_fraction_(explore_fraction), perturb_sigma_(perturb_sigma) {}

  std::string name() const override { return "colt"; }
  TunerCategory category() const override { return TunerCategory::kAdaptive; }
  Status Tune(Evaluator* evaluator, Rng* rng) override;
  std::string Report() const override { return report_; }

 private:
  double explore_fraction_;
  double perturb_sigma_;
  std::string report_;
};

}  // namespace atune

#endif  // ATUNE_TUNERS_ADAPTIVE_COLT_H_
