#include "tuners/adaptive/adaptive_memory.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace atune {

Status AdaptiveMemoryTuner::Tune(Evaluator* evaluator, Rng* rng) {
  (void)rng;
  if (evaluator->system()->name() != "simulated-dbms") {
    return Status::FailedPrecondition(
        "adaptive-memory manages DBMS memory consumers");
  }
  IterativeSystem* iterative = evaluator->system()->AsIterative();
  if (iterative == nullptr) {
    return Status::FailedPrecondition("system has no unit execution");
  }
  const ParameterSpace& space = evaluator->space();
  const size_t units =
      std::max<size_t>(iterative->NumUnits(evaluator->workload()), 1);

  Configuration config =
      has_initial_ ? initial_config_ : space.DefaultConfiguration();
  size_t grows_bp = 0, grows_wm = 0, shrinks = 0;

  while (!evaluator->Exhausted()) {
    double pass_runtime = 0.0;
    double pass_cost = 0.0;
    bool failed = false;
    bool exhausted = false;
    std::string failure;
    ExecutionResult aggregate;
    for (size_t u = 0; u < units; ++u) {
      auto result = evaluator->EvaluateUnit(config, u);
      if (!result.ok()) {
        if (result.status().code() == StatusCode::kResourceExhausted) {
          exhausted = true;
          break;
        }
        return result.status();
      }
      pass_runtime += evaluator->ObjectiveOf(config, *result);
      pass_cost += 1.0 / static_cast<double>(units);
      for (const auto& [k, v] : result->metrics) aggregate.metrics[k] += v;
      if (result->failed) {
        failed = true;
        failure = result->failure_reason;
      }

      // React to this unit's memory signals before the next unit.
      double hit = result->MetricOr("buffer_hit_ratio", 1.0);
      double spill = result->MetricOr("spill_mb", 0.0);
      double swap = result->MetricOr("swap_penalty", 1.0);
      int64_t bp = config.IntOr("buffer_pool_mb", 512);
      int64_t wm = config.IntOr("work_mem_mb", 4);
      if (swap > 1.02 || result->failed) {
        // Under pressure: shed the larger consumer aggressively.
        if (bp > wm * 32) {
          config.SetInt("buffer_pool_mb",
                        static_cast<int64_t>(static_cast<double>(bp) / 1.6));
        } else {
          config.SetInt("work_mem_mb",
                        std::max<int64_t>(
                            1, static_cast<int64_t>(
                                   static_cast<double>(wm) / 1.6)));
        }
        ++shrinks;
      } else if (spill > 0.0) {
        config.SetInt("work_mem_mb",
                      static_cast<int64_t>(
                          std::ceil(static_cast<double>(wm) * step_factor_)));
        ++grows_wm;
      } else if (hit < 0.92) {
        config.SetInt("buffer_pool_mb",
                      static_cast<int64_t>(
                          std::ceil(static_cast<double>(bp) * step_factor_)));
        ++grows_bp;
      }
      config = space.FromUnitVector(space.ToUnitVector(config));
    }
    // Commit even a budget-truncated pass: its unit costs were already
    // charged, so skipping the composite trial would leak budget.
    if (pass_cost > 0.0) {
      aggregate.runtime_seconds = pass_runtime / pass_cost;
      aggregate.failed = failed;
      aggregate.failure_reason = failure;
      evaluator->RecordCompositeTrial(config, aggregate, pass_cost);
    }
    if (exhausted) break;
  }
  report_ = StrFormat(
      "online memory moves: %zu buffer-pool grows, %zu work-mem grows, %zu "
      "pressure shrinks; final %s",
      grows_bp, grows_wm, shrinks,
      StrFormat("buffer_pool=%lld MB work_mem=%lld MB",
                static_cast<long long>(config.IntOr("buffer_pool_mb", 0)),
                static_cast<long long>(config.IntOr("work_mem_mb", 0)))
          .c_str());
  return Status::OK();
}

}  // namespace atune
