#include "tuners/adaptive/stage_retuner.h"

#include <algorithm>

#include "common/string_util.h"
#include "tuners/simulation/addm.h"

namespace atune {

Status StageRetunerTuner::Tune(Evaluator* evaluator, Rng* rng) {
  (void)rng;
  IterativeSystem* iterative = evaluator->system()->AsIterative();
  if (iterative == nullptr) {
    return Status::FailedPrecondition(
        "stage-retuner needs a unit-decomposable system");
  }
  const ParameterSpace& space = evaluator->space();
  const std::string system_name = evaluator->system()->name();
  const size_t units =
      std::max<size_t>(iterative->NumUnits(evaluator->workload()), 1);

  Configuration current = space.DefaultConfiguration();
  size_t kept = 0, reverted = 0;
  std::vector<std::string> chain;

  while (!evaluator->Exhausted()) {
    double pass_runtime = 0.0;
    double pass_cost = 0.0;
    bool failed = false;
    bool exhausted = false;
    std::string failure;
    ExecutionResult aggregate;

    double prev_unit_time = -1.0;
    Configuration prev_config = current;
    bool pending_change = false;

    for (size_t u = 0; u < units; ++u) {
      auto result = evaluator->EvaluateUnit(current, u);
      if (!result.ok()) {
        if (result.status().code() == StatusCode::kResourceExhausted) {
          exhausted = true;
          break;
        }
        return result.status();
      }
      double unit_time = evaluator->ObjectiveOf(current, *result);
      pass_runtime += unit_time;
      pass_cost += 1.0 / static_cast<double>(units);
      for (const auto& [k, v] : result->metrics) aggregate.metrics[k] += v;
      if (result->failed) {
        failed = true;
        failure = result->failure_reason;
      }

      // Judge the pending change from the previous boundary.
      if (pending_change) {
        if (prev_unit_time > 0.0 && unit_time > prev_unit_time * 1.02) {
          current = prev_config;  // rollback
          ++reverted;
        } else {
          ++kept;
        }
        pending_change = false;
      }
      // Diagnose this unit and stage a remedy for the next one.
      if (u + 1 < units || evaluator->Remaining() > 1.0) {
        Configuration fixed;
        std::string finding = AddmTuner::DiagnoseAndFix(
            system_name, *result, space, current, &fixed);
        if (!Configuration::Diff(fixed, current).empty()) {
          prev_config = current;
          prev_unit_time = unit_time;
          current = std::move(fixed);
          pending_change = true;
          if (chain.size() < 12) chain.push_back(finding);
          // Reconfiguration between units is not free.
          pass_runtime += iterative->ReconfigurationCost() * unit_time;
        }
      }
      prev_unit_time = unit_time;
    }
    // Commit even a budget-truncated pass: its unit costs were already
    // charged, so skipping the composite trial would leak budget.
    if (pass_cost > 0.0) {
      aggregate.runtime_seconds = pass_runtime / pass_cost;
      aggregate.failed = failed;
      aggregate.failure_reason = failure;
      evaluator->RecordCompositeTrial(current, aggregate, pass_cost);
    }
    if (exhausted) break;
  }
  report_ = StrFormat("%zu stage adaptations kept, %zu rolled back; chain: %s",
                      kept, reverted, Join(chain, " -> ").c_str());
  return Status::OK();
}

}  // namespace atune
