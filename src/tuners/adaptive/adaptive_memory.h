#ifndef ATUNE_TUNERS_ADAPTIVE_ADAPTIVE_MEMORY_H_
#define ATUNE_TUNERS_ADAPTIVE_ADAPTIVE_MEMORY_H_

#include <string>

#include "core/tuner.h"

namespace atune {

/// Online self-tuning memory manager: the runtime analogue of STMM.
/// Watches each unit's memory signals (buffer hit ratio, spill volume,
/// swap pressure) and shifts memory between the buffer pool and work
/// memory *while the workload runs*, backing off immediately when swap
/// pressure appears. This is the adaptive-category counterpart of the
/// cost-model STMM tuner and is DBMS-specific.
class AdaptiveMemoryTuner : public Tuner {
 public:
  explicit AdaptiveMemoryTuner(double step_factor = 1.4)
      : step_factor_(step_factor) {}

  /// Continue from a previously adapted configuration instead of the
  /// defaults (a live system keeps its state across workload phases).
  void set_initial_config(Configuration config) {
    initial_config_ = std::move(config);
    has_initial_ = true;
  }

  std::string name() const override { return "adaptive-memory"; }
  TunerCategory category() const override { return TunerCategory::kAdaptive; }
  Status Tune(Evaluator* evaluator, Rng* rng) override;
  std::string Report() const override { return report_; }

 private:
  double step_factor_;
  Configuration initial_config_;
  bool has_initial_ = false;
  std::string report_;
};

}  // namespace atune

#endif  // ATUNE_TUNERS_ADAPTIVE_ADAPTIVE_MEMORY_H_
