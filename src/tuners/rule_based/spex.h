#ifndef ATUNE_TUNERS_RULE_BASED_SPEX_H_
#define ATUNE_TUNERS_RULE_BASED_SPEX_H_

#include <functional>
#include <string>
#include <vector>

#include "core/tuner.h"

namespace atune {

/// A configuration constraint in the style of SPEX [Xu et al., SOSP'13],
/// which infers parameter constraints (ranges, inter-parameter
/// relationships, resource bounds) and uses them to catch error-prone
/// settings before deployment.
struct ConfigConstraint {
  std::string name;
  std::string explanation;
  /// Returns true when the configuration VIOLATES the constraint.
  std::function<bool(const Configuration&,
                     const std::map<std::string, double>& descriptors)>
      violated;
  /// Repairs the configuration to satisfy the constraint.
  std::function<void(Configuration*,
                     const std::map<std::string, double>& descriptors)>
      repair;
};

/// Inter-parameter and resource constraints for each simulated system,
/// mirroring what SPEX extracts from source code (e.g. "io.sort.mb must fit
/// in the task heap", "slot memory must fit in node RAM").
std::vector<ConfigConstraint> MakeConstraintsForSystem(
    const std::string& system_name);

/// Names of the constraints `config` violates.
std::vector<std::string> CheckConstraints(
    const std::vector<ConfigConstraint>& constraints,
    const Configuration& config,
    const std::map<std::string, double>& descriptors);

/// SPEX as a tuner: takes a candidate configuration (by default the space
/// defaults, or a caller-provided one), detects violations, repairs them,
/// and evaluates the repaired config once. Its value shows up in the
/// misconfiguration benches: repaired configs avoid the failure cliffs.
class SpexTuner : public Tuner {
 public:
  SpexTuner() = default;
  /// Tune this configuration instead of the defaults (e.g. a config another
  /// tuner or a careless operator proposed).
  explicit SpexTuner(Configuration candidate)
      : candidate_(std::move(candidate)), has_candidate_(true) {}

  std::string name() const override { return "spex"; }
  TunerCategory category() const override {
    return TunerCategory::kRuleBased;
  }
  Status Tune(Evaluator* evaluator, Rng* rng) override;
  std::string Report() const override { return report_; }

 private:
  Configuration candidate_;
  bool has_candidate_ = false;
  std::string report_;
};

}  // namespace atune

#endif  // ATUNE_TUNERS_RULE_BASED_SPEX_H_
