#ifndef ATUNE_TUNERS_RULE_BASED_BUILTIN_RULES_H_
#define ATUNE_TUNERS_RULE_BASED_BUILTIN_RULES_H_

#include <vector>

#include "tuners/rule_based/rule_engine.h"

namespace atune {

/// Best-practice rule sets, transcribed from the kind of vendor tuning
/// guides and community folklore the paper's rule-based category covers.
/// Each rule records its rationale so Report() reads like a runbook.

/// DBMS rules (PostgreSQL/DB2-style guidance): buffer pool ~ 25% of RAM,
/// work_mem sized to RAM / (clients * 4), group commit for high concurrency,
/// parallel workers ~ cores for analytics, etc.
std::vector<TuningRule> MakeDbmsRules();

/// Hadoop rules (classic cluster-tuning checklists): reducers ~ 0.95 * slot
/// capacity, io.sort.mb to avoid spills, enable compression+combiner,
/// slots ~ cores, JVM reuse for small tasks.
std::vector<TuningRule> MakeMapReduceRules();

/// Spark rules (the "Tuning Spark" guide distilled): kryo serializer,
/// executors sized 2-5 cores each, partitions ~ 2-3x cores, moderate memory
/// fractions, speculation on heterogeneous clusters.
std::vector<TuningRule> MakeSparkRules();

/// Picks the rule set matching a system name ("simulated-dbms", ...).
std::vector<TuningRule> MakeRulesForSystem(const std::string& system_name);

}  // namespace atune

#endif  // ATUNE_TUNERS_RULE_BASED_BUILTIN_RULES_H_
