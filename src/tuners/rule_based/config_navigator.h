#ifndef ATUNE_TUNERS_RULE_BASED_CONFIG_NAVIGATOR_H_
#define ATUNE_TUNERS_RULE_BASED_CONFIG_NAVIGATOR_H_

#include <string>
#include <vector>

#include "core/tuner.h"

namespace atune {

/// Configuration navigation in the spirit of Xu et al. [26] ("Hey, you have
/// given me too many knobs!"): most knobs don't matter for a given
/// deployment, so first *rank* parameters by impact with cheap
/// one-at-a-time probes from the default, then walk only the few impactful
/// ones toward better values, leaving the long tail untouched.
///
/// Budget use: 2 probes per parameter (low/high) for ranking, then a greedy
/// line search over the top-k parameters with the remaining budget.
class ConfigNavigatorTuner : public Tuner {
 public:
  explicit ConfigNavigatorTuner(size_t top_k = 4) : top_k_(top_k) {}

  std::string name() const override { return "config-navigator"; }
  TunerCategory category() const override {
    return TunerCategory::kRuleBased;
  }
  Status Tune(Evaluator* evaluator, Rng* rng) override;
  std::string Report() const override { return report_; }

  /// Parameter names ranked by measured impact (after Tune).
  const std::vector<std::string>& ranking() const { return ranking_; }

 private:
  size_t top_k_;
  std::vector<std::string> ranking_;
  std::string report_;
};

}  // namespace atune

#endif  // ATUNE_TUNERS_RULE_BASED_CONFIG_NAVIGATOR_H_
