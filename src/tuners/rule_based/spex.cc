#include "tuners/rule_based/spex.h"

#include <algorithm>

#include "common/string_util.h"

namespace atune {

namespace {
double Desc(const std::map<std::string, double>& d, const std::string& key,
            double fallback) {
  auto it = d.find(key);
  return it == d.end() ? fallback : it->second;
}
}  // namespace

std::vector<ConfigConstraint> MakeConstraintsForSystem(
    const std::string& system_name) {
  std::vector<ConfigConstraint> cs;
  if (system_name == "simulated-mapreduce") {
    cs.push_back({
        "sort_buffer_fits_heap",
        "io.sort.mb must leave room in the task heap (<= 60% of it)",
        [](const Configuration& c, const std::map<std::string, double>&) {
          return static_cast<double>(c.IntOr("io_sort_mb", 100)) >
                 0.6 * static_cast<double>(c.IntOr("task_memory_mb", 512));
        },
        [](Configuration* c, const std::map<std::string, double>&) {
          c->SetInt("io_sort_mb",
                    std::max<int64_t>(
                        32, static_cast<int64_t>(
                                0.5 * static_cast<double>(
                                          c->IntOr("task_memory_mb", 512)))));
        },
    });
    cs.push_back({
        "slot_memory_fits_node",
        "(map_slots + reduce_slots) * task heap must fit in node RAM",
        [](const Configuration& c, const std::map<std::string, double>& d) {
          double slots = static_cast<double>(
              c.IntOr("map_slots_per_node", 2) +
              c.IntOr("reduce_slots_per_node", 2));
          return slots * static_cast<double>(c.IntOr("task_memory_mb", 512)) >
                 Desc(d, "node_ram_mb", 16384.0) * 0.9;
        },
        [](Configuration* c, const std::map<std::string, double>& d) {
          double slots = static_cast<double>(
              c->IntOr("map_slots_per_node", 2) +
              c->IntOr("reduce_slots_per_node", 2));
          c->SetInt("task_memory_mb",
                    std::max<int64_t>(
                        256, static_cast<int64_t>(
                                 Desc(d, "node_ram_mb", 16384.0) * 0.8 /
                                 std::max(1.0, slots))));
        },
    });
    cs.push_back({
        "at_least_one_reducer_per_node",
        "a single reducer serializes the whole reduce phase on big clusters",
        [](const Configuration& c, const std::map<std::string, double>& d) {
          return static_cast<double>(c.IntOr("num_reducers", 1)) <
                 Desc(d, "num_nodes", 4.0) * 0.5;
        },
        [](Configuration* c, const std::map<std::string, double>& d) {
          c->SetInt("num_reducers",
                    static_cast<int64_t>(Desc(d, "num_nodes", 4.0)));
        },
    });
  } else if (system_name == "simulated-spark") {
    cs.push_back({
        "executors_fit_cluster",
        "requested executor memory/cores must fit the cluster",
        [](const Configuration& c, const std::map<std::string, double>& d) {
          double mem = static_cast<double>(c.IntOr("num_executors", 2) *
                                           c.IntOr("executor_memory_mb", 1024));
          double cores = static_cast<double>(c.IntOr("num_executors", 2) *
                                             c.IntOr("executor_cores", 1));
          return mem > Desc(d, "total_ram_mb", 65536.0) * 0.9 ||
                 cores > Desc(d, "total_cores", 32.0);
        },
        [](Configuration* c, const std::map<std::string, double>& d) {
          double total_mem = Desc(d, "total_ram_mb", 65536.0);
          double total_cores = Desc(d, "total_cores", 32.0);
          int64_t execs = c->IntOr("num_executors", 2);
          int64_t cores = c->IntOr("executor_cores", 1);
          while (execs > 1 &&
                 (static_cast<double>(execs * c->IntOr("executor_memory_mb",
                                                       1024)) >
                      total_mem * 0.85 ||
                  static_cast<double>(execs * cores) > total_cores)) {
            --execs;
          }
          c->SetInt("num_executors", execs);
        },
    });
    cs.push_back({
        "broadcast_fits_executor",
        "broadcast threshold must be well below executor memory",
        [](const Configuration& c, const std::map<std::string, double>&) {
          return static_cast<double>(c.IntOr("broadcast_threshold_mb", 10)) >
                 0.1 * static_cast<double>(c.IntOr("executor_memory_mb", 1024));
        },
        [](Configuration* c, const std::map<std::string, double>&) {
          c->SetInt("broadcast_threshold_mb",
                    std::max<int64_t>(
                        1, static_cast<int64_t>(
                               0.1 * static_cast<double>(
                                         c->IntOr("executor_memory_mb",
                                                  1024)))));
        },
    });
    cs.push_back({
        "memory_fractions_sane",
        "memory_fraction + reserved must leave user memory; storage in [0.1,0.9]",
        [](const Configuration& c, const std::map<std::string, double>&) {
          return c.DoubleOr("memory_fraction", 0.6) > 0.85;
        },
        [](Configuration* c, const std::map<std::string, double>&) {
          c->SetDouble("memory_fraction", 0.75);
        },
    });
  } else {  // DBMS
    cs.push_back({
        "memory_budget_fits_ram",
        "buffer pool + clients*work_mem + WAL must fit in RAM",
        [](const Configuration& c, const std::map<std::string, double>& d) {
          double clients = Desc(d, "expected_clients", 32.0);
          double reserved =
              static_cast<double>(c.IntOr("buffer_pool_mb", 512)) +
              clients * static_cast<double>(c.IntOr("work_mem_mb", 4)) +
              static_cast<double>(c.IntOr("wal_buffer_mb", 16)) + 256.0;
          return reserved > Desc(d, "total_ram_mb", 16384.0) * 0.95;
        },
        [](Configuration* c, const std::map<std::string, double>& d) {
          double ram = Desc(d, "total_ram_mb", 16384.0);
          double clients = Desc(d, "expected_clients", 32.0);
          double wm = static_cast<double>(c->IntOr("work_mem_mb", 4));
          double budget = ram * 0.85 - clients * wm - 256.0;
          if (budget < 64.0) {
            c->SetInt("work_mem_mb", 4);
            budget = ram * 0.85 - clients * 4.0 - 256.0;
          }
          c->SetInt("buffer_pool_mb",
                    std::max<int64_t>(64, static_cast<int64_t>(budget)));
        },
    });
    cs.push_back({
        "deadlock_timeout_not_trigger_happy",
        "timeouts below typical lock hold times abort healthy transactions",
        [](const Configuration& c, const std::map<std::string, double>&) {
          return c.IntOr("deadlock_timeout_ms", 1000) < 100;
        },
        [](Configuration* c, const std::map<std::string, double>&) {
          c->SetInt("deadlock_timeout_ms", 500);
        },
    });
    cs.push_back({
        "workers_bounded_by_cores",
        "parallel workers beyond core count just context-switch",
        [](const Configuration& c, const std::map<std::string, double>& d) {
          return static_cast<double>(c.IntOr("max_workers", 2)) >
                 Desc(d, "total_cores", 8.0);
        },
        [](Configuration* c, const std::map<std::string, double>& d) {
          c->SetInt("max_workers",
                    static_cast<int64_t>(Desc(d, "total_cores", 8.0)));
        },
    });
  }
  return cs;
}

std::vector<std::string> CheckConstraints(
    const std::vector<ConfigConstraint>& constraints,
    const Configuration& config,
    const std::map<std::string, double>& descriptors) {
  std::vector<std::string> violated;
  for (const ConfigConstraint& c : constraints) {
    if (c.violated(config, descriptors)) violated.push_back(c.name);
  }
  return violated;
}

Status SpexTuner::Tune(Evaluator* evaluator, Rng* rng) {
  (void)rng;
  std::map<std::string, double> descriptors =
      evaluator->system()->Descriptors();
  // SPEX knows the expected client load from the deployment descriptor.
  descriptors["expected_clients"] =
      evaluator->workload().PropertyOr("clients", 16.0);
  std::vector<ConfigConstraint> constraints =
      MakeConstraintsForSystem(evaluator->system()->name());
  Configuration config =
      has_candidate_ ? candidate_ : evaluator->space().DefaultConfiguration();

  std::vector<std::string> violations =
      CheckConstraints(constraints, config, descriptors);
  for (const ConfigConstraint& c : constraints) {
    if (c.violated(config, descriptors)) c.repair(&config, descriptors);
  }
  // Clamp into legal ranges after repair.
  config = evaluator->space().FromUnitVector(
      evaluator->space().ToUnitVector(config));
  std::vector<std::string> remaining =
      CheckConstraints(constraints, config, descriptors);
  report_ = StrFormat("%zu constraint(s) violated [%s]; %zu after repair",
                      violations.size(), Join(violations, ", ").c_str(),
                      remaining.size());
  if (!evaluator->Exhausted()) {
    ATUNE_ASSIGN_OR_RETURN(double obj, evaluator->Evaluate(config));
    (void)obj;
  }
  return Status::OK();
}

}  // namespace atune
