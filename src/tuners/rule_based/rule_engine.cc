#include "tuners/rule_based/rule_engine.h"

#include "common/string_util.h"

namespace atune {

namespace {
// Clamps every value into its parameter's legal domain by round-tripping
// through the unit encoding (which clamps).
Configuration ClampToSpace(const ParameterSpace& space,
                           const Configuration& config) {
  return space.FromUnitVector(space.ToUnitVector(config));
}
}  // namespace

Configuration ApplyRules(const ParameterSpace& space,
                         const std::vector<TuningRule>& rules,
                         const RuleContext& context,
                         std::vector<std::string>* fired_rules) {
  Configuration config = space.DefaultConfiguration();
  for (const TuningRule& rule : rules) {
    if (rule.applies && !rule.applies(context)) continue;
    rule.apply(&config, context);
    if (fired_rules != nullptr) fired_rules->push_back(rule.name);
  }
  return ClampToSpace(space, config);
}

Status RuleBasedTuner::Tune(Evaluator* evaluator, Rng* rng) {
  (void)rng;
  RuleContext context;
  context.descriptors = evaluator->system()->Descriptors();
  context.workload = &evaluator->workload();
  std::vector<std::string> fired;
  Configuration config = ApplyRules(evaluator->space(), rules_, context, &fired);
  report_ = StrFormat("%zu/%zu rules fired: %s", fired.size(), rules_.size(),
                      Join(fired, ", ").c_str());
  if (!evaluator->Exhausted()) {
    ATUNE_ASSIGN_OR_RETURN(double obj, evaluator->Evaluate(config));
    (void)obj;
  }
  return Status::OK();
}

}  // namespace atune
