#include "tuners/rule_based/builtin_rules.h"

#include <algorithm>
#include <cmath>

namespace atune {

namespace {
bool Always(const RuleContext&) { return true; }
}  // namespace

std::vector<TuningRule> MakeDbmsRules() {
  std::vector<TuningRule> rules;
  rules.push_back({
      "buffer_pool_25pct_ram",
      "vendor guides size the buffer pool at ~25% of RAM to leave room for "
      "the OS cache and per-session memory",
      Always,
      [](Configuration* c, const RuleContext& ctx) {
        double ram = ctx.DescriptorOr("total_ram_mb", 16384.0);
        c->SetInt("buffer_pool_mb", static_cast<int64_t>(ram * 0.25));
      },
  });
  rules.push_back({
      "work_mem_per_client",
      "work_mem is allocated per operator per client; divide a quarter of "
      "RAM by 4x the client count to avoid oversubscription",
      Always,
      [](Configuration* c, const RuleContext& ctx) {
        double ram = ctx.DescriptorOr("total_ram_mb", 16384.0);
        double clients = std::max(1.0, ctx.WorkloadOr("clients", 16.0));
        c->SetInt("work_mem_mb",
                  std::max<int64_t>(4, static_cast<int64_t>(
                                           ram * 0.25 / (clients * 4.0))));
      },
  });
  rules.push_back({
      "parallel_workers_for_analytics",
      "analytical workloads benefit from parallel scans: workers ~ cores; "
      "OLTP keeps the default to avoid thrashing",
      [](const RuleContext& ctx) {
        return ctx.workload != nullptr && (ctx.workload->kind == "olap" ||
                                           ctx.workload->kind == "scan" ||
                                           ctx.workload->kind == "aggregate" ||
                                           ctx.workload->kind == "join");
      },
      [](Configuration* c, const RuleContext& ctx) {
        double cores = ctx.DescriptorOr("total_cores", 8.0);
        double clients = std::max(1.0, ctx.WorkloadOr("clients", 4.0));
        c->SetInt("max_workers",
                  std::max<int64_t>(1, static_cast<int64_t>(cores / clients)));
      },
  });
  rules.push_back({
      "group_commit_high_concurrency",
      "with many concurrent writers, group commit amortizes log fsyncs",
      [](const RuleContext& ctx) {
        return ctx.WorkloadOr("clients", 1.0) >= 16.0 &&
               ctx.workload != nullptr && ctx.workload->kind != "olap";
      },
      [](Configuration* c, const RuleContext&) {
        c->SetString("log_flush", "group");
      },
  });
  rules.push_back({
      "wal_buffer_for_writers",
      "size WAL buffers ~1 MB per concurrent writer",
      Always,
      [](Configuration* c, const RuleContext& ctx) {
        double clients = std::max(1.0, ctx.WorkloadOr("clients", 16.0));
        c->SetInt("wal_buffer_mb",
                  std::max<int64_t>(16, static_cast<int64_t>(clients)));
      },
  });
  rules.push_back({
      "checkpoint_10min",
      "10-minute checkpoints balance recovery time against writeback churn",
      Always,
      [](Configuration* c, const RuleContext&) {
        c->SetInt("checkpoint_interval_s", 600);
      },
  });
  rules.push_back({
      "prefetch_for_scans",
      "raise prefetch depth and I/O concurrency for scan-heavy workloads",
      [](const RuleContext& ctx) {
        return ctx.WorkloadOr("seq_fraction", 0.0) >= 0.5;
      },
      [](Configuration* c, const RuleContext&) {
        c->SetInt("prefetch_depth", 32);
        c->SetInt("io_concurrency", 16);
      },
  });
  rules.push_back({
      "stats_for_joins",
      "complex join workloads need detailed optimizer statistics",
      [](const RuleContext& ctx) {
        return ctx.WorkloadOr("join_complexity", 0.0) >= 0.4 ||
               (ctx.workload != nullptr && ctx.workload->kind == "join");
      },
      [](Configuration* c, const RuleContext&) {
        c->SetInt("stats_target", 400);
      },
  });
  return rules;
}

std::vector<TuningRule> MakeMapReduceRules() {
  std::vector<TuningRule> rules;
  rules.push_back({
      "slots_match_cores",
      "run one task per core, split ~2:1 between map and reduce slots",
      Always,
      [](Configuration* c, const RuleContext& ctx) {
        double cores = ctx.DescriptorOr("cores_per_node", 8.0);
        c->SetInt("map_slots_per_node",
                  std::max<int64_t>(1, static_cast<int64_t>(cores * 0.6)));
        c->SetInt("reduce_slots_per_node",
                  std::max<int64_t>(1, static_cast<int64_t>(cores * 0.4)));
      },
  });
  rules.push_back({
      "reducers_95pct_capacity",
      "set reducer count to ~0.95x the reduce slot capacity so all reducers "
      "finish in one wave",
      Always,
      [](Configuration* c, const RuleContext& ctx) {
        double cores = ctx.DescriptorOr("cores_per_node", 8.0);
        double nodes = ctx.DescriptorOr("num_nodes", 4.0);
        double slots = std::max(1.0, cores * 0.4) * nodes;
        c->SetInt("num_reducers",
                  std::max<int64_t>(1, static_cast<int64_t>(slots * 0.95)));
      },
  });
  rules.push_back({
      "io_sort_avoid_spills",
      "size io.sort.mb to hold a whole split's map output (capped by heap)",
      Always,
      [](Configuration* c, const RuleContext& ctx) {
        double sel = ctx.WorkloadOr("map_selectivity", 1.0);
        int64_t block = c->IntOr("dfs_block_mb", 64);
        int64_t want = static_cast<int64_t>(
            std::min(1024.0, static_cast<double>(block) * sel * 1.3));
        c->SetInt("io_sort_mb", std::max<int64_t>(100, want));
        c->SetInt("task_memory_mb",
                  std::max<int64_t>(512, want * 2));
      },
  });
  rules.push_back({
      "compress_map_output",
      "intermediate compression trades cheap CPU for shuffle bandwidth",
      Always,
      [](Configuration* c, const RuleContext&) {
        c->SetBool("compress_map_output", true);
        c->SetString("compress_codec", "lz4");
      },
  });
  rules.push_back({
      "combiner_when_reductive",
      "enable the combiner whenever the job's aggregation collapses keys",
      [](const RuleContext& ctx) {
        return ctx.WorkloadOr("combiner_reduction", 1.0) < 0.9;
      },
      [](Configuration* c, const RuleContext&) {
        c->SetBool("combiner", true);
      },
  });
  rules.push_back({
      "jvm_reuse_many_tasks",
      "reuse JVMs when jobs have many short tasks",
      Always,
      [](Configuration* c, const RuleContext&) {
        c->SetBool("jvm_reuse", true);
      },
  });
  rules.push_back({
      "bigger_blocks_for_big_inputs",
      "128-256 MB blocks cut task scheduling overhead on large inputs",
      [](const RuleContext& ctx) {
        return ctx.WorkloadOr("input_mb", 0.0) >= 8192.0;
      },
      [](Configuration* c, const RuleContext&) {
        c->SetInt("dfs_block_mb", 256);
      },
  });
  rules.push_back({
      "more_shuffle_copies",
      "raise parallel fetch threads on larger clusters",
      Always,
      [](Configuration* c, const RuleContext& ctx) {
        double nodes = ctx.DescriptorOr("num_nodes", 4.0);
        c->SetInt("shuffle_parallel_copies",
                  std::max<int64_t>(10, static_cast<int64_t>(nodes * 4)));
      },
  });
  rules.push_back({
      "slowstart_late_for_batch",
      "start reducers only after most maps finish so they don't hog slots",
      Always,
      [](Configuration* c, const RuleContext&) {
        c->SetDouble("slowstart", 0.8);
      },
  });
  return rules;
}

std::vector<TuningRule> MakeSparkRules() {
  std::vector<TuningRule> rules;
  rules.push_back({
      "kryo_serializer",
      "the Tuning Spark guide's first advice: switch to kryo",
      Always,
      [](Configuration* c, const RuleContext&) {
        c->SetString("serializer", "kryo");
      },
  });
  rules.push_back({
      "fat_executors_5_cores",
      "size executors at ~5 cores and split node memory among them",
      Always,
      [](Configuration* c, const RuleContext& ctx) {
        double cores_per_node = ctx.DescriptorOr("cores_per_node", 8.0);
        double nodes = ctx.DescriptorOr("num_nodes", 4.0);
        double ram_per_node = ctx.DescriptorOr("node_ram_mb", 16384.0);
        int64_t exec_cores =
            std::max<int64_t>(1, std::min<int64_t>(5, static_cast<int64_t>(
                                                          cores_per_node)));
        int64_t per_node =
            std::max<int64_t>(1, static_cast<int64_t>(cores_per_node) /
                                     exec_cores);
        c->SetInt("executor_cores", exec_cores);
        c->SetInt("num_executors",
                  static_cast<int64_t>(nodes) * per_node);
        c->SetInt("executor_memory_mb",
                  static_cast<int64_t>(ram_per_node * 0.8 /
                                       static_cast<double>(per_node)));
      },
  });
  rules.push_back({
      "partitions_3x_cores",
      "use 2-3 tasks per core so waves stay balanced",
      Always,
      [](Configuration* c, const RuleContext& ctx) {
        double cores = ctx.DescriptorOr("total_cores", 16.0);
        c->SetInt("shuffle_partitions",
                  std::max<int64_t>(8, static_cast<int64_t>(cores * 3.0)));
      },
  });
  rules.push_back({
      "storage_for_iterative",
      "iterative jobs want cached data: raise storage fraction; batch SQL "
      "wants execution memory instead",
      [](const RuleContext& ctx) {
        return ctx.workload != nullptr && ctx.workload->kind == "iterative_ml";
      },
      [](Configuration* c, const RuleContext&) {
        c->SetDouble("memory_fraction", 0.8);
        c->SetDouble("storage_fraction", 0.6);
        c->SetBool("rdd_compress", true);
      },
  });
  rules.push_back({
      "execution_memory_for_sql",
      "shuffle-heavy SQL lowers storage fraction to give joins memory",
      [](const RuleContext& ctx) {
        return ctx.workload != nullptr &&
               (ctx.workload->kind == "sql_aggregate" ||
                ctx.workload->kind == "sql_join");
      },
      [](Configuration* c, const RuleContext&) {
        c->SetDouble("memory_fraction", 0.75);
        c->SetDouble("storage_fraction", 0.2);
      },
  });
  rules.push_back({
      "broadcast_dimension_tables",
      "raise the broadcast threshold to cover typical dimension tables",
      [](const RuleContext& ctx) {
        return ctx.workload != nullptr && ctx.workload->kind == "sql_join";
      },
      [](Configuration* c, const RuleContext& ctx) {
        double small = ctx.WorkloadOr("small_table_mb", 64.0);
        c->SetInt("broadcast_threshold_mb",
                  static_cast<int64_t>(std::min(512.0, small * 1.5)));
      },
  });
  rules.push_back({
      "speculation_on_heterogeneous",
      "speculative execution recovers stragglers on uneven hardware",
      [](const RuleContext& ctx) {
        return ctx.DescriptorOr("num_nodes", 1.0) > 1.0;
      },
      [](Configuration* c, const RuleContext&) {
        c->SetBool("speculation", true);
      },
  });
  rules.push_back({
      "few_partitions_for_streaming",
      "micro-batches drown in task overhead; cap partitions near core count",
      [](const RuleContext& ctx) {
        return ctx.workload != nullptr && ctx.workload->kind == "streaming";
      },
      [](Configuration* c, const RuleContext& ctx) {
        double cores = ctx.DescriptorOr("total_cores", 16.0);
        c->SetInt("shuffle_partitions",
                  std::max<int64_t>(8, static_cast<int64_t>(cores)));
      },
  });
  return rules;
}

std::vector<TuningRule> MakeRulesForSystem(const std::string& system_name) {
  if (system_name == "simulated-mapreduce") return MakeMapReduceRules();
  if (system_name == "simulated-spark") return MakeSparkRules();
  return MakeDbmsRules();
}

}  // namespace atune
