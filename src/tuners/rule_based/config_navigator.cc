#include "tuners/rule_based/config_navigator.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/string_util.h"

namespace atune {

Status ConfigNavigatorTuner::Tune(Evaluator* evaluator, Rng* rng) {
  (void)rng;
  const ParameterSpace& space = evaluator->space();
  size_t dims = space.dims();
  ranking_.clear();

  // Baseline at the defaults.
  Configuration defaults = space.DefaultConfiguration();
  auto base = evaluator->Evaluate(defaults);
  if (!base.ok()) return base.status();
  Vec base_u = space.ToUnitVector(defaults);

  // One-at-a-time probes: move each parameter alone to 0.15 and 0.85.
  std::vector<double> impact(dims, 0.0);
  for (size_t d = 0; d < dims && !evaluator->Exhausted(); ++d) {
    double best_delta = 0.0;
    for (double level : {0.15, 0.85}) {
      if (evaluator->Exhausted()) break;
      Vec u = base_u;
      u[d] = level;
      auto obj = evaluator->Evaluate(space.FromUnitVector(u));
      if (!obj.ok()) {
        if (obj.status().code() == StatusCode::kResourceExhausted) break;
        return obj.status();
      }
      best_delta = std::max(best_delta, std::abs(*obj - *base));
    }
    impact[d] = best_delta;
  }

  std::vector<size_t> order(dims);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&impact](size_t a, size_t b) { return impact[a] > impact[b]; });
  for (size_t d : order) ranking_.push_back(space.param(d).name());

  // Greedy line search over the most impactful knobs.
  const Trial* best_trial = evaluator->best();
  Vec current = best_trial != nullptr
                    ? space.ToUnitVector(best_trial->config)
                    : base_u;
  size_t explored = 0;
  for (size_t rank = 0; rank < std::min(top_k_, dims); ++rank) {
    size_t d = order[rank];
    double best_obj = evaluator->best() != nullptr
                          ? evaluator->best()->objective
                          : *base;
    double best_level = current[d];
    for (double level : {0.0, 0.3, 0.5, 0.7, 1.0}) {
      if (evaluator->Exhausted()) break;
      Vec u = current;
      u[d] = level;
      auto obj = evaluator->Evaluate(space.FromUnitVector(u));
      if (!obj.ok()) {
        if (obj.status().code() == StatusCode::kResourceExhausted) break;
        return obj.status();
      }
      ++explored;
      if (*obj < best_obj) {
        best_obj = *obj;
        best_level = level;
      }
    }
    current[d] = best_level;
    if (evaluator->Exhausted()) break;
  }

  std::vector<std::string> top(
      ranking_.begin(),
      ranking_.begin() + std::min(top_k_, ranking_.size()));
  report_ = StrFormat(
      "ranked %zu knobs by one-at-a-time impact; navigated top-%zu [%s] "
      "with %zu refinement runs",
      dims, top.size(), Join(top, ", ").c_str(), explored);
  return Status::OK();
}

}  // namespace atune
