#ifndef ATUNE_TUNERS_RULE_BASED_RULE_ENGINE_H_
#define ATUNE_TUNERS_RULE_BASED_RULE_ENGINE_H_

#include <functional>
#include <string>
#include <vector>

#include "core/tuner.h"

namespace atune {

/// Context a tuning rule can consult: hardware descriptors and the workload
/// description (what a DBA reads off the runbook before editing the config).
struct RuleContext {
  std::map<std::string, double> descriptors;
  const Workload* workload = nullptr;

  double DescriptorOr(const std::string& key, double fallback) const {
    auto it = descriptors.find(key);
    return it == descriptors.end() ? fallback : it->second;
  }
  double WorkloadOr(const std::string& key, double fallback) const {
    return workload == nullptr ? fallback
                               : workload->PropertyOr(key, fallback);
  }
};

/// One best-practice rule: if Applies(), Apply() edits the configuration.
/// Rules encode the expert folklore of the rule-based category (Table 1):
/// cheap, no experiments, but static and risky.
struct TuningRule {
  std::string name;
  std::string rationale;
  std::function<bool(const RuleContext&)> applies;
  std::function<void(Configuration*, const RuleContext&)> apply;
};

/// Applies every applicable rule (in order) on top of the space defaults and
/// clamps the result into the space's legal ranges.
Configuration ApplyRules(const ParameterSpace& space,
                         const std::vector<TuningRule>& rules,
                         const RuleContext& context,
                         std::vector<std::string>* fired_rules = nullptr);

/// Tuner wrapper: builds the rule-recommended configuration, spends one
/// evaluation to measure it (if budget allows), done. Category: rule-based.
class RuleBasedTuner : public Tuner {
 public:
  RuleBasedTuner(std::string name, std::vector<TuningRule> rules)
      : name_(std::move(name)), rules_(std::move(rules)) {}

  std::string name() const override { return name_; }
  TunerCategory category() const override {
    return TunerCategory::kRuleBased;
  }
  Status Tune(Evaluator* evaluator, Rng* rng) override;
  std::string Report() const override { return report_; }

 private:
  std::string name_;
  std::vector<TuningRule> rules_;
  std::string report_;
};

}  // namespace atune

#endif  // ATUNE_TUNERS_RULE_BASED_RULE_ENGINE_H_
