#ifndef ATUNE_OBS_METRICS_H_
#define ATUNE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace atune {

/// Monotonic event counter. Increment is a relaxed atomic add — safe and
/// cheap on any measurement hot path.
class Counter {
 public:
  void Increment(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Last-value / accumulating double gauge (budget units spent per phase,
/// replayed-record count...). Add() is a CAS loop — contention on gauges is
/// rare (they sit off the per-candidate hot paths), correctness is not.
class Gauge {
 public:
  void Set(double v);
  void Add(double delta);
  double Value() const;

 private:
  std::atomic<uint64_t> bits_{0};  // bit-cast double
};

/// Lock-free histogram over base-2 exponential buckets: bucket i covers
/// [2^(i - kZeroExponent), 2^(i - kZeroExponent + 1)), spanning ~1 µs to
/// ~4 Gs when recording seconds — wide enough for both simulated runtimes
/// and host-clock waits. Values <= 0 land in bucket 0. Also tracks exact
/// count/sum/min/max, so mean is exact and only the quantiles are
/// bucket-resolution estimates.
class Histogram {
 public:
  static constexpr size_t kBuckets = 52;
  static constexpr int kZeroExponent = 20;  // bucket 0 upper bound 2^-20

  void Record(double v);

  struct Snapshot {
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::vector<uint64_t> buckets;  // kBuckets entries

    double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
    /// Bucket-interpolated quantile estimate, q in [0, 1].
    double Quantile(double q) const;
    /// Upper bound of bucket i (lower bound of bucket i+1).
    static double BucketBound(size_t i);
  };
  Snapshot Snap() const;

 private:
  std::atomic<uint64_t> counts_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};
  std::atomic<uint64_t> min_bits_{0};
  std::atomic<uint64_t> max_bits_{0};
  std::atomic<bool> has_minmax_{false};
};

/// One registry entry rendered for export.
struct MetricsSnapshot {
  struct Entry {
    std::string name;
    std::string kind;  // "counter" | "gauge" | "histogram"
    uint64_t count = 0;       // counter value / histogram count
    double value = 0.0;       // gauge value
    double sum = 0.0, min = 0.0, max = 0.0, mean = 0.0;
    double p50 = 0.0, p90 = 0.0, p99 = 0.0;
  };
  std::vector<Entry> entries;  // sorted by name

  /// Stable-field-order JSON object {"name": {...}, ...}. Convention:
  /// metrics whose name contains "host" measure host wall-clock and are
  /// excluded from determinism comparisons (everything else must be
  /// bit-identical between a resumed and an uninterrupted session).
  std::string ToJson() const;
  /// Aligned human-readable table, sorted by name.
  std::string SummaryTable() const;
};

/// Named counters/gauges/histograms with atomic hot-path recording and
/// snapshot-on-demand. Get*() returns a stable pointer (entries are never
/// removed); call sites cache the pointer and record lock-free thereafter.
/// Thread-safe throughout.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  /// Publishes Snapshot().ToJson() atomically (write-temp-then-rename via
  /// common/file_util), so a crash can never leave a torn metrics file.
  Status PublishJson(const std::string& path) const;

 private:
  struct Metric {
    std::string kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  mutable std::mutex mu_;
  std::map<std::string, Metric> metrics_;  // guarded by mu_; ptrs stable
};

/// Per-process current registry, the metrics twin of CurrentTracer():
/// instrumentation sites deep in the ML layer (incremental-GP hit counters)
/// read it with one atomic load; null disables them.
MetricsRegistry* CurrentMetrics();

/// RAII install/restore; installing null keeps the current registry.
class ScopedMetricsInstall {
 public:
  explicit ScopedMetricsInstall(MetricsRegistry* metrics);
  ~ScopedMetricsInstall();
  ScopedMetricsInstall(const ScopedMetricsInstall&) = delete;
  ScopedMetricsInstall& operator=(const ScopedMetricsInstall&) = delete;

 private:
  MetricsRegistry* previous_ = nullptr;
  bool installed_ = false;
};

}  // namespace atune

#endif  // ATUNE_OBS_METRICS_H_
