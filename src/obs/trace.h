#ifndef ATUNE_OBS_TRACE_H_
#define ATUNE_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"

namespace atune {

/// One finished span. Spans form a forest: parent_id == 0 means root.
/// Timestamps are nanoseconds of monotonic time since the Tracer was
/// constructed (or ticks of the injected test clock), so traces from
/// different processes are comparable only structurally — which is the
/// point: the structural tree is the correctness oracle (DESIGN.md §9),
/// the timestamps are the profile.
struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent_id = 0;  ///< 0 = root of the forest
  std::string name;
  /// Name used by structural comparisons. Defaults to `name`; spans whose
  /// live and replayed forms differ by design (journal_append vs replay)
  /// share a structural name ("commit") so a resumed session's tree is
  /// bit-identical to the uninterrupted one.
  std::string structural_name;
  /// Small dense thread index (0 = first thread seen), stable enough for
  /// Chrome's per-tid lanes; excluded from structural comparisons (pool
  /// scheduling is nondeterministic).
  uint32_t thread_index = 0;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  /// Deterministic key/value annotations (journal seq, round, batch
  /// coordinates, objective bits...). Insertion order is preserved and is
  /// part of the structural identity — emit args deterministically.
  std::vector<std::pair<std::string, std::string>> args;
};

/// Thread-safe span collector with zero heap or lock activity until a span
/// actually ends (ids are allocated from an atomic; the record vector is
/// appended under a mutex once per span). All methods may be called from
/// any thread. Tracing is opt-in everywhere: every instrumentation site
/// takes a `Tracer*` that may be null, and the null path is a pointer test.
class Tracer {
 public:
  Tracer() = default;
  /// `clock` overrides the monotonic clock (testing: deterministic
  /// timestamps make the Chrome export and summary table golden-testable).
  explicit Tracer(std::function<uint64_t()> clock);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Allocates a span id and stamps its start time. `parent_id` 0 makes a
  /// root span. Thread-safe, lock-free.
  uint64_t BeginSpan();

  /// Completes a span begun with BeginSpan(). `begin_ns` is the value
  /// NowNs() returned at begin time (the caller carries it — usually inside
  /// a ScopedSpan — so Begin doesn't need shared storage).
  void EndSpan(uint64_t id, uint64_t parent_id, const char* name,
               const char* structural_name, uint64_t begin_ns,
               std::vector<std::pair<std::string, std::string>> args);

  /// Records an already-shaped span verbatim (replay synthesis: the
  /// Evaluator reconstructs measure/retry/remeasure spans from journal
  /// counter deltas; they carry zero duration but full structure).
  void RecordSynthetic(uint64_t parent_id, const char* name,
                       const char* structural_name,
                       std::vector<std::pair<std::string, std::string>> args);

  /// Monotonic nanoseconds since construction (or the injected clock).
  uint64_t NowNs() const;

  /// Copy of every finished span, in end order. Spans still open are not
  /// included — snapshot after the traced region completes.
  std::vector<SpanRecord> Snapshot() const;
  size_t span_count() const;

  /// Chrome trace_event JSON ("X" complete events, ts/dur in microseconds).
  /// Load in chrome://tracing or Perfetto. Field order is fixed so the
  /// export is golden-testable; events are sorted by (start, id).
  std::string ChromeTraceJson() const;
  /// Writes ChromeTraceJson() atomically (write-temp-then-rename).
  Status WriteChromeTrace(const std::string& path) const;

  /// Human-readable per-name aggregate: count, total/mean/max wall within
  /// the span, sorted by name for stable output.
  std::string SummaryTable() const;

  /// Timestamp-free canonical rendering of the span forest, the
  /// trace-as-oracle artifact: one line per span (`structural_name` +
  /// args), children indented and sorted by their own rendering, roots
  /// likewise sorted. Two tracers with equal StructuralTreeString()s
  /// observed the same tree of events regardless of timing, thread
  /// placement, or end order. A resumed session must produce a string
  /// bit-identical to the uninterrupted session's (tests/obs enforces it).
  std::string StructuralTreeString() const;

 private:
  uint32_t ThreadIndexLocked();

  std::function<uint64_t()> clock_;  ///< empty = steady_clock
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  std::atomic<uint64_t> next_id_{1};
  mutable std::mutex mu_;
  std::vector<SpanRecord> records_;                    // guarded by mu_
  std::vector<std::thread::id> thread_ids_;            // guarded by mu_
};

/// The per-process "current" tracer, used by instrumentation sites that a
/// session object cannot reach (GP fits, acquisition loops deep inside
/// tuners). Null (the default) disables those sites at the cost of one
/// atomic load. RunTuningSession installs SessionOptions::tracer for the
/// session's duration; at most one traced session may run at a time
/// (concurrent *untraced* sessions are unaffected — they never install).
Tracer* CurrentTracer();

/// RAII install/restore of the current tracer. Installing null is a no-op
/// (keeps whatever is current), so untraced sessions cannot clobber a
/// traced one.
class ScopedTracerInstall {
 public:
  explicit ScopedTracerInstall(Tracer* tracer);
  ~ScopedTracerInstall();
  ScopedTracerInstall(const ScopedTracerInstall&) = delete;
  ScopedTracerInstall& operator=(const ScopedTracerInstall&) = delete;

 private:
  Tracer* previous_ = nullptr;
  bool installed_ = false;
};

/// RAII span. With a null tracer every method is a no-op (tracing off costs
/// one branch). Parentage: by default the span parents to the innermost
/// open ScopedSpan on the *same thread* for the same tracer (a thread-local
/// stack); pass `parent_id` explicitly to stitch spans across threads
/// (e.g. batch lanes running on pool workers parent to the batch span).
class ScopedSpan {
 public:
  static constexpr uint64_t kThreadParent = ~uint64_t{0};

  ScopedSpan(Tracer* tracer, const char* name,
             uint64_t parent_id = kThreadParent,
             const char* structural_name = nullptr);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Adds a deterministic annotation. Args are emitted in AddArg order.
  void AddArg(const char* key, std::string value);

  /// This span's id, for use as an explicit cross-thread parent.
  uint64_t id() const { return id_; }
  bool active() const { return tracer_ != nullptr; }

 private:
  Tracer* tracer_;
  const char* name_;
  const char* structural_name_;
  uint64_t id_ = 0;
  uint64_t parent_id_ = 0;
  uint64_t begin_ns_ = 0;
  bool pushed_tls_ = false;
  std::vector<std::pair<std::string, std::string>> args_;
};

/// Formats a double so that parsing the string back yields the same bits
/// (%.17g); span/metric args must round-trip for bit-identity checks.
std::string TraceDouble(double v);

}  // namespace atune

#endif  // ATUNE_OBS_TRACE_H_
