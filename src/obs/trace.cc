#include "obs/trace.h"

#include <algorithm>
#include <map>

#include "common/file_util.h"
#include "common/string_util.h"

namespace atune {

namespace {

/// Innermost open span per (thread, tracer). A plain vector: sessions open
/// a handful of nested spans, never hundreds, and lookup is "walk from the
/// back for the first matching tracer".
thread_local std::vector<std::pair<const Tracer*, uint64_t>> tls_span_stack;

std::atomic<Tracer*> g_current_tracer{nullptr};

uint64_t ThreadParentFor(const Tracer* tracer) {
  for (auto it = tls_span_stack.rbegin(); it != tls_span_stack.rend(); ++it) {
    if (it->first == tracer) return it->second;
  }
  return 0;
}

/// JSON string escaping for the Chrome export (names/args are ASCII-ish;
/// control characters are \u-escaped for safety).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string TraceDouble(double v) { return StrFormat("%.17g", v); }

Tracer* CurrentTracer() {
  return g_current_tracer.load(std::memory_order_acquire);
}

ScopedTracerInstall::ScopedTracerInstall(Tracer* tracer) {
  if (tracer == nullptr) return;  // never clobber a traced session
  previous_ = g_current_tracer.exchange(tracer, std::memory_order_acq_rel);
  installed_ = true;
}

ScopedTracerInstall::~ScopedTracerInstall() {
  if (installed_) {
    g_current_tracer.store(previous_, std::memory_order_release);
  }
}

Tracer::Tracer(std::function<uint64_t()> clock) : clock_(std::move(clock)) {}

uint64_t Tracer::NowNs() const {
  if (clock_) return clock_();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

uint64_t Tracer::BeginSpan() {
  return next_id_.fetch_add(1, std::memory_order_relaxed);
}

uint32_t Tracer::ThreadIndexLocked() {
  std::thread::id self = std::this_thread::get_id();
  for (size_t i = 0; i < thread_ids_.size(); ++i) {
    if (thread_ids_[i] == self) return static_cast<uint32_t>(i);
  }
  thread_ids_.push_back(self);
  return static_cast<uint32_t>(thread_ids_.size() - 1);
}

void Tracer::EndSpan(uint64_t id, uint64_t parent_id, const char* name,
                     const char* structural_name, uint64_t begin_ns,
                     std::vector<std::pair<std::string, std::string>> args) {
  SpanRecord rec;
  rec.id = id;
  rec.parent_id = parent_id;
  rec.name = name;
  rec.structural_name = structural_name != nullptr ? structural_name : name;
  rec.start_ns = begin_ns;
  rec.end_ns = NowNs();
  if (rec.end_ns < rec.start_ns) rec.end_ns = rec.start_ns;
  rec.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  rec.thread_index = ThreadIndexLocked();
  records_.push_back(std::move(rec));
}

void Tracer::RecordSynthetic(
    uint64_t parent_id, const char* name, const char* structural_name,
    std::vector<std::pair<std::string, std::string>> args) {
  uint64_t id = BeginSpan();
  uint64_t now = NowNs();
  SpanRecord rec;
  rec.id = id;
  rec.parent_id = parent_id;
  rec.name = name;
  rec.structural_name = structural_name != nullptr ? structural_name : name;
  rec.start_ns = now;
  rec.end_ns = now;
  rec.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  rec.thread_index = ThreadIndexLocked();
  records_.push_back(std::move(rec));
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

std::string Tracer::ChromeTraceJson() const {
  std::vector<SpanRecord> spans = Snapshot();
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.id < b.id;
            });
  std::string out = "{\"traceEvents\":[";
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    if (i > 0) out += ",";
    out += StrFormat(
        "\n{\"name\":\"%s\",\"cat\":\"atune\",\"ph\":\"X\",\"ts\":%.3f,"
        "\"dur\":%.3f,\"pid\":1,\"tid\":%u,\"args\":{\"span_id\":%llu,"
        "\"parent_id\":%llu",
        JsonEscape(s.name).c_str(), static_cast<double>(s.start_ns) / 1e3,
        static_cast<double>(s.end_ns - s.start_ns) / 1e3, s.thread_index,
        static_cast<unsigned long long>(s.id),
        static_cast<unsigned long long>(s.parent_id));
    for (const auto& [key, value] : s.args) {
      out += StrFormat(",\"%s\":\"%s\"", JsonEscape(key).c_str(),
                       JsonEscape(value).c_str());
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  return AtomicWriteFile(path, ChromeTraceJson());
}

std::string Tracer::SummaryTable() const {
  struct Agg {
    size_t count = 0;
    uint64_t total_ns = 0;
    uint64_t max_ns = 0;
  };
  std::map<std::string, Agg> by_name;  // sorted for stable output
  for (const SpanRecord& s : Snapshot()) {
    Agg& a = by_name[s.name];
    uint64_t dur = s.end_ns - s.start_ns;
    ++a.count;
    a.total_ns += dur;
    a.max_ns = std::max(a.max_ns, dur);
  }
  std::string out = StrFormat("%-16s %8s %12s %12s %12s\n", "span", "count",
                              "total-ms", "mean-ms", "max-ms");
  for (const auto& [name, a] : by_name) {
    out += StrFormat("%-16s %8zu %12.3f %12.3f %12.3f\n", name.c_str(),
                     a.count, static_cast<double>(a.total_ns) / 1e6,
                     static_cast<double>(a.total_ns) / 1e6 /
                         static_cast<double>(a.count),
                     static_cast<double>(a.max_ns) / 1e6);
  }
  return out;
}

namespace {

/// Renders `span` + its subtree into a canonical string: structural name,
/// args in emission order, children rendered recursively and sorted by
/// their own rendering (concurrent lanes end in nondeterministic order;
/// sorting makes the rendering a pure function of the tree).
std::string RenderSubtree(const SpanRecord& span,
                          const std::map<uint64_t, std::vector<size_t>>& kids,
                          const std::vector<SpanRecord>& spans, int depth) {
  std::string line(static_cast<size_t>(depth) * 2, ' ');
  line += span.structural_name;
  if (!span.args.empty()) {
    line += "{";
    for (size_t i = 0; i < span.args.size(); ++i) {
      if (i > 0) line += ",";
      line += span.args[i].first + "=" + span.args[i].second;
    }
    line += "}";
  }
  line += "\n";
  auto it = kids.find(span.id);
  if (it != kids.end()) {
    std::vector<std::string> rendered;
    rendered.reserve(it->second.size());
    for (size_t child : it->second) {
      rendered.push_back(RenderSubtree(spans[child], kids, spans, depth + 1));
    }
    std::sort(rendered.begin(), rendered.end());
    for (const std::string& r : rendered) line += r;
  }
  return line;
}

}  // namespace

std::string Tracer::StructuralTreeString() const {
  std::vector<SpanRecord> spans = Snapshot();
  std::map<uint64_t, size_t> by_id;
  for (size_t i = 0; i < spans.size(); ++i) by_id[spans[i].id] = i;
  std::map<uint64_t, std::vector<size_t>> kids;
  std::vector<std::string> roots;
  for (size_t i = 0; i < spans.size(); ++i) {
    // An orphan (parent never recorded — e.g. still open at snapshot time)
    // renders as a root rather than vanishing from the oracle.
    if (spans[i].parent_id != 0 && by_id.count(spans[i].parent_id) == 0) {
      kids[0].push_back(i);
    } else {
      kids[spans[i].parent_id].push_back(i);
    }
  }
  auto it = kids.find(0);
  if (it != kids.end()) {
    for (size_t root : it->second) {
      roots.push_back(RenderSubtree(spans[root], kids, spans, 0));
    }
  }
  std::sort(roots.begin(), roots.end());
  std::string out;
  for (const std::string& r : roots) out += r;
  return out;
}

ScopedSpan::ScopedSpan(Tracer* tracer, const char* name, uint64_t parent_id,
                       const char* structural_name)
    : tracer_(tracer), name_(name), structural_name_(structural_name) {
  if (tracer_ == nullptr) return;
  id_ = tracer_->BeginSpan();
  parent_id_ =
      parent_id == kThreadParent ? ThreadParentFor(tracer_) : parent_id;
  begin_ns_ = tracer_->NowNs();
  tls_span_stack.emplace_back(tracer_, id_);
  pushed_tls_ = true;
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr) return;
  if (pushed_tls_) {
    // Spans are destroyed in reverse construction order within a thread,
    // so the top of the stack is this span (erase defensively anyway).
    for (auto it = tls_span_stack.rbegin(); it != tls_span_stack.rend();
         ++it) {
      if (it->first == tracer_ && it->second == id_) {
        tls_span_stack.erase(std::next(it).base());
        break;
      }
    }
  }
  tracer_->EndSpan(id_, parent_id_, name_, structural_name_, begin_ns_,
                   std::move(args_));
}

void ScopedSpan::AddArg(const char* key, std::string value) {
  if (tracer_ == nullptr) return;
  args_.emplace_back(key, std::move(value));
}

}  // namespace atune
