#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/file_util.h"
#include "common/string_util.h"
#include "obs/trace.h"

namespace atune {

namespace {

uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::atomic<MetricsRegistry*> g_current_metrics{nullptr};

}  // namespace

MetricsRegistry* CurrentMetrics() {
  return g_current_metrics.load(std::memory_order_acquire);
}

ScopedMetricsInstall::ScopedMetricsInstall(MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  previous_ = g_current_metrics.exchange(metrics, std::memory_order_acq_rel);
  installed_ = true;
}

ScopedMetricsInstall::~ScopedMetricsInstall() {
  if (installed_) {
    g_current_metrics.store(previous_, std::memory_order_release);
  }
}

void Gauge::Set(double v) {
  bits_.store(DoubleBits(v), std::memory_order_relaxed);
}

void Gauge::Add(double delta) {
  uint64_t observed = bits_.load(std::memory_order_relaxed);
  while (!bits_.compare_exchange_weak(
      observed, DoubleBits(BitsDouble(observed) + delta),
      std::memory_order_relaxed)) {
  }
}

double Gauge::Value() const {
  return BitsDouble(bits_.load(std::memory_order_relaxed));
}

double Histogram::Snapshot::BucketBound(size_t i) {
  return std::ldexp(1.0, static_cast<int>(i) - kZeroExponent + 1);
}

void Histogram::Record(double v) {
  size_t bucket = 0;
  if (v > 0.0 && std::isfinite(v)) {
    int exponent = 0;
    std::frexp(v, &exponent);  // v = m * 2^exponent, m in [0.5, 1)
    // frexp's exponent is one above the power-of-two lower bound, so
    // 2^e <= v < 2^(e+1) has frexp exponent e+1.
    long idx = static_cast<long>(exponent) - 1 + kZeroExponent;
    bucket = static_cast<size_t>(std::clamp<long>(
        idx, 0, static_cast<long>(kBuckets) - 1));
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t observed = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(
      observed, DoubleBits(BitsDouble(observed) + v),
      std::memory_order_relaxed)) {
  }
  // min/max: first writer seeds both, later writers CAS their side only.
  if (!has_minmax_.load(std::memory_order_acquire)) {
    uint64_t zero_bits = 0;
    if (min_bits_.compare_exchange_strong(zero_bits, DoubleBits(v),
                                          std::memory_order_acq_rel)) {
      max_bits_.store(DoubleBits(v), std::memory_order_release);
      has_minmax_.store(true, std::memory_order_release);
      return;
    }
    // Lost the seeding race; fall through once the seeder published.
    while (!has_minmax_.load(std::memory_order_acquire)) {
    }
  }
  uint64_t mn = min_bits_.load(std::memory_order_relaxed);
  while (v < BitsDouble(mn) &&
         !min_bits_.compare_exchange_weak(mn, DoubleBits(v),
                                          std::memory_order_relaxed)) {
  }
  uint64_t mx = max_bits_.load(std::memory_order_relaxed);
  while (v > BitsDouble(mx) &&
         !max_bits_.compare_exchange_weak(mx, DoubleBits(v),
                                          std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot s;
  s.buckets.resize(kBuckets);
  for (size_t i = 0; i < kBuckets; ++i) {
    s.buckets[i] = counts_[i].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = BitsDouble(sum_bits_.load(std::memory_order_relaxed));
  if (has_minmax_.load(std::memory_order_acquire)) {
    s.min = BitsDouble(min_bits_.load(std::memory_order_relaxed));
    s.max = BitsDouble(max_bits_.load(std::memory_order_relaxed));
  }
  return s;
}

double Histogram::Snapshot::Quantile(double q) const {
  uint64_t in_buckets = 0;
  for (uint64_t c : buckets) in_buckets += c;
  if (in_buckets == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(in_buckets);
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    if (static_cast<double>(seen + buckets[i]) >= target) {
      // Linear interpolation within the bucket's [lo, hi).
      double lo = i == 0 ? 0.0 : BucketBound(i - 1);
      double hi = BucketBound(i);
      double into =
          (target - static_cast<double>(seen)) / static_cast<double>(buckets[i]);
      double v = lo + into * (hi - lo);
      return std::clamp(v, min, max);  // exact extremes beat bucket edges
    }
    seen += buckets[i];
  }
  return max;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Metric& m = metrics_[name];
  if (m.counter == nullptr) {
    m.kind = "counter";
    m.counter = std::make_unique<Counter>();
  }
  return m.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Metric& m = metrics_[name];
  if (m.gauge == nullptr) {
    m.kind = "gauge";
    m.gauge = std::make_unique<Gauge>();
  }
  return m.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Metric& m = metrics_[name];
  if (m.histogram == nullptr) {
    m.kind = "histogram";
    m.histogram = std::make_unique<Histogram>();
  }
  return m.histogram.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, metric] : metrics_) {  // std::map: sorted by name
    MetricsSnapshot::Entry e;
    e.name = name;
    e.kind = metric.kind;
    if (metric.counter != nullptr) {
      e.count = metric.counter->Value();
    } else if (metric.gauge != nullptr) {
      e.value = metric.gauge->Value();
    } else if (metric.histogram != nullptr) {
      Histogram::Snapshot h = metric.histogram->Snap();
      e.count = h.count;
      e.sum = h.sum;
      e.min = h.min;
      e.max = h.max;
      e.mean = h.mean();
      e.p50 = h.Quantile(0.50);
      e.p90 = h.Quantile(0.90);
      e.p99 = h.Quantile(0.99);
    }
    snap.entries.push_back(std::move(e));
  }
  return snap;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{";
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    out += i == 0 ? "\n" : ",\n";
    if (e.kind == "counter") {
      out += StrFormat("  \"%s\": {\"kind\": \"counter\", \"count\": %llu}",
                       e.name.c_str(),
                       static_cast<unsigned long long>(e.count));
    } else if (e.kind == "gauge") {
      out += StrFormat("  \"%s\": {\"kind\": \"gauge\", \"value\": %s}",
                       e.name.c_str(), TraceDouble(e.value).c_str());
    } else {
      out += StrFormat(
          "  \"%s\": {\"kind\": \"histogram\", \"count\": %llu, "
          "\"sum\": %s, \"min\": %s, \"max\": %s, \"mean\": %s, "
          "\"p50\": %s, \"p90\": %s, \"p99\": %s}",
          e.name.c_str(), static_cast<unsigned long long>(e.count),
          TraceDouble(e.sum).c_str(), TraceDouble(e.min).c_str(),
          TraceDouble(e.max).c_str(), TraceDouble(e.mean).c_str(),
          TraceDouble(e.p50).c_str(), TraceDouble(e.p90).c_str(),
          TraceDouble(e.p99).c_str());
    }
  }
  out += "\n}\n";
  return out;
}

std::string MetricsSnapshot::SummaryTable() const {
  std::string out =
      StrFormat("%-34s %-9s %10s %12s %12s %12s %12s\n", "metric", "kind",
                "count", "value/mean", "p50", "p99", "max");
  for (const Entry& e : entries) {
    if (e.kind == "counter") {
      out += StrFormat("%-34s %-9s %10llu\n", e.name.c_str(), e.kind.c_str(),
                       static_cast<unsigned long long>(e.count));
    } else if (e.kind == "gauge") {
      out += StrFormat("%-34s %-9s %10s %12.4f\n", e.name.c_str(),
                       e.kind.c_str(), "-", e.value);
    } else {
      out += StrFormat("%-34s %-9s %10llu %12.4f %12.4f %12.4f %12.4f\n",
                       e.name.c_str(), e.kind.c_str(),
                       static_cast<unsigned long long>(e.count), e.mean,
                       e.p50, e.p99, e.max);
    }
  }
  return out;
}

Status MetricsRegistry::PublishJson(const std::string& path) const {
  return AtomicWriteFile(path, Snapshot().ToJson());
}

}  // namespace atune
