// atune — command-line driver for the tuning framework.
//
//   atune --system=dbms --workload=olap --tuner=ituned --budget=30
//   atune --system=mapreduce --workload=terasort --tuner=starfish
//   atune --system=spark --workload=iterative_ml --tuner=ottertune --csv
//   atune --list
//
// Flags:
//   --system=dbms|mapreduce|spark   platform to tune         [dbms]
//   --workload=<name>               see --list                [per system]
//   --tuner=<name>                  see --list                [ituned]
//   --budget=N                      experiment budget         [30]
//   --seed=N                        session seed              [1]
//   --nodes=N                       cluster size              [1 dbms / 4 other]
//   --scale=F                       workload scale factor     [1.0]
//   --parallelism=N                 experiments per round     [1]
//       batch-aware tuners (random/grid/recursive-random/ituned) run N
//       experiments concurrently per wall-clock round; budget unchanged
//   --fault-rate=F                  inject faults at rate F   [0]
//       wraps the system in FaultInjectingSystem (FaultProfile::FromRate):
//       transient failures at F, stragglers/metric dropout at F/2, hangs
//       at F/5 — exercise the Evaluator's measurement-robustness policy
//   --timeout-seconds=F             watchdog kill threshold   [0 = off]
//   --max-retries=N                 transient-failure retries [2]
//   --drift=SPEC                    time-varying workload     [off]
//       wraps the system in DriftingWorkload; SPEC is ramp|shift|diurnal
//       with optional key=value params, e.g. --drift=shift:at=25,factor=1.8
//       or --drift=diurnal:amplitude=0.5,period=32 (DESIGN.md §15). The
//       schedule is a pure function of the run index, so --resume stays
//       bit-identical and it composes with --fault-rate
//   --adaptive                      drift-adaptive tune-serve-adapt loop
//       wraps --tuner in AdaptiveRetuneTuner: initial tune under a budget
//       lease, then serve the incumbent while a Page–Hinkley detector
//       watches for drift; on detection, staged degradation (surrogate
//       eviction + re-probe, then bounded full re-tune). Composes under
//       --supervise
//   --supervise                     wrap the tuner in the supervision layer
//       proposal sanitization, duplicate-livelock substitution, the
//       crash-region circuit breaker, and numerical-failure failover to
//       --fallback-tuner (see DESIGN.md §10)
//   --fallback-tuner=<name>         failover tuner under --supervise
//       any registry tuner; default is the built-in LHS random fallback
//   --journal=PATH                  write-ahead trial journal [off]
//       every committed trial is fsynced to PATH before the tuner sees it;
//       SIGINT/SIGTERM (and crashes) leave a resumable checkpoint
//   --journal-policy=strict|degrade journal I/O failure policy [strict]
//       strict aborts the session with a clean I/O error (exit 3); degrade
//       continues un-journaled with a warning and refuses later --resume
//   --resume                        resume from --journal=PATH
//       replays the journaled trials deterministically, then continues
//       live; the finished outcome is bit-identical to an uninterrupted run
//   --trace=PATH (or --trace PATH)  Chrome trace_event JSON to PATH
//       spans for every session/round/trial/measure/repair/commit plus the
//       GP and acquisition hot paths; load in chrome://tracing or Perfetto.
//       A --resume session writes a structurally identical span tree.
//   --trace-summary                 per-span-name aggregate table on stdout
//   --metrics                       session metrics table on stdout
//   --csv                           machine-readable trial log on stdout
//   --list                          print available tuners and workloads
//
// Service mode (talk to a running atuned instead of tuning in-process):
//   --connect=ADDR                  unix:<path> or tcp:<host>:<port>
//       submits the session to the daemon and waits for the result. The
//       connection retries with bounded exponential backoff (the shared
//       IoRetryPolicy bounds), and the session id is the idempotency key:
//       a reconnect (or a rerun with the same --session-id) reattaches to
//       the in-flight session, it never double-starts it.
//   --session-id=ID                 idempotent session id [auto: cli-<pid>-<seed>]
//   --tenant=NAME                   tenant for admission quotas [default]
//   --deadline-ms=N                 server-side session deadline [0 = none]
//   --contention=K                  K background tenants share the system [0]
//   --wait-ms=N                     max wait for the result [0 = forever]
//
// Exit codes:
//   0    success (tuned, or server session done)
//   1    tuning failed (local session)
//   2    usage error (bad flags, unknown tuner/workload — local or server)
//   3    journal I/O failure under --journal-policy=strict (local session)
//   4    service unreachable: connect/exchange retries exhausted, or the
//        daemon shed the session and retries ran out (--connect mode)
//   5    server-side session failed (--connect mode)
//   6    deadline exceeded: the server-side session hit --deadline-ms, or
//        --wait-ms elapsed first (--connect mode)
//   130  interrupted/cancelled; progress is checkpointed and resumable

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "common/csv.h"
#include "common/string_util.h"
#include "core/registry.h"
#include "core/session.h"
#include "core/supervisor.h"
#include "net/client.h"
#include "net/transport.h"
#include "net/wire.h"
#include "systems/drifting_workload.h"
#include "systems/fault_injector.h"
#include "systems/system_factory.h"
#include "tuners/adaptive_retune.h"
#include "tuners/builtin.h"

namespace atune {
namespace {

/// Set by the SIGINT/SIGTERM handler; the Evaluator polls it before every
/// evaluation and aborts cleanly (the journal already holds every committed
/// trial, so a later --resume continues where we stopped).
volatile std::sig_atomic_t g_signal = 0;

void HandleSignal(int sig) { g_signal = sig; }

struct CliOptions {
  std::string system = "dbms";
  std::string workload;
  std::string tuner = "ituned";
  size_t budget = 30;
  uint64_t seed = 1;
  size_t nodes = 0;  // 0 = per-system default
  double scale = 1.0;
  size_t parallelism = 1;
  double fault_rate = 0.0;
  double timeout_seconds = 0.0;
  size_t max_retries = 2;
  bool supervise = false;
  std::string drift;
  bool adaptive = false;
  std::string fallback_tuner;
  std::string journal;
  JournalPolicy journal_policy = JournalPolicy::kStrict;
  bool resume = false;
  bool csv = false;
  bool list = false;
  std::string trace_path;
  bool trace_summary = false;
  bool metrics = false;
  // --connect (service) mode
  std::string connect;
  std::string session_id;
  std::string tenant = "default";
  uint64_t deadline_ms = 0;
  uint64_t contention = 0;
  uint64_t wait_ms = 0;
  bool warm_start = false;
};

bool ParseFlag(const std::string& arg, const char* name, std::string* out) {
  std::string prefix = std::string("--") + name + "=";
  if (!StartsWith(arg, prefix)) return false;
  *out = arg.substr(prefix.size());
  return true;
}

Result<CliOptions> ParseArgs(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (arg == "--csv") {
      options.csv = true;
    } else if (arg == "--list") {
      options.list = true;
    } else if (ParseFlag(arg, "system", &value)) {
      options.system = value;
    } else if (ParseFlag(arg, "workload", &value)) {
      options.workload = value;
    } else if (ParseFlag(arg, "tuner", &value)) {
      options.tuner = value;
    } else if (ParseFlag(arg, "budget", &value)) {
      options.budget = static_cast<size_t>(std::strtoull(value.c_str(),
                                                         nullptr, 10));
    } else if (ParseFlag(arg, "seed", &value)) {
      options.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "nodes", &value)) {
      options.nodes = static_cast<size_t>(std::strtoull(value.c_str(),
                                                        nullptr, 10));
    } else if (ParseFlag(arg, "scale", &value)) {
      options.scale = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(arg, "parallelism", &value)) {
      options.parallelism = static_cast<size_t>(std::strtoull(value.c_str(),
                                                              nullptr, 10));
      if (options.parallelism == 0) options.parallelism = 1;
    } else if (ParseFlag(arg, "fault-rate", &value)) {
      options.fault_rate = std::strtod(value.c_str(), nullptr);
      if (options.fault_rate < 0.0 || options.fault_rate > 1.0) {
        return Status::InvalidArgument("--fault-rate must be in [0, 1]");
      }
    } else if (ParseFlag(arg, "timeout-seconds", &value)) {
      options.timeout_seconds = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(arg, "max-retries", &value)) {
      options.max_retries = static_cast<size_t>(std::strtoull(value.c_str(),
                                                              nullptr, 10));
    } else if (ParseFlag(arg, "drift", &value)) {
      options.drift = value;
    } else if (arg == "--adaptive") {
      options.adaptive = true;
    } else if (arg == "--supervise") {
      options.supervise = true;
    } else if (ParseFlag(arg, "fallback-tuner", &value)) {
      options.fallback_tuner = value;
    } else if (ParseFlag(arg, "journal-policy", &value)) {
      if (value == "strict") {
        options.journal_policy = JournalPolicy::kStrict;
      } else if (value == "degrade") {
        options.journal_policy = JournalPolicy::kDegrade;
      } else {
        return Status::InvalidArgument(
            "--journal-policy must be 'strict' or 'degrade'");
      }
    } else if (ParseFlag(arg, "journal", &value)) {
      options.journal = value;
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (ParseFlag(arg, "trace", &value)) {
      options.trace_path = value;
    } else if (arg == "--trace") {
      // Two-argument form: --trace out.json
      if (i + 1 >= argc) {
        return Status::InvalidArgument("--trace requires a path");
      }
      options.trace_path = argv[++i];
    } else if (arg == "--trace-summary") {
      options.trace_summary = true;
    } else if (arg == "--metrics") {
      options.metrics = true;
    } else if (ParseFlag(arg, "connect", &value)) {
      options.connect = value;
    } else if (ParseFlag(arg, "session-id", &value)) {
      options.session_id = value;
    } else if (ParseFlag(arg, "tenant", &value)) {
      options.tenant = value;
    } else if (ParseFlag(arg, "deadline-ms", &value)) {
      options.deadline_ms = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "contention", &value)) {
      options.contention = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "wait-ms", &value)) {
      options.wait_ms = std::strtoull(value.c_str(), nullptr, 10);
    } else if (arg == "--warm-start") {
      options.warm_start = true;
    } else {
      return Status::InvalidArgument("unknown flag: " + arg);
    }
  }
  if (options.resume && options.journal.empty()) {
    return Status::InvalidArgument("--resume requires --journal=PATH");
  }
  if (!options.fallback_tuner.empty() && !options.supervise) {
    return Status::InvalidArgument("--fallback-tuner requires --supervise");
  }
  if (!options.drift.empty()) {
    auto parsed = DriftSchedule::Parse(options.drift);
    if (!parsed.ok()) return parsed.status();
  }
  if (options.connect.empty() &&
      (!options.session_id.empty() || options.deadline_ms > 0 ||
       options.contention > 0 || options.wait_ms > 0 || options.warm_start)) {
    return Status::InvalidArgument(
        "--session-id/--deadline-ms/--contention/--wait-ms/--warm-start "
        "require --connect");
  }
  return options;
}

/// Service mode: submit the session to a running atuned and wait for the
/// terminal result. See the exit-code table at the top of this file.
int RunConnect(const CliOptions& options) {
  TuningClient::Options client_options;
  client_options.address = options.connect;
  TuningClient client(client_options);

  StartRequest request;
  // Auto ids are stable within one invocation, so this process's own
  // reconnect retries reattach rather than double-start; pass an explicit
  // --session-id to make retries idempotent across invocations too.
  request.session_id =
      options.session_id.empty()
          ? StrFormat("cli-%d-%llu", static_cast<int>(::getpid()),
                      static_cast<unsigned long long>(options.seed))
          : options.session_id;
  request.tenant = options.tenant;
  request.tuner = options.tuner;
  request.system = options.system;
  request.workload = options.workload;
  request.scale = options.scale;
  request.budget = options.budget;
  request.seed = options.seed;
  request.deadline_ms = options.deadline_ms;
  request.contention = options.contention;
  request.warm_start = options.warm_start;

  auto start = client.RetryStart(request);
  if (!start.ok()) {
    std::fprintf(stderr, "atune: %s\n", start.status().ToString().c_str());
    return start.status().code() == StatusCode::kInvalidArgument ? 2 : 4;
  }
  switch (start->code) {
    case AdmitCode::kAccepted:
      std::fprintf(stderr, "session %s admitted\n",
                   request.session_id.c_str());
      break;
    case AdmitCode::kAlreadyExists:
      std::fprintf(stderr, "session %s already in flight (%s); reattached\n",
                   request.session_id.c_str(),
                   SessionStateToString(start->state));
      break;
    default:
      std::fprintf(stderr, "atune: session shed by daemon: %s\n",
                   AdmitCodeToString(start->code));
      return 4;
  }

  auto attach = client.AwaitResult(request.session_id, options.wait_ms);
  if (!attach.ok()) {
    std::fprintf(stderr, "atune: %s\n", attach.status().ToString().c_str());
    return 4;
  }
  const SessionResult& result = attach->result;
  switch (attach->state) {
    case SessionState::kDone:
      std::printf("session:   %s (daemon %s)\n", request.session_id.c_str(),
                  options.connect.c_str());
      std::printf("tuner:     %s on %s/%s\n", request.tuner.c_str(),
                  request.system.c_str(),
                  request.workload.empty() ? "(default)"
                                           : request.workload.c_str());
      std::printf("best:      %.4f\n", result.best_objective);
      std::printf("trials:    %llu (%llu replayed from journal)\n",
                  static_cast<unsigned long long>(result.trials),
                  static_cast<unsigned long long>(result.replayed));
      std::printf("checksum:  %016llx\n",
                  static_cast<unsigned long long>(result.checksum));
      return 0;
    case SessionState::kFailed:
      std::fprintf(stderr, "atune: session failed on the daemon: %s: %s\n",
                   StatusCodeToString(
                       static_cast<StatusCode>(result.status_code)),
                   result.message.c_str());
      return 5;
    case SessionState::kDeadlineExceeded:
      std::fprintf(stderr,
                   "atune: session deadline exceeded; checkpoint journaled "
                   "on the daemon\n");
      return 6;
    case SessionState::kCancelled:
    case SessionState::kInterrupted:
      std::fprintf(stderr,
                   "atune: session %s; checkpoint journaled on the daemon\n",
                   SessionStateToString(attach->state));
      return 130;
    case SessionState::kUnknown:
      std::fprintf(stderr, "atune: daemon does not know session %s\n",
                   request.session_id.c_str());
      return 5;
    default:
      // Non-terminal: --wait-ms elapsed before the session finished.
      std::fprintf(stderr,
                   "atune: timed out after %llu ms (session is %s; rerun "
                   "with the same --session-id to reattach)\n",
                   static_cast<unsigned long long>(options.wait_ms),
                   SessionStateToString(attach->state));
      return 6;
  }
}

int RunCli(const CliOptions& options) {
  TunerRegistry registry;
  RegisterBuiltinTuners(&registry);

  if (options.list) {
    std::printf("tuners:\n");
    for (const std::string& name : registry.Names()) {
      auto tuner = registry.Create(name);
      std::printf("  %-18s (%s)\n", name.c_str(),
                  TunerCategoryToString((*tuner)->category()));
    }
    for (const char* system : {"dbms", "mapreduce", "spark"}) {
      std::printf("workloads for --system=%s:\n", system);
      for (const auto& [name, workload] : WorkloadsForSystem(system, 1.0)) {
        (void)workload;
        std::printf("  %s\n", name.c_str());
      }
    }
    return 0;
  }

  if (!options.connect.empty()) return RunConnect(options);

  auto resolved = WorkloadByName(options.system, options.workload,
                                 options.scale);
  if (!resolved.ok()) {
    std::fprintf(stderr, "%s (try --list)\n",
                 resolved.status().ToString().c_str());
    return 2;
  }
  Workload workload = *resolved;
  auto created = registry.Create(options.tuner);
  if (!created.ok()) {
    std::fprintf(stderr, "%s (try --list)\n",
                 created.status().ToString().c_str());
    return 2;
  }
  std::unique_ptr<Tuner> tuner = std::move(*created);
  if (options.adaptive) {
    auto adaptive = MakeAdaptiveRetuneTuner(registry, options.tuner);
    if (!adaptive.ok()) {
      std::fprintf(stderr, "%s (try --list)\n",
                   adaptive.status().ToString().c_str());
      return 2;
    }
    tuner = std::move(*adaptive);
  }
  if (options.supervise) {
    std::unique_ptr<Tuner> fallback;
    if (!options.fallback_tuner.empty()) {
      auto fb = registry.Create(options.fallback_tuner);
      if (!fb.ok()) {
        std::fprintf(stderr, "%s (try --list)\n",
                     fb.status().ToString().c_str());
        return 2;
      }
      fallback = std::move(*fb);
    }
    tuner = MakeSupervisedTuner(std::move(tuner), std::move(fallback));
  }
  auto made = MakeSystemByName(options.system, options.nodes, options.seed);
  if (!made.ok()) {
    std::fprintf(stderr, "%s (try --list)\n", made.status().ToString().c_str());
    return 2;
  }
  std::unique_ptr<TunableSystem> system = std::move(*made);
  TunableSystem* target = system.get();
  std::unique_ptr<DriftingWorkload> drifting;
  if (!options.drift.empty()) {
    // Validated by ParseArgs; faults (below) inject on top of the drifted
    // workload, matching a real cluster where both happen at once.
    drifting = std::make_unique<DriftingWorkload>(
        target, *DriftSchedule::Parse(options.drift));
    target = drifting.get();
  }
  std::unique_ptr<FaultInjectingSystem> faulty;
  if (options.fault_rate > 0.0) {
    faulty = std::make_unique<FaultInjectingSystem>(
        target,
        FaultProfile::FromRate(options.fault_rate, options.seed ^ 0xFA17));
    target = faulty.get();
  }
  tuner->set_parallelism(options.parallelism);

  SessionOptions session;
  session.budget.max_evaluations = options.budget;
  session.seed = options.seed;
  session.robustness.max_retries = options.max_retries;
  session.robustness.timeout_seconds = options.timeout_seconds;
  session.journal_path = options.journal;
  session.journal_policy = options.journal_policy;
  if (!options.journal.empty()) {
    std::signal(SIGINT, HandleSignal);
    std::signal(SIGTERM, HandleSignal);
    session.interrupt_check = []() { return g_signal != 0; };
  }
  Tracer tracer;
  MetricsRegistry metrics;
  if (!options.trace_path.empty() || options.trace_summary) {
    session.tracer = &tracer;
  }
  if (options.metrics) session.metrics = &metrics;
  auto outcome =
      options.resume
          ? ResumeTuningSession(tuner.get(), target, workload, session)
          : RunTuningSession(tuner.get(), target, workload, session);
  // Write the trace before interpreting the outcome: an interrupted or
  // failed session still leaves a loadable (partial) profile behind.
  if (!options.trace_path.empty()) {
    Status written = tracer.WriteChromeTrace(options.trace_path);
    if (!written.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n",
                   written.ToString().c_str());
    }
  }
  if (!outcome.ok()) {
    if (outcome.status().code() == StatusCode::kAborted) {
      // Interrupted, not failed: the journal holds a resumable checkpoint.
      std::fprintf(stderr,
                   "interrupted: progress checkpointed at %s "
                   "(rerun with --resume to continue)\n",
                   options.journal.c_str());
      return 130;
    }
    if (outcome.status().code() == StatusCode::kIoError) {
      // The filesystem failed beneath the journal (strict policy): the
      // session stopped cleanly with every committed trial durable. Distinct
      // exit code so operators can tell it from a tuning failure.
      std::fprintf(stderr,
                   "journal I/O failure (strict policy): %s; committed "
                   "trials are durable in %s — fix the filesystem and rerun "
                   "with --resume, or rerun with --journal-policy=degrade\n",
                   outcome.status().message().c_str(),
                   options.journal.c_str());
      return 3;
    }
    // Never emit a partial result table — one clean line, non-zero exit.
    std::fprintf(stderr, "tuning failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }

  if (options.csv) {
    TableWriter table({"trial", "cost", "objective", "failed", "config"});
    for (size_t i = 0; i < outcome->history.size(); ++i) {
      const Trial& t = outcome->history[i];
      table.AddRow({StrFormat("%zu", i + 1), StrFormat("%.3f", t.cost),
                    StrFormat("%.3f", t.objective),
                    t.result.failed ? "1" : "0", t.config.ToString()});
    }
    table.WriteCsv(std::cout);
    return 0;
  }

  std::printf("system:    %s (%s)\n", options.system.c_str(),
              system->name().c_str());
  std::printf("workload:  %s\n", workload.name.c_str());
  std::printf("tuner:     %s [%s]%s%s\n", options.tuner.c_str(),
              TunerCategoryToString(outcome->category),
              options.adaptive ? " (adaptive-retune)" : "",
              options.supervise ? " (supervised)" : "");
  if (!options.drift.empty()) {
    std::printf("drift:     %s\n",
                DriftSchedule::Parse(options.drift)->ToString().c_str());
  }
  std::printf("default:   %.2f s\n", outcome->default_objective);
  std::printf("best:      %.2f s  (%.2fx speedup, %.1f/%zu budget used, "
              "%zu failed runs)\n",
              outcome->best_objective, outcome->speedup_over_default,
              outcome->evaluations_used, options.budget,
              outcome->failed_runs);
  if (options.fault_rate > 0.0 || options.timeout_seconds > 0.0 ||
      outcome->retried_runs + outcome->timed_out_runs +
          outcome->remeasured_runs + outcome->censored_runs > 0) {
    std::printf("robust:    %zu retried, %zu timed out, %zu re-measured, "
                "%zu censored\n",
                outcome->retried_runs, outcome->timed_out_runs,
                outcome->remeasured_runs, outcome->censored_runs);
  }
  if (outcome->replayed_records > 0) {
    std::printf("resumed:   %zu trials replayed from %s\n",
                outcome->replayed_records, options.journal.c_str());
  }
  if (outcome->journal_degraded) {
    std::printf("degraded:  journal I/O failed mid-session; tuning continued "
                "un-journaled and %s cannot be resumed\n",
                options.journal.c_str());
  }
  for (const std::string& warning : outcome->recovery_warnings) {
    std::printf("recovery:  %s\n", warning.c_str());
  }
  std::printf("config:    %s\n", outcome->best_config.ToString().c_str());
  std::printf("report:    %s\n", outcome->tuner_report.c_str());
  if (!options.trace_path.empty()) {
    std::printf("trace:     %zu spans written to %s\n", tracer.span_count(),
                options.trace_path.c_str());
  }
  if (options.trace_summary) {
    std::printf("\nspan summary:\n%s", tracer.SummaryTable().c_str());
  }
  if (options.metrics) {
    std::printf("\nmetrics:\n%s", outcome->metrics.SummaryTable().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace atune

int main(int argc, char** argv) {
  // Broken pipes (closed stdout, dead daemon connection) surface as EPIPE
  // through the Status path instead of killing the process.
  atune::IgnoreSigPipe();
  auto options = atune::ParseArgs(argc, argv);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n", options.status().ToString().c_str());
    return 2;
  }
  return atune::RunCli(*options);
}
