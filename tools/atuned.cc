// atuned — the tuning service daemon (DESIGN.md §13).
//
//   atuned --listen=unix:/tmp/atuned.sock --journal-dir=/var/lib/atuned
//   atuned --listen=tcp:127.0.0.1:0 --workers=8 --max-queue=128
//
// A single epoll reactor thread multiplexes the CRC-framed wire protocol
// over any number of client connections and executes tuning sessions on a
// worker pool. Robustness properties:
//
//   * admission control: per-tenant budget quotas + a bounded session queue;
//     excess load is shed with RETRY_AFTER, never queued unboundedly
//   * deadlines: per-session deadlines cancel cleanly at the next evaluation
//     boundary with the checkpoint journaled
//   * graceful drain: SIGTERM/SIGINT stop admission, checkpoint in-flight
//     sessions, and exit
//   * restart recovery: on startup the journal directory is rescanned and
//     every interrupted session resumes bit-identically via replay
//
// Flags:
//   --listen=ADDR            unix:<path> or tcp:<host>:<port>  [unix:atuned.sock]
//                            (tcp port 0 binds an ephemeral port; the bound
//                            address is printed on stdout)
//   --journal-dir=PATH       durable session state (meta/wal/result) [atuned-state]
//   --knowledge-dir=PATH     knowledge repository shards [<journal-dir>/knowledge]
//   --workers=N              concurrent tuning sessions          [4]
//   --max-queue=N            bounded admission queue             [64]
//   --tenant-quota=F         per-tenant in-flight budget quota   [256]
//   --retry-after-ms=N       shed backoff hint                   [50]
//   --idle-timeout-ms=N      reap stalled mid-frame connections  [30000, 0=off]
//   --no-recover             skip startup journal-dir recovery
//   --quiet                  warnings and errors only
//
// Exit codes: 0 clean drain, 1 startup/serve failure, 2 bad flags.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unistd.h>

#include "common/logging.h"
#include "common/string_util.h"
#include "net/daemon.h"
#include "net/transport.h"

namespace atune {
namespace {

/// The daemon's drain eventfd; the SIGTERM/SIGINT handler writes to it
/// (write() is async-signal-safe) to request a graceful drain.
volatile int g_drain_fd = -1;

void HandleSignal(int /*sig*/) {
  int fd = g_drain_fd;
  if (fd < 0) return;
  uint64_t one = 1;
  ssize_t rc = ::write(fd, &one, sizeof(one));
  (void)rc;
}

bool ParseFlag(const std::string& arg, const char* name, std::string* out) {
  std::string prefix = std::string("--") + name + "=";
  if (!StartsWith(arg, prefix)) return false;
  *out = arg.substr(prefix.size());
  return true;
}

int Run(int argc, char** argv) {
  DaemonOptions options;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "listen", &value)) {
      options.listen = value;
    } else if (ParseFlag(arg, "journal-dir", &value)) {
      options.journal_dir = value;
    } else if (ParseFlag(arg, "workers", &value)) {
      options.workers =
          static_cast<size_t>(std::strtoull(value.c_str(), nullptr, 10));
      if (options.workers == 0) options.workers = 1;
    } else if (ParseFlag(arg, "max-queue", &value)) {
      options.max_queue =
          static_cast<size_t>(std::strtoull(value.c_str(), nullptr, 10));
    } else if (ParseFlag(arg, "tenant-quota", &value)) {
      options.tenant_budget_quota = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(arg, "retry-after-ms", &value)) {
      options.retry_after_ms = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "idle-timeout-ms", &value)) {
      options.idle_timeout_ms = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "knowledge-dir", &value)) {
      options.knowledge_dir = value;
    } else if (arg == "--no-recover") {
      options.recover = false;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  if (!quiet) SetLogLevel(LogLevel::kInfo);

  // Broken pipes (dead clients) must surface as EPIPE through the Status
  // path, never kill the daemon mid-journal-append.
  IgnoreSigPipe();

  TuningDaemon daemon(std::move(options));
  Status status = daemon.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "atuned: start failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  // Scripts (and the smoke test) read the bound address from stdout —
  // essential with tcp port 0.
  std::printf("listening %s\n", daemon.bound_address().c_str());
  std::fflush(stdout);

  g_drain_fd = daemon.drain_eventfd();
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  status = daemon.Serve();
  g_drain_fd = -1;
  if (!status.ok()) {
    std::fprintf(stderr, "atuned: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace atune

int main(int argc, char** argv) { return atune::Run(argc, argv); }
