#!/usr/bin/env bash
# Builds the ThreadSanitizer and Address+UBSanitizer configurations (see
# CMakePresets.json) and runs the full test suite under each. The thread
# pool, batched evaluation, pooled GP hyper search, and the lock-free
# tracing/metrics paths (src/obs) are the code these exist for; everything
# else rides along for free.
#
#   tools/run_checks.sh             # both sanitizers, full ctest
#   tools/run_checks.sh tsan        # just one preset
#   tools/run_checks.sh --smoke     # default build + obs test suite + a CLI
#                                   # --trace round trip + every bench binary
#                                   # on a tiny budget (ATUNE_SMOKE=1):
#                                   # catches harness rot without the
#                                   # paper-scale cost
#   tools/run_checks.sh --hostile   # default build + bench_supervisor under
#                                   # ATUNE_SMOKE=1, gated on the pass flags
#                                   # it records in BENCH_supervisor.json:
#                                   # hostile-matrix survival, supervision
#                                   # overhead, and supervised kill/resume
#                                   # bit-identity (the binary itself exits 0
#                                   # in smoke mode, so the gate lives here)
#   tools/run_checks.sh --hotpath   # Release build + bench_hotpath under
#                                   # ATUNE_SMOKE=1, gated on the pass flags
#                                   # in BENCH_hotpath.json: blocked-kernel
#                                   # and batched-acquisition speedup floors,
#                                   # whole-session fast-vs-scalar
#                                   # bit-identity, zero-alloc Evaluator
#                                   # commits, and mmap replay fallback
#   tools/run_checks.sh --crashsafety
#                                   # Release build + bench_crashsafety at
#                                   # full scale, gated on the pass flags in
#                                   # BENCH_crashsafety.json: crash-point
#                                   # sweep over every mutating I/O op
#                                   # (recovery + resume bit-identity + no
#                                   # torn artifacts), fault-schedule matrix
#                                   # with zero session fatals, and the IoEnv
#                                   # seam overhead bound (<= 1.02x journal
#                                   # append). Then rebuilds the asan-ubsan
#                                   # preset and reruns the harness under
#                                   # sanitizers at smoke scale.
#   tools/run_checks.sh --warmstart # Release build + bench_warmstart at full
#                                   # scale, gated on the pass flags in
#                                   # BENCH_warmstart.json: warm-started
#                                   # median cost-to-converge strictly better
#                                   # than cold across the tuner x workload
#                                   # grid, knowledge-repo ingest under a 15%
#                                   # I/O fault schedule plus an 8-thread
#                                   # writer storm with zero corrupt or torn
#                                   # shards, warmed kill -> resume checksum +
#                                   # journal-byte identity, and sparse-GP
#                                   # predictions within tolerance of exact
#                                   # (bit-identical when disabled). Then
#                                   # rebuilds the asan-ubsan preset and
#                                   # reruns the knowledge-repo and sparse-GP
#                                   # suites under sanitizers.
#   tools/run_checks.sh --service   # Release build + bench_service at full
#                                   # scale, gated on the pass flags in
#                                   # BENCH_service.json: zero session fatals
#                                   # across 1200 tenants on a 15% transport-
#                                   # fault schedule, SIGKILL -> restart ->
#                                   # checksum + journal-byte resume identity,
#                                   # and bounded-p99 admission verdicts under
#                                   # saturation with no lost sessions. Then
#                                   # reruns the net test suite (reactor,
#                                   # transport, wire) under ThreadSanitizer.
#   tools/run_checks.sh --drift     # Release build + bench_drift at full
#                                   # scale, gated on the pass flags in
#                                   # BENCH_drift.json: adaptive recovery
#                                   # >= 2x faster than a detector-disabled
#                                   # static pipeline after a phase shift
#                                   # that OOMs the stale incumbent, zero
#                                   # budget leak under drift storms with
#                                   # the re-tune cap held, and whole-
#                                   # registry kill/resume checksum +
#                                   # journal-byte identity under --drift
#                                   # (the adaptive row's detection rounds
#                                   # identical live vs replay). Then
#                                   # rebuilds the asan-ubsan preset and
#                                   # reruns the drift detector, drifting
#                                   # workload, and adaptive-retune suites
#                                   # under sanitizers.
#   tools/run_checks.sh --coverage  # instrumented Debug build + full ctest +
#                                   # per-directory line-coverage summary for
#                                   # src/. Uses gcovr if installed, else
#                                   # lcov, else falls back to parsing raw
#                                   # `gcov` output (always available with
#                                   # gcc). Nothing is installed.
#
# Coverage thresholds (enforced only in --coverage mode):
#   - gate:     src/ overall line coverage >= 70% or the run fails. This is
#               deliberately below the observed ~85%+ so routine refactors
#               don't trip it; ratchet it upward, never downward.
#   - advisory: per-directory table is printed for review. src/obs is the
#               observability layer grown by its own test suite and is
#               expected to stay >= 90%; a drop below that is a smell even
#               though it does not fail the run.
set -euo pipefail

cd "$(dirname "$0")/.."

if [ "${1:-}" = "--smoke" ]; then
  jobs="$(nproc 2>/dev/null || echo 2)"
  echo "=== [smoke] configure + build (default preset) ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j "$jobs"
  echo "=== [smoke] durability gate ==="
  # Unlike the paper-scale benches, durability is a correctness property:
  # bench_durability gates its exit code even under ATUNE_SMOKE (small kill
  # matrix: every registry tuner, kill points {1, n/2, n-1, random},
  # parallelism 1 and 8, plus torn-journal fuzzing). Run it first and
  # loudly so a broken resume path fails the smoke run on its own line.
  ATUNE_SMOKE=1 ./build/bench/bench_durability > /dev/null
  echo "bench_durability: kill/resume bit-identity + fuzz recovery ok"
  echo "=== [smoke] crash-safety gate ==="
  # Same contract as durability: bench_crashsafety gates its exit code even
  # under ATUNE_SMOKE (reduced sweep of >= 8 evenly spaced crash points plus
  # the full fault-schedule matrix; the seam-overhead bound is advisory in
  # unoptimized builds but the correctness flags always gate).
  ATUNE_SMOKE=1 ./build/bench/bench_crashsafety > /dev/null
  echo "bench_crashsafety: crash-point sweep + fault matrix + seam overhead ok"
  echo "=== [smoke] observability suite ==="
  # The obs tests are cheap (seconds) and guard the trace-as-oracle that
  # bench_durability's bit-identity checks stand on, so the smoke run pays
  # for them directly instead of waiting for a full ctest pass.
  ./build/tests/atune_obs_tests --gtest_brief=1
  echo "atune_obs_tests: ok"
  echo "=== [smoke] knowledge-repo / sparse-GP / warm-start suites ==="
  # The warm-start transfer path gates bit-identity (fingerprints, k-NN
  # mapping, seeded resume) the same way the obs layer gates traces, so the
  # smoke run pays for these suites directly too. Filtered: the rest of each
  # binary runs under full ctest.
  ./build/tests/atune_core_tests --gtest_brief=1 --gtest_filter='KnowledgeRepo*'
  ./build/tests/atune_ml_tests --gtest_brief=1 --gtest_filter='SparseGp*'
  ./build/tests/atune_tuners_tests --gtest_brief=1 --gtest_filter='WarmStart*'
  echo "knowledge-repo + sparse-GP + warm-start suites: ok"
  echo "=== [smoke] CLI --trace round trip ==="
  # End-to-end: a tiny tuning session must leave a loadable Chrome trace
  # behind. grep-level validation only; the byte-exact goldens live in
  # tests/obs/trace_export_test.cc.
  smoke_trace="$(mktemp /tmp/atune_smoke_trace.XXXXXX.json)"
  ./build/tools/atune --tuner=random-search --budget=4 --seed=7 \
      --trace="$smoke_trace" --trace-summary --metrics > /dev/null
  grep -q '"traceEvents"' "$smoke_trace"
  grep -q '"name":"session"' "$smoke_trace"
  grep -q '"name":"trial"' "$smoke_trace"
  rm -f "$smoke_trace"
  echo "atune --trace: ok (session/trial spans present)"
  echo "=== [smoke] CLI --supervise round trip ==="
  # Supervised session must complete, say so, and keep the exit-code
  # contract: 0 ok, 2 usage error (bad flag combos / unknown fallback).
  ./build/tools/atune --tuner=random-search --supervise \
      --fallback-tuner=random-search --budget=4 --seed=7 \
      | grep -q '(supervised)'
  echo "atune --supervise: ok (session completed)"
  if ./build/tools/atune --tuner=random-search --fallback-tuner=random-search \
      --budget=2 > /dev/null 2>&1; then
    echo "atune: --fallback-tuner without --supervise should exit 2" >&2
    exit 1
  elif [ $? -ne 2 ]; then
    echo "atune: wrong exit code for --fallback-tuner without --supervise" >&2
    exit 1
  fi
  if ./build/tools/atune --tuner=random-search --supervise \
      --fallback-tuner=no-such-tuner --budget=2 > /dev/null 2>&1; then
    echo "atune: unknown --fallback-tuner should exit 2" >&2
    exit 1
  elif [ $? -ne 2 ]; then
    echo "atune: wrong exit code for unknown --fallback-tuner" >&2
    exit 1
  fi
  echo "atune --supervise: ok (usage errors exit 2)"
  # Strict journal policy must fail loudly on an unwritable journal: exit 3
  # (journal I/O error) with a one-line message, distinct from usage errors.
  if ./build/tools/atune --tuner=random-search --budget=2 --seed=7 \
      --journal=/nonexistent-dir/smoke.wal --journal-policy=strict \
      > /dev/null 2>&1; then
    echo "atune: unwritable --journal under strict policy should exit 3" >&2
    exit 1
  elif [ $? -ne 3 ]; then
    echo "atune: wrong exit code for strict-policy journal I/O failure" >&2
    exit 1
  fi
  echo "atune --journal-policy=strict: ok (journal I/O failure exits 3)"
  echo "=== [smoke] atuned loopback kill+restart round trip ==="
  # End-to-end service check: run a session through a live daemon, SIGKILL
  # the daemon, restart it over the same journal dir, and reattach with the
  # same idempotent session id — the recovered checksum must be identical.
  svc_dir="$(mktemp -d /tmp/atune_smoke_svc.XXXXXX)"
  svc_addr="unix:$svc_dir/d.sock"
  svc_cli() {
    ./build/tools/atune --connect="$svc_addr" --session-id=smoke-rt \
        --tuner=random-search --budget=20 --seed=11
  }
  ./build/tools/atuned --listen="$svc_addr" --journal-dir="$svc_dir/state" \
      --quiet > /dev/null &
  svc_pid=$!
  for _ in $(seq 1 100); do [ -S "$svc_dir/d.sock" ] && break; sleep 0.05; done
  ref_sum="$(svc_cli | grep '^checksum:')"
  kill -9 "$svc_pid"; wait "$svc_pid" 2> /dev/null || true
  ./build/tools/atuned --listen="$svc_addr" --journal-dir="$svc_dir/state" \
      --quiet > /dev/null &
  svc_pid=$!
  for _ in $(seq 1 100); do [ -S "$svc_dir/d.sock" ] && break; sleep 0.05; done
  got_sum="$(svc_cli | grep '^checksum:')"
  kill "$svc_pid" 2> /dev/null; wait "$svc_pid" 2> /dev/null || true
  rm -rf "$svc_dir"
  if [ -z "$ref_sum" ] || [ "$ref_sum" != "$got_sum" ]; then
    echo "atuned: kill+restart reattach checksum mismatch" >&2
    echo "  before: ${ref_sum:-<none>}" >&2
    echo "  after:  ${got_sum:-<none>}" >&2
    exit 1
  fi
  echo "atuned loopback: ok (kill -9 + restart reattach, checksum identical)"
  echo "=== [smoke] benches at ATUNE_SMOKE=1 ==="
  # bench_micro is a google-benchmark binary: listing its benchmarks proves
  # it links and registers without paying for a timing run.
  ./build/bench/bench_micro --benchmark_list_tests > /dev/null
  echo "bench_micro: ok (listed)"
  for bench in build/bench/bench_*; do
    name="$(basename "$bench")"
    [ "$name" = "bench_micro" ] && continue
    [ "$name" = "bench_durability" ] && continue
    [ "$name" = "bench_crashsafety" ] && continue
    [ -x "$bench" ] || continue
    echo "--- $name ---"
    ATUNE_SMOKE=1 "$bench" > /dev/null
    echo "$name: ok"
  done
  echo "smoke checks passed"
  exit 0
fi

if [ "${1:-}" = "--hostile" ]; then
  jobs="$(nproc 2>/dev/null || echo 2)"
  echo "=== [hostile] configure + build (default preset) ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j "$jobs"
  echo "=== [hostile] bench_supervisor (ATUNE_SMOKE=1) ==="
  # Supervision is a correctness property like durability, so this stage
  # gates even at smoke scale. The binary's own exit code is advisory under
  # ATUNE_SMOKE (see AcceptanceExit in bench/bench_common.h); the recorded
  # pass flags in BENCH_supervisor.json are not.
  ATUNE_SMOKE=1 ./build/bench/bench_supervisor
  if ! grep -q '"pass": {"hostile": true, "overhead": true, "resume": true}' \
      BENCH_supervisor.json; then
    echo "hostile gate FAILED:" >&2
    grep '"pass"' BENCH_supervisor.json >&2 || true
    exit 1
  fi
  echo "hostile checks passed: zero session-fatal errors under faults,"
  echo "supervision overhead within bound, supervised resume bit-identical"
  exit 0
fi

if [ "${1:-}" = "--hotpath" ]; then
  jobs="$(nproc 2>/dev/null || echo 2)"
  echo "=== [hotpath] configure + build (default preset, Release) ==="
  # Must be an optimized build: the speedup floors below are meaningless at
  # -O0, and the identity/alloc/replay flags are what actually gate.
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j "$jobs"
  echo "=== [hotpath] bench_hotpath (ATUNE_SMOKE=1) ==="
  # Like durability and supervision, the hot-path layer gates correctness
  # (whole-session fast-vs-scalar bit-identity, zero-alloc commits, mmap
  # replay fallback) alongside its speedup floors. The binary exits 0 under
  # ATUNE_SMOKE; the recorded pass flags in BENCH_hotpath.json do not lie.
  ATUNE_SMOKE=1 ./build/bench/bench_hotpath
  if ! grep -q '"pass": {"cholesky": true, "acquisition": true, "identity": true, "alloc": true, "replay": true}' \
      BENCH_hotpath.json; then
    echo "hotpath gate FAILED:" >&2
    grep '"pass"' BENCH_hotpath.json >&2 || true
    exit 1
  fi
  echo "hotpath checks passed: blocked kernels and batched acquisition at"
  echo "speed, bit-identical sessions, zero-alloc commits, mmap replay ok"
  exit 0
fi

if [ "${1:-}" = "--crashsafety" ]; then
  jobs="$(nproc 2>/dev/null || echo 2)"
  echo "=== [crashsafety] configure + build (default preset, Release) ==="
  # Optimized build so the seam-overhead gate (IoEnv dispatch <= 1.02x a raw
  # journal append) is a real measurement; the sweep and fault-matrix flags
  # gate in any build.
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j "$jobs"
  echo "=== [crashsafety] bench_crashsafety (full sweep) ==="
  # Full scale: one forked crash per mutating I/O op in the baseline run,
  # each checked for longest-valid-prefix recovery, resume bit-identity
  # (checksum + final journal bytes), and no half-written published
  # artifact; then the fault-schedule matrix (EINTR storms, short writes,
  # transient and persistent EIO, ENOSPC, fsync failure, rename failure)
  # under both --journal-policy strict and degrade.
  ./build/bench/bench_crashsafety
  if ! grep -q '"pass": {"sweep": true, "faults": true, "overhead": true}' \
      BENCH_crashsafety.json; then
    echo "crashsafety gate FAILED:" >&2
    grep '"pass"' BENCH_crashsafety.json >&2 || true
    exit 1
  fi
  echo "=== [crashsafety] asan-ubsan preset, smoke sweep ==="
  # Rerun the harness under Address+UBSanitizer at smoke scale: the fault
  # paths (torn half-writes, truncation guard, tail re-verification) are
  # exactly the code that should meet asan/ubsan. Overhead is advisory in
  # sanitizer builds; the correctness flags still gate via the exit code.
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j "$jobs" --target bench_crashsafety
  ATUNE_SMOKE=1 ./build-asan/bench/bench_crashsafety > /dev/null
  echo "crashsafety checks passed: every crash point recovers to the longest"
  echo "valid prefix, resume is bit-identical, no torn artifacts, zero"
  echo "session fatals across the fault matrix, seam overhead within 1.02x"
  exit 0
fi

if [ "${1:-}" = "--warmstart" ]; then
  jobs="$(nproc 2>/dev/null || echo 2)"
  echo "=== [warmstart] configure + build (default preset, Release) ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j "$jobs"
  echo "=== [warmstart] bench_warmstart (full grid) ==="
  # Full scale: cold-vs-warm convergence over the tuner x workload grid
  # (gate: warm median cost-to-converge strictly below cold), knowledge-repo
  # ingest under a 15% short-write/EINTR/EIO fault schedule plus an 8-thread
  # concurrent writer storm (gate: every shard present, zero corrupt), a
  # warmed journaled session killed at {1, n/2, n-1} records and resumed
  # (gate: checksum + final journal bytes identical), and sparse-GP
  # predictions vs exact (gate: within tolerance; disabled path bitwise
  # identical to exact).
  ./build/bench/bench_warmstart
  if ! grep -q '"pass": {"warm": true, "ingest": true, "resume": true, "sparse": true}' \
      BENCH_warmstart.json; then
    echo "warmstart gate FAILED:" >&2
    grep '"pass"' BENCH_warmstart.json >&2 || true
    exit 1
  fi
  echo "=== [warmstart] asan-ubsan preset, repo + sparse-GP suites ==="
  # Rerun the suites that exercise the new decode/fault/crash paths under
  # Address+UBSanitizer: shard decode of corrupted bytes, the forked
  # crash-at-every-io-op sweep, and the sparse-GP linear algebra are exactly
  # the code that should meet asan/ubsan.
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j "$jobs" \
      --target atune_core_tests atune_ml_tests
  ./build-asan/tests/atune_core_tests --gtest_brief=1 \
      --gtest_filter='KnowledgeRepo*'
  ./build-asan/tests/atune_ml_tests --gtest_brief=1 \
      --gtest_filter='SparseGp*'
  echo "warmstart checks passed: warm median beats cold, zero corrupt shards"
  echo "under faults and concurrent writers, warmed resume bit-identical,"
  echo "sparse GP within tolerance and bit-identical when disabled"
  exit 0
fi

if [ "${1:-}" = "--service" ]; then
  jobs="$(nproc 2>/dev/null || echo 2)"
  echo "=== [service] configure + build (default preset, Release) ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j "$jobs"
  echo "=== [service] bench_service (full fleet) ==="
  # Full scale: 1200 faulted tenants (15% transport-fault schedule, zero
  # session fatals), SIGKILL -> restart -> checksum + journal-byte resume
  # identity at three kill points, and saturation shedding with bounded-p99
  # admission verdicts and no lost sessions.
  ./build/bench/bench_service
  if ! grep -q '"pass": {"faults": true, "resume": true, "admission": true}' \
      BENCH_service.json; then
    echo "service gate FAILED:" >&2
    grep '"pass"' BENCH_service.json >&2 || true
    exit 1
  fi
  echo "=== [service] tsan preset, reactor/transport/wire tests ==="
  # The reactor hands session results from pool workers back to the loop
  # thread via Post() and atomic cancel flags — exactly the code that
  # should meet ThreadSanitizer.
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs" --target atune_net_tests
  ./build-tsan/tests/atune_net_tests --gtest_brief=1
  echo "service checks passed: zero session fatals under transport faults,"
  echo "kill/restart resume bit-identical, admission p99 bounded under"
  echo "saturation, net test suite clean under tsan"
  exit 0
fi

if [ "${1:-}" = "--drift" ]; then
  jobs="$(nproc 2>/dev/null || echo 2)"
  echo "=== [drift] configure + build (default preset, Release) ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j "$jobs"
  echo "=== [drift] bench_drift (full scale) ==="
  # Full scale: post-shift recovery race over 4 seeds (gate: the adaptive
  # decorator restores a working configuration >= 2x faster, summed over
  # seeds, than an otherwise identical static pipeline whose detector never
  # fires), a drift-storm matrix (violent ramp / diurnal / repeated shift;
  # gate: budget never exceeded, re-tune cap held), and the whole-registry
  # kill/resume matrix under --drift (gate: checksum + final journal bytes
  # identical, and the adaptive row's detection/re-probe/re-tune/eviction
  # counters identical live vs replay).
  ./build/bench/bench_drift
  if ! grep -q '"pass": {"recovery": true, "storms": true, "resume": true}' \
      BENCH_drift.json; then
    echo "drift gate FAILED:" >&2
    grep '"pass"' BENCH_drift.json >&2 || true
    exit 1
  fi
  echo "=== [drift] asan-ubsan preset, drift suites ==="
  # Rerun the suites exercising the new decorator, detector, and schedule
  # arithmetic under Address+UBSanitizer: the eviction/re-probe/re-tune
  # paths and the log-objective Page-Hinkley recursion are exactly the code
  # that should meet asan/ubsan.
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j "$jobs" \
      --target atune_core_tests atune_systems_tests atune_tuners_tests
  ./build-asan/tests/atune_core_tests --gtest_brief=1 \
      --gtest_filter='DriftDetector*'
  ./build-asan/tests/atune_systems_tests --gtest_brief=1 \
      --gtest_filter='DriftSchedule*:DriftingWorkload*'
  ./build-asan/tests/atune_tuners_tests --gtest_brief=1 \
      --gtest_filter='AdaptiveRetune*'
  echo "drift checks passed: adaptive recovery >= 2x static after the shift,"
  echo "no budget leak under drift storms, whole-registry resume identical"
  echo "under drift with detection rounds matching live vs replay"
  exit 0
fi

if [ "${1:-}" = "--coverage" ]; then
  jobs="$(nproc 2>/dev/null || echo 2)"
  echo "=== [coverage] configure + build (gcov instrumentation) ==="
  cmake -B build-coverage -S . -DCMAKE_BUILD_TYPE=Debug \
      -DCMAKE_CXX_FLAGS="-O0 --coverage" \
      -DCMAKE_EXE_LINKER_FLAGS="--coverage"
  cmake --build build-coverage -j "$jobs"
  echo "=== [coverage] full ctest ==="
  # Counter files (.gcda) accumulate across processes, so one full suite
  # pass is enough; reruns keep adding without resetting.
  ctest --test-dir build-coverage -j "$jobs" --output-on-failure
  echo "=== [coverage] report (src/ only) ==="
  if command -v gcovr > /dev/null 2>&1; then
    # Preferred: gcovr does the per-file table and totals natively.
    gcovr -r . --object-directory build-coverage --filter 'src/' \
        --print-summary
  elif command -v lcov > /dev/null 2>&1; then
    lcov --capture --directory build-coverage \
        --output-file build-coverage/coverage.info > /dev/null
    lcov --extract build-coverage/coverage.info "$(pwd)/src/*" \
        --output-file build-coverage/coverage.src.info > /dev/null
    lcov --list build-coverage/coverage.src.info
  else
    # Raw-gcov fallback (gcov ships with gcc, so this always works). Each
    # src/ translation unit compiles exactly once into its atune_* static
    # library, so its single .gcda already holds the union of every test
    # binary's runs; header lines inlined into test objects also show up,
    # and we keep the best-covered record per file to avoid double counting.
    find build-coverage/src -name '*.gcda' | while read -r gcda; do
      gcov -n -o "$(dirname "$gcda")" "$gcda" 2> /dev/null
    done | awk -v root="$(pwd)/" '
      /^File / {
        # Lines look like: File QUOTE/abs/path/src/obs/trace.ccQUOTE
        f = substr($0, 7, length($0) - 7)   # strip "File <quote>" + trailing quote
        sub("^" root, "", f); sub(/^\.\//, "", f)
        keep = (f ~ /^src\//)
        next
      }
      keep && /^Lines executed:/ {
        split($0, a, /[:% ]+/)   # a[3]=pct, a[5]=total lines
        hit = a[3] / 100.0 * a[5]
        if (!(f in best_total) || hit > best_hit[f]) {
          best_hit[f] = hit; best_total[f] = a[5]
        }
        keep = 0
      }
      END {
        for (f in best_hit) {
          d = f; sub(/\/[^\/]*$/, "", d)
          dir_hit[d] += best_hit[f]; dir_total[d] += best_total[f]
          all_hit += best_hit[f]; all_total += best_total[f]
        }
        printf "%-14s %10s %10s %8s\n", "directory", "lines", "covered", "pct"
        n = 0
        for (d in dir_hit) dirs[++n] = d
        for (i = 1; i < n; ++i)        # selection sort: mawk has no asorti
          for (j = i + 1; j <= n; ++j)
            if (dirs[j] < dirs[i]) { t = dirs[i]; dirs[i] = dirs[j]; dirs[j] = t }
        for (i = 1; i <= n; ++i) {
          d = dirs[i]
          printf "%-14s %10d %10d %7.1f%%\n", d, dir_total[d], dir_hit[d],
                 100.0 * dir_hit[d] / dir_total[d]
        }
        pct = all_total ? 100.0 * all_hit / all_total : 0.0
        printf "%-14s %10d %10d %7.1f%%\n", "TOTAL src/", all_total, all_hit,
               pct
        if (pct < 70.0) {
          printf "coverage gate FAILED: %.1f%% < 70%% (see thresholds in the\n", pct
          printf "header of tools/run_checks.sh)\n"
          exit 1
        }
        printf "coverage gate ok: %.1f%% >= 70%%\n", pct
      }'
  fi
  echo "coverage checks passed"
  exit 0
fi

# The sanitizer presets run the full ctest suite, which includes the
# journal fuzz tests (tests/core/journal_test.cc), the per-tuner
# resume-equivalence tests (tests/core/resume_test.cc), and the racy span
# forest / metrics property tests (tests/obs/) — torn-frame parsing,
# replay, and the lock-free trace buffer are exactly the code that should
# meet tsan/asan/ubsan.
presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(tsan asan-ubsan)
fi

jobs="$(nproc 2>/dev/null || echo 2)"
for preset in "${presets[@]}"; do
  echo "=== [$preset] configure ==="
  cmake --preset "$preset"
  echo "=== [$preset] build ==="
  cmake --build --preset "$preset" -j "$jobs"
  echo "=== [$preset] ctest ==="
  ctest --preset "$preset" -j "$jobs"
done
echo "all checks passed: ${presets[*]}"
