#!/usr/bin/env bash
# Builds the ThreadSanitizer and Address+UBSanitizer configurations (see
# CMakePresets.json) and runs the full test suite under each. The thread
# pool, batched evaluation, and pooled GP hyper search are the code paths
# these exist for; everything else rides along for free.
#
#   tools/run_checks.sh            # both sanitizers, full ctest
#   tools/run_checks.sh tsan       # just one preset
#   tools/run_checks.sh --smoke    # default build + every bench binary on a
#                                  # tiny budget (ATUNE_SMOKE=1): catches
#                                  # harness rot without the paper-scale cost
set -euo pipefail

cd "$(dirname "$0")/.."

if [ "${1:-}" = "--smoke" ]; then
  jobs="$(nproc 2>/dev/null || echo 2)"
  echo "=== [smoke] configure + build (default preset) ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j "$jobs"
  echo "=== [smoke] benches at ATUNE_SMOKE=1 ==="
  # bench_micro is a google-benchmark binary: listing its benchmarks proves
  # it links and registers without paying for a timing run.
  ./build/bench/bench_micro --benchmark_list_tests > /dev/null
  echo "bench_micro: ok (listed)"
  for bench in build/bench/bench_*; do
    name="$(basename "$bench")"
    [ "$name" = "bench_micro" ] && continue
    [ -x "$bench" ] || continue
    echo "--- $name ---"
    ATUNE_SMOKE=1 "$bench" > /dev/null
    echo "$name: ok"
  done
  echo "smoke checks passed"
  exit 0
fi

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(tsan asan-ubsan)
fi

jobs="$(nproc 2>/dev/null || echo 2)"
for preset in "${presets[@]}"; do
  echo "=== [$preset] configure ==="
  cmake --preset "$preset"
  echo "=== [$preset] build ==="
  cmake --build --preset "$preset" -j "$jobs"
  echo "=== [$preset] ctest ==="
  ctest --preset "$preset" -j "$jobs"
done
echo "all checks passed: ${presets[*]}"
