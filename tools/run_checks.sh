#!/usr/bin/env bash
# Builds the ThreadSanitizer and Address+UBSanitizer configurations (see
# CMakePresets.json) and runs the full test suite under each. The thread
# pool, batched evaluation, and pooled GP hyper search are the code paths
# these exist for; everything else rides along for free.
#
#   tools/run_checks.sh            # both sanitizers, full ctest
#   tools/run_checks.sh tsan       # just one preset
set -euo pipefail

cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(tsan asan-ubsan)
fi

jobs="$(nproc 2>/dev/null || echo 2)"
for preset in "${presets[@]}"; do
  echo "=== [$preset] configure ==="
  cmake --preset "$preset"
  echo "=== [$preset] build ==="
  cmake --build --preset "$preset" -j "$jobs"
  echo "=== [$preset] ctest ==="
  ctest --preset "$preset" -j "$jobs"
done
echo "all checks passed: ${presets[*]}"
