#!/usr/bin/env bash
# Builds the ThreadSanitizer and Address+UBSanitizer configurations (see
# CMakePresets.json) and runs the full test suite under each. The thread
# pool, batched evaluation, and pooled GP hyper search are the code paths
# these exist for; everything else rides along for free.
#
#   tools/run_checks.sh            # both sanitizers, full ctest
#   tools/run_checks.sh tsan       # just one preset
#   tools/run_checks.sh --smoke    # default build + every bench binary on a
#                                  # tiny budget (ATUNE_SMOKE=1): catches
#                                  # harness rot without the paper-scale cost
set -euo pipefail

cd "$(dirname "$0")/.."

if [ "${1:-}" = "--smoke" ]; then
  jobs="$(nproc 2>/dev/null || echo 2)"
  echo "=== [smoke] configure + build (default preset) ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j "$jobs"
  echo "=== [smoke] durability gate ==="
  # Unlike the paper-scale benches, durability is a correctness property:
  # bench_durability gates its exit code even under ATUNE_SMOKE (small kill
  # matrix: every registry tuner, kill points {1, n/2, n-1, random},
  # parallelism 1 and 8, plus torn-journal fuzzing). Run it first and
  # loudly so a broken resume path fails the smoke run on its own line.
  ATUNE_SMOKE=1 ./build/bench/bench_durability > /dev/null
  echo "bench_durability: kill/resume bit-identity + fuzz recovery ok"
  echo "=== [smoke] benches at ATUNE_SMOKE=1 ==="
  # bench_micro is a google-benchmark binary: listing its benchmarks proves
  # it links and registers without paying for a timing run.
  ./build/bench/bench_micro --benchmark_list_tests > /dev/null
  echo "bench_micro: ok (listed)"
  for bench in build/bench/bench_*; do
    name="$(basename "$bench")"
    [ "$name" = "bench_micro" ] && continue
    [ "$name" = "bench_durability" ] && continue
    [ -x "$bench" ] || continue
    echo "--- $name ---"
    ATUNE_SMOKE=1 "$bench" > /dev/null
    echo "$name: ok"
  done
  echo "smoke checks passed"
  exit 0
fi

# The sanitizer presets run the full ctest suite, which includes the
# journal fuzz tests (tests/core/journal_test.cc) and the per-tuner
# resume-equivalence tests (tests/core/resume_test.cc) — torn-frame
# parsing and replay are exactly the code that should meet asan/ubsan.
presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(tsan asan-ubsan)
fi

jobs="$(nproc 2>/dev/null || echo 2)"
for preset in "${presets[@]}"; do
  echo "=== [$preset] configure ==="
  cmake --preset "$preset"
  echo "=== [$preset] build ==="
  cmake --build --preset "$preset" -j "$jobs"
  echo "=== [$preset] ctest ==="
  ctest --preset "$preset" -j "$jobs"
done
echo "all checks passed: ${presets[*]}"
